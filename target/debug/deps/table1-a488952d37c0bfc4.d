/root/repo/target/debug/deps/table1-a488952d37c0bfc4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a488952d37c0bfc4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
