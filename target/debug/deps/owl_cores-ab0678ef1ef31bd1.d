/root/repo/target/debug/deps/owl_cores-ab0678ef1ef31bd1.d: crates/cores/src/lib.rs crates/cores/src/accumulator.rs crates/cores/src/aes.rs crates/cores/src/alu_machine.rs crates/cores/src/asm.rs crates/cores/src/crypto_core.rs crates/cores/src/rv32i/mod.rs crates/cores/src/rv32i/datapath.rs crates/cores/src/rv32i/isa.rs crates/cores/src/rv32i/spec.rs crates/cores/src/sha256.rs

/root/repo/target/debug/deps/libowl_cores-ab0678ef1ef31bd1.rlib: crates/cores/src/lib.rs crates/cores/src/accumulator.rs crates/cores/src/aes.rs crates/cores/src/alu_machine.rs crates/cores/src/asm.rs crates/cores/src/crypto_core.rs crates/cores/src/rv32i/mod.rs crates/cores/src/rv32i/datapath.rs crates/cores/src/rv32i/isa.rs crates/cores/src/rv32i/spec.rs crates/cores/src/sha256.rs

/root/repo/target/debug/deps/libowl_cores-ab0678ef1ef31bd1.rmeta: crates/cores/src/lib.rs crates/cores/src/accumulator.rs crates/cores/src/aes.rs crates/cores/src/alu_machine.rs crates/cores/src/asm.rs crates/cores/src/crypto_core.rs crates/cores/src/rv32i/mod.rs crates/cores/src/rv32i/datapath.rs crates/cores/src/rv32i/isa.rs crates/cores/src/rv32i/spec.rs crates/cores/src/sha256.rs

crates/cores/src/lib.rs:
crates/cores/src/accumulator.rs:
crates/cores/src/aes.rs:
crates/cores/src/alu_machine.rs:
crates/cores/src/asm.rs:
crates/cores/src/crypto_core.rs:
crates/cores/src/rv32i/mod.rs:
crates/cores/src/rv32i/datapath.rs:
crates/cores/src/rv32i/isa.rs:
crates/cores/src/rv32i/spec.rs:
crates/cores/src/sha256.rs:
