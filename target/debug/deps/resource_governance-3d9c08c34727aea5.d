/root/repo/target/debug/deps/resource_governance-3d9c08c34727aea5.d: tests/resource_governance.rs

/root/repo/target/debug/deps/resource_governance-3d9c08c34727aea5: tests/resource_governance.rs

tests/resource_governance.rs:
