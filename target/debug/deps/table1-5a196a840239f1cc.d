/root/repo/target/debug/deps/table1-5a196a840239f1cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5a196a840239f1cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
