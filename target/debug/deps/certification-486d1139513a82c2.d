/root/repo/target/debug/deps/certification-486d1139513a82c2.d: tests/certification.rs

/root/repo/target/debug/deps/certification-486d1139513a82c2: tests/certification.rs

tests/certification.rs:
