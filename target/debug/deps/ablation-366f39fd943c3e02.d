/root/repo/target/debug/deps/ablation-366f39fd943c3e02.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-366f39fd943c3e02: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
