/root/repo/target/debug/deps/owl_service-d79c5f80a0ef626e.d: crates/service/src/lib.rs

/root/repo/target/debug/deps/libowl_service-d79c5f80a0ef626e.rlib: crates/service/src/lib.rs

/root/repo/target/debug/deps/libowl_service-d79c5f80a0ef626e.rmeta: crates/service/src/lib.rs

crates/service/src/lib.rs:
