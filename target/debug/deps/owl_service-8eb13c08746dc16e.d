/root/repo/target/debug/deps/owl_service-8eb13c08746dc16e.d: crates/service/src/lib.rs

/root/repo/target/debug/deps/owl_service-8eb13c08746dc16e: crates/service/src/lib.rs

crates/service/src/lib.rs:
