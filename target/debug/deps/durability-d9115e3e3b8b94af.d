/root/repo/target/debug/deps/durability-d9115e3e3b8b94af.d: tests/durability.rs

/root/repo/target/debug/deps/durability-d9115e3e3b8b94af: tests/durability.rs

tests/durability.rs:
