/root/repo/target/debug/deps/abstraction_timing-5f5d78bbe5bb68b6.d: tests/abstraction_timing.rs

/root/repo/target/debug/deps/abstraction_timing-5f5d78bbe5bb68b6: tests/abstraction_timing.rs

tests/abstraction_timing.rs:
