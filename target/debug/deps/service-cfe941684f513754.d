/root/repo/target/debug/deps/service-cfe941684f513754.d: crates/service/tests/service.rs

/root/repo/target/debug/deps/service-cfe941684f513754: crates/service/tests/service.rs

crates/service/tests/service.rs:
