/root/repo/target/debug/deps/owl_service-70c1011f26efb525.d: crates/service/src/lib.rs

/root/repo/target/debug/deps/owl_service-70c1011f26efb525: crates/service/src/lib.rs

crates/service/src/lib.rs:
