/root/repo/target/debug/deps/solver_suite-3754ac1abdba62ad.d: crates/smt/tests/solver_suite.rs

/root/repo/target/debug/deps/solver_suite-3754ac1abdba62ad: crates/smt/tests/solver_suite.rs

crates/smt/tests/solver_suite.rs:
