/root/repo/target/debug/deps/hdl_suite-15443f859b7f585b.d: crates/hdl/tests/hdl_suite.rs

/root/repo/target/debug/deps/hdl_suite-15443f859b7f585b: crates/hdl/tests/hdl_suite.rs

crates/hdl/tests/hdl_suite.rs:
