/root/repo/target/debug/deps/parallel_determinism-66649d455858e6d2.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-66649d455858e6d2: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
