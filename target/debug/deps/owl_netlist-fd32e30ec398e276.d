/root/repo/target/debug/deps/owl_netlist-fd32e30ec398e276.d: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

/root/repo/target/debug/deps/owl_netlist-fd32e30ec398e276: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

crates/netlist/src/lib.rs:
crates/netlist/src/eqsat.rs:
crates/netlist/src/lower.rs:
crates/netlist/src/net.rs:
crates/netlist/src/opt.rs:
crates/netlist/src/sim.rs:
