/root/repo/target/debug/deps/owl_netlist-2c28f4a5c65fda8c.d: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

/root/repo/target/debug/deps/libowl_netlist-2c28f4a5c65fda8c.rlib: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

/root/repo/target/debug/deps/libowl_netlist-2c28f4a5c65fda8c.rmeta: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

crates/netlist/src/lib.rs:
crates/netlist/src/eqsat.rs:
crates/netlist/src/lower.rs:
crates/netlist/src/net.rs:
crates/netlist/src/opt.rs:
crates/netlist/src/sim.rs:
