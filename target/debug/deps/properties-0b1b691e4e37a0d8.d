/root/repo/target/debug/deps/properties-0b1b691e4e37a0d8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-0b1b691e4e37a0d8: tests/properties.rs

tests/properties.rs:
