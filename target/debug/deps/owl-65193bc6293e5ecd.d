/root/repo/target/debug/deps/owl-65193bc6293e5ecd.d: src/lib.rs

/root/repo/target/debug/deps/libowl-65193bc6293e5ecd.rlib: src/lib.rs

/root/repo/target/debug/deps/libowl-65193bc6293e5ecd.rmeta: src/lib.rs

src/lib.rs:
