/root/repo/target/debug/deps/bench_owl-a836a6239b72f76b.d: crates/bench/src/bin/bench_owl.rs

/root/repo/target/debug/deps/bench_owl-a836a6239b72f76b: crates/bench/src/bin/bench_owl.rs

crates/bench/src/bin/bench_owl.rs:
