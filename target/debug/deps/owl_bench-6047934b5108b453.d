/root/repo/target/debug/deps/owl_bench-6047934b5108b453.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libowl_bench-6047934b5108b453.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libowl_bench-6047934b5108b453.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
