/root/repo/target/debug/deps/consttime-656e8a212ec60fe4.d: crates/bench/src/bin/consttime.rs

/root/repo/target/debug/deps/consttime-656e8a212ec60fe4: crates/bench/src/bin/consttime.rs

crates/bench/src/bin/consttime.rs:
