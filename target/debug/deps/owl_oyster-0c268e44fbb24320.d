/root/repo/target/debug/deps/owl_oyster-0c268e44fbb24320.d: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

/root/repo/target/debug/deps/owl_oyster-0c268e44fbb24320: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

crates/oyster/src/lib.rs:
crates/oyster/src/interp.rs:
crates/oyster/src/ir.rs:
crates/oyster/src/parse.rs:
crates/oyster/src/print.rs:
crates/oyster/src/sym.rs:
