/root/repo/target/debug/deps/owl_bitvec-5a36379608ffbb2d.d: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

/root/repo/target/debug/deps/libowl_bitvec-5a36379608ffbb2d.rmeta: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

crates/bitvec/src/lib.rs:
crates/bitvec/src/arith.rs:
crates/bitvec/src/cmp.rs:
crates/bitvec/src/fmt.rs:
crates/bitvec/src/logic.rs:
crates/bitvec/src/parse.rs:
crates/bitvec/src/shift.rs:
