/root/repo/target/debug/deps/owl_bitvec-11cd71aab338a544.d: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

/root/repo/target/debug/deps/owl_bitvec-11cd71aab338a544: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

crates/bitvec/src/lib.rs:
crates/bitvec/src/arith.rs:
crates/bitvec/src/cmp.rs:
crates/bitvec/src/fmt.rs:
crates/bitvec/src/logic.rs:
crates/bitvec/src/parse.rs:
crates/bitvec/src/shift.rs:
