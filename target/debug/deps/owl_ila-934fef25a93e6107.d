/root/repo/target/debug/deps/owl_ila-934fef25a93e6107.d: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

/root/repo/target/debug/deps/owl_ila-934fef25a93e6107: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

crates/ila/src/lib.rs:
crates/ila/src/compile.rs:
crates/ila/src/expr.rs:
crates/ila/src/golden.rs:
crates/ila/src/model.rs:
