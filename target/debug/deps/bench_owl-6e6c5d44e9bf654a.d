/root/repo/target/debug/deps/bench_owl-6e6c5d44e9bf654a.d: crates/bench/src/bin/bench_owl.rs

/root/repo/target/debug/deps/bench_owl-6e6c5d44e9bf654a: crates/bench/src/bin/bench_owl.rs

crates/bench/src/bin/bench_owl.rs:
