/root/repo/target/debug/deps/table2-b316d89ec7395ade.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b316d89ec7395ade: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
