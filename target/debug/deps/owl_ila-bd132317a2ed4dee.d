/root/repo/target/debug/deps/owl_ila-bd132317a2ed4dee.d: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

/root/repo/target/debug/deps/libowl_ila-bd132317a2ed4dee.rlib: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

/root/repo/target/debug/deps/libowl_ila-bd132317a2ed4dee.rmeta: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

crates/ila/src/lib.rs:
crates/ila/src/compile.rs:
crates/ila/src/expr.rs:
crates/ila/src/golden.rs:
crates/ila/src/model.rs:
