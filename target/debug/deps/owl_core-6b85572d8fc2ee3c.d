/root/repo/target/debug/deps/owl_core-6b85572d8fc2ee3c.d: crates/core/src/lib.rs crates/core/src/abstraction.rs crates/core/src/certify.rs crates/core/src/codegen.rs crates/core/src/conditions.rs crates/core/src/diagnose.rs crates/core/src/journal.rs crates/core/src/minimize.rs crates/core/src/session.rs crates/core/src/synth.rs crates/core/src/union.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libowl_core-6b85572d8fc2ee3c.rlib: crates/core/src/lib.rs crates/core/src/abstraction.rs crates/core/src/certify.rs crates/core/src/codegen.rs crates/core/src/conditions.rs crates/core/src/diagnose.rs crates/core/src/journal.rs crates/core/src/minimize.rs crates/core/src/session.rs crates/core/src/synth.rs crates/core/src/union.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libowl_core-6b85572d8fc2ee3c.rmeta: crates/core/src/lib.rs crates/core/src/abstraction.rs crates/core/src/certify.rs crates/core/src/codegen.rs crates/core/src/conditions.rs crates/core/src/diagnose.rs crates/core/src/journal.rs crates/core/src/minimize.rs crates/core/src/session.rs crates/core/src/synth.rs crates/core/src/union.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/abstraction.rs:
crates/core/src/certify.rs:
crates/core/src/codegen.rs:
crates/core/src/conditions.rs:
crates/core/src/diagnose.rs:
crates/core/src/journal.rs:
crates/core/src/minimize.rs:
crates/core/src/session.rs:
crates/core/src/synth.rs:
crates/core/src/union.rs:
crates/core/src/verify.rs:
