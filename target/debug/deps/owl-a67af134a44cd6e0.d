/root/repo/target/debug/deps/owl-a67af134a44cd6e0.d: src/lib.rs

/root/repo/target/debug/deps/owl-a67af134a44cd6e0: src/lib.rs

src/lib.rs:
