/root/repo/target/debug/deps/owl_hdl-f82d1161155f769a.d: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

/root/repo/target/debug/deps/libowl_hdl-f82d1161155f769a.rlib: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

/root/repo/target/debug/deps/libowl_hdl-f82d1161155f769a.rmeta: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

crates/hdl/src/lib.rs:
crates/hdl/src/bitops.rs:
crates/hdl/src/cond.rs:
crates/hdl/src/module.rs:
