/root/repo/target/debug/deps/owl_oyster-3f2ecb2719a73ea8.d: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

/root/repo/target/debug/deps/libowl_oyster-3f2ecb2719a73ea8.rlib: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

/root/repo/target/debug/deps/libowl_oyster-3f2ecb2719a73ea8.rmeta: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

crates/oyster/src/lib.rs:
crates/oyster/src/interp.rs:
crates/oyster/src/ir.rs:
crates/oyster/src/parse.rs:
crates/oyster/src/print.rs:
crates/oyster/src/sym.rs:
