/root/repo/target/debug/deps/owl_trace-a244f7d213690929.d: crates/trace/src/lib.rs crates/trace/src/report.rs

/root/repo/target/debug/deps/owl_trace-a244f7d213690929: crates/trace/src/lib.rs crates/trace/src/report.rs

crates/trace/src/lib.rs:
crates/trace/src/report.rs:
