/root/repo/target/debug/deps/constant_time-e904784da7c4788d.d: tests/constant_time.rs

/root/repo/target/debug/deps/constant_time-e904784da7c4788d: tests/constant_time.rs

tests/constant_time.rs:
