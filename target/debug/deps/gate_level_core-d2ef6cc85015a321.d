/root/repo/target/debug/deps/gate_level_core-d2ef6cc85015a321.d: tests/gate_level_core.rs

/root/repo/target/debug/deps/gate_level_core-d2ef6cc85015a321: tests/gate_level_core.rs

tests/gate_level_core.rs:
