/root/repo/target/debug/deps/owl_sat-d4c929576ff00f5e.d: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libowl_sat-d4c929576ff00f5e.rlib: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libowl_sat-d4c929576ff00f5e.rmeta: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/budget.rs:
crates/sat/src/hash.rs:
crates/sat/src/heap.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
