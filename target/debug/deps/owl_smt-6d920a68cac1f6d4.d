/root/repo/target/debug/deps/owl_smt-6d920a68cac1f6d4.d: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

/root/repo/target/debug/deps/owl_smt-6d920a68cac1f6d4: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

crates/smt/src/lib.rs:
crates/smt/src/blast.rs:
crates/smt/src/digest.rs:
crates/smt/src/eval.rs:
crates/smt/src/manager.rs:
crates/smt/src/print.rs:
crates/smt/src/simplify.rs:
crates/smt/src/solver.rs:
crates/smt/src/subst.rs:
