/root/repo/target/debug/deps/trace-29c86b02cb088cc9.d: tests/trace.rs

/root/repo/target/debug/deps/trace-29c86b02cb088cc9: tests/trace.rs

tests/trace.rs:
