/root/repo/target/debug/deps/owl_sat-df6e16b0e0e4ea1c.d: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/owl_sat-df6e16b0e0e4ea1c: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/budget.rs:
crates/sat/src/hash.rs:
crates/sat/src/heap.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
