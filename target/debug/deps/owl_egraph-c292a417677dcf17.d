/root/repo/target/debug/deps/owl_egraph-c292a417677dcf17.d: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

/root/repo/target/debug/deps/owl_egraph-c292a417677dcf17: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

crates/egraph/src/lib.rs:
crates/egraph/src/extract.rs:
crates/egraph/src/graph.rs:
crates/egraph/src/node.rs:
crates/egraph/src/rules.rs:
crates/egraph/src/saturate.rs:
