/root/repo/target/debug/deps/consttime-3a468d8a99170053.d: crates/bench/src/bin/consttime.rs

/root/repo/target/debug/deps/consttime-3a468d8a99170053: crates/bench/src/bin/consttime.rs

crates/bench/src/bin/consttime.rs:
