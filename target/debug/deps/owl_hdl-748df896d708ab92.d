/root/repo/target/debug/deps/owl_hdl-748df896d708ab92.d: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

/root/repo/target/debug/deps/owl_hdl-748df896d708ab92: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

crates/hdl/src/lib.rs:
crates/hdl/src/bitops.rs:
crates/hdl/src/cond.rs:
crates/hdl/src/module.rs:
