/root/repo/target/debug/deps/owl_cache-451e57aba933a9e0.d: crates/cache/src/lib.rs

/root/repo/target/debug/deps/libowl_cache-451e57aba933a9e0.rlib: crates/cache/src/lib.rs

/root/repo/target/debug/deps/libowl_cache-451e57aba933a9e0.rmeta: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
