/root/repo/target/debug/deps/owl_bench-1cb509dd595852e8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libowl_bench-1cb509dd595852e8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libowl_bench-1cb509dd595852e8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
