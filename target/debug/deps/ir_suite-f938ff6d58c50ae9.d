/root/repo/target/debug/deps/ir_suite-f938ff6d58c50ae9.d: crates/oyster/tests/ir_suite.rs

/root/repo/target/debug/deps/ir_suite-f938ff6d58c50ae9: crates/oyster/tests/ir_suite.rs

crates/oyster/tests/ir_suite.rs:
