/root/repo/target/debug/deps/ablation-6c5028451de275c2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-6c5028451de275c2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
