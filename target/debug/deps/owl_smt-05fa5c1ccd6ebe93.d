/root/repo/target/debug/deps/owl_smt-05fa5c1ccd6ebe93.d: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

/root/repo/target/debug/deps/libowl_smt-05fa5c1ccd6ebe93.rlib: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

/root/repo/target/debug/deps/libowl_smt-05fa5c1ccd6ebe93.rmeta: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

crates/smt/src/lib.rs:
crates/smt/src/blast.rs:
crates/smt/src/digest.rs:
crates/smt/src/eval.rs:
crates/smt/src/manager.rs:
crates/smt/src/print.rs:
crates/smt/src/simplify.rs:
crates/smt/src/solver.rs:
crates/smt/src/subst.rs:
