/root/repo/target/debug/deps/netlist_suite-5fe679117c918945.d: crates/netlist/tests/netlist_suite.rs

/root/repo/target/debug/deps/netlist_suite-5fe679117c918945: crates/netlist/tests/netlist_suite.rs

crates/netlist/tests/netlist_suite.rs:
