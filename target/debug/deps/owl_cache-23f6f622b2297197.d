/root/repo/target/debug/deps/owl_cache-23f6f622b2297197.d: crates/cache/src/lib.rs

/root/repo/target/debug/deps/owl_cache-23f6f622b2297197: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
