/root/repo/target/debug/deps/owl_bitvec-b0a081f1d3ff025e.d: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

/root/repo/target/debug/deps/libowl_bitvec-b0a081f1d3ff025e.rlib: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

/root/repo/target/debug/deps/libowl_bitvec-b0a081f1d3ff025e.rmeta: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

crates/bitvec/src/lib.rs:
crates/bitvec/src/arith.rs:
crates/bitvec/src/cmp.rs:
crates/bitvec/src/fmt.rs:
crates/bitvec/src/logic.rs:
crates/bitvec/src/parse.rs:
crates/bitvec/src/shift.rs:
