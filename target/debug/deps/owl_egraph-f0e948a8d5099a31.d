/root/repo/target/debug/deps/owl_egraph-f0e948a8d5099a31.d: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

/root/repo/target/debug/deps/libowl_egraph-f0e948a8d5099a31.rlib: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

/root/repo/target/debug/deps/libowl_egraph-f0e948a8d5099a31.rmeta: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

crates/egraph/src/lib.rs:
crates/egraph/src/extract.rs:
crates/egraph/src/graph.rs:
crates/egraph/src/node.rs:
crates/egraph/src/rules.rs:
crates/egraph/src/saturate.rs:
