/root/repo/target/debug/deps/riscv_differential-aa75ac5371f0d414.d: tests/riscv_differential.rs

/root/repo/target/debug/deps/riscv_differential-aa75ac5371f0d414: tests/riscv_differential.rs

tests/riscv_differential.rs:
