/root/repo/target/debug/deps/owl_sat-1268d613323d23ef.d: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libowl_sat-1268d613323d23ef.rmeta: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/budget.rs:
crates/sat/src/hash.rs:
crates/sat/src/heap.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
