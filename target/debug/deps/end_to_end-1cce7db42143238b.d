/root/repo/target/debug/deps/end_to_end-1cce7db42143238b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1cce7db42143238b: tests/end_to_end.rs

tests/end_to_end.rs:
