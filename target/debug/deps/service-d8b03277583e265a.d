/root/repo/target/debug/deps/service-d8b03277583e265a.d: crates/service/tests/service.rs

/root/repo/target/debug/deps/service-d8b03277583e265a: crates/service/tests/service.rs

crates/service/tests/service.rs:
