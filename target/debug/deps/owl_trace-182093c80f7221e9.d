/root/repo/target/debug/deps/owl_trace-182093c80f7221e9.d: crates/trace/src/lib.rs crates/trace/src/report.rs

/root/repo/target/debug/deps/libowl_trace-182093c80f7221e9.rlib: crates/trace/src/lib.rs crates/trace/src/report.rs

/root/repo/target/debug/deps/libowl_trace-182093c80f7221e9.rmeta: crates/trace/src/lib.rs crates/trace/src/report.rs

crates/trace/src/lib.rs:
crates/trace/src/report.rs:
