/root/repo/target/debug/deps/owl_bench-18f3b4db5480bfac.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/owl_bench-18f3b4db5480bfac: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
