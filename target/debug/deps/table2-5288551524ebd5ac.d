/root/repo/target/debug/deps/table2-5288551524ebd5ac.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5288551524ebd5ac: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
