/root/repo/target/debug/deps/owl_trace-5384550a4ba98763.d: crates/trace/src/lib.rs crates/trace/src/report.rs

/root/repo/target/debug/deps/libowl_trace-5384550a4ba98763.rmeta: crates/trace/src/lib.rs crates/trace/src/report.rs

crates/trace/src/lib.rs:
crates/trace/src/report.rs:
