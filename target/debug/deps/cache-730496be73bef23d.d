/root/repo/target/debug/deps/cache-730496be73bef23d.d: tests/cache.rs

/root/repo/target/debug/deps/cache-730496be73bef23d: tests/cache.rs

tests/cache.rs:
