/root/repo/target/debug/deps/owl_egraph-bfbc8a8879ba3a0e.d: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

/root/repo/target/debug/deps/libowl_egraph-bfbc8a8879ba3a0e.rmeta: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

crates/egraph/src/lib.rs:
crates/egraph/src/extract.rs:
crates/egraph/src/graph.rs:
crates/egraph/src/node.rs:
crates/egraph/src/rules.rs:
crates/egraph/src/saturate.rs:
