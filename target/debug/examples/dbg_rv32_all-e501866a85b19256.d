/root/repo/target/debug/examples/dbg_rv32_all-e501866a85b19256.d: crates/cores/examples/dbg_rv32_all.rs

/root/repo/target/debug/examples/dbg_rv32_all-e501866a85b19256: crates/cores/examples/dbg_rv32_all.rs

crates/cores/examples/dbg_rv32_all.rs:
