/root/repo/target/debug/examples/dbg_alu-ff5e3ed9ba1ec3a2.d: crates/cores/examples/dbg_alu.rs

/root/repo/target/debug/examples/dbg_alu-ff5e3ed9ba1ec3a2: crates/cores/examples/dbg_alu.rs

crates/cores/examples/dbg_alu.rs:
