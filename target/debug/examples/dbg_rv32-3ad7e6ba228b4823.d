/root/repo/target/debug/examples/dbg_rv32-3ad7e6ba228b4823.d: crates/cores/examples/dbg_rv32.rs

/root/repo/target/debug/examples/dbg_rv32-3ad7e6ba228b4823: crates/cores/examples/dbg_rv32.rs

crates/cores/examples/dbg_rv32.rs:
