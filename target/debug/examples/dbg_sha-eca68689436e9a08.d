/root/repo/target/debug/examples/dbg_sha-eca68689436e9a08.d: crates/cores/examples/dbg_sha.rs

/root/repo/target/debug/examples/dbg_sha-eca68689436e9a08: crates/cores/examples/dbg_sha.rs

crates/cores/examples/dbg_sha.rs:
