/root/repo/target/release/libowl_trace.rlib: /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/report.rs
