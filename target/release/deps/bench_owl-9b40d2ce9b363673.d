/root/repo/target/release/deps/bench_owl-9b40d2ce9b363673.d: crates/bench/src/bin/bench_owl.rs

/root/repo/target/release/deps/bench_owl-9b40d2ce9b363673: crates/bench/src/bin/bench_owl.rs

crates/bench/src/bin/bench_owl.rs:
