/root/repo/target/release/deps/consttime-8673698a5d7964a8.d: crates/bench/src/bin/consttime.rs

/root/repo/target/release/deps/consttime-8673698a5d7964a8: crates/bench/src/bin/consttime.rs

crates/bench/src/bin/consttime.rs:
