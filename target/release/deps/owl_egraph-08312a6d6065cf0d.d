/root/repo/target/release/deps/owl_egraph-08312a6d6065cf0d.d: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

/root/repo/target/release/deps/libowl_egraph-08312a6d6065cf0d.rlib: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

/root/repo/target/release/deps/libowl_egraph-08312a6d6065cf0d.rmeta: crates/egraph/src/lib.rs crates/egraph/src/extract.rs crates/egraph/src/graph.rs crates/egraph/src/node.rs crates/egraph/src/rules.rs crates/egraph/src/saturate.rs

crates/egraph/src/lib.rs:
crates/egraph/src/extract.rs:
crates/egraph/src/graph.rs:
crates/egraph/src/node.rs:
crates/egraph/src/rules.rs:
crates/egraph/src/saturate.rs:
