/root/repo/target/release/deps/owl_cache-c2f653c89918ed1f.d: crates/cache/src/lib.rs

/root/repo/target/release/deps/libowl_cache-c2f653c89918ed1f.rlib: crates/cache/src/lib.rs

/root/repo/target/release/deps/libowl_cache-c2f653c89918ed1f.rmeta: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
