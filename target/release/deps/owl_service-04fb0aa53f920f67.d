/root/repo/target/release/deps/owl_service-04fb0aa53f920f67.d: crates/service/src/lib.rs

/root/repo/target/release/deps/libowl_service-04fb0aa53f920f67.rlib: crates/service/src/lib.rs

/root/repo/target/release/deps/libowl_service-04fb0aa53f920f67.rmeta: crates/service/src/lib.rs

crates/service/src/lib.rs:
