/root/repo/target/release/deps/owl_cores-d7eaebaea7434593.d: crates/cores/src/lib.rs crates/cores/src/accumulator.rs crates/cores/src/aes.rs crates/cores/src/alu_machine.rs crates/cores/src/asm.rs crates/cores/src/crypto_core.rs crates/cores/src/rv32i/mod.rs crates/cores/src/rv32i/datapath.rs crates/cores/src/rv32i/isa.rs crates/cores/src/rv32i/spec.rs crates/cores/src/sha256.rs

/root/repo/target/release/deps/libowl_cores-d7eaebaea7434593.rlib: crates/cores/src/lib.rs crates/cores/src/accumulator.rs crates/cores/src/aes.rs crates/cores/src/alu_machine.rs crates/cores/src/asm.rs crates/cores/src/crypto_core.rs crates/cores/src/rv32i/mod.rs crates/cores/src/rv32i/datapath.rs crates/cores/src/rv32i/isa.rs crates/cores/src/rv32i/spec.rs crates/cores/src/sha256.rs

/root/repo/target/release/deps/libowl_cores-d7eaebaea7434593.rmeta: crates/cores/src/lib.rs crates/cores/src/accumulator.rs crates/cores/src/aes.rs crates/cores/src/alu_machine.rs crates/cores/src/asm.rs crates/cores/src/crypto_core.rs crates/cores/src/rv32i/mod.rs crates/cores/src/rv32i/datapath.rs crates/cores/src/rv32i/isa.rs crates/cores/src/rv32i/spec.rs crates/cores/src/sha256.rs

crates/cores/src/lib.rs:
crates/cores/src/accumulator.rs:
crates/cores/src/aes.rs:
crates/cores/src/alu_machine.rs:
crates/cores/src/asm.rs:
crates/cores/src/crypto_core.rs:
crates/cores/src/rv32i/mod.rs:
crates/cores/src/rv32i/datapath.rs:
crates/cores/src/rv32i/isa.rs:
crates/cores/src/rv32i/spec.rs:
crates/cores/src/sha256.rs:
