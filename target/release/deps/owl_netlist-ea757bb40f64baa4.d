/root/repo/target/release/deps/owl_netlist-ea757bb40f64baa4.d: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

/root/repo/target/release/deps/libowl_netlist-ea757bb40f64baa4.rlib: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

/root/repo/target/release/deps/libowl_netlist-ea757bb40f64baa4.rmeta: crates/netlist/src/lib.rs crates/netlist/src/eqsat.rs crates/netlist/src/lower.rs crates/netlist/src/net.rs crates/netlist/src/opt.rs crates/netlist/src/sim.rs

crates/netlist/src/lib.rs:
crates/netlist/src/eqsat.rs:
crates/netlist/src/lower.rs:
crates/netlist/src/net.rs:
crates/netlist/src/opt.rs:
crates/netlist/src/sim.rs:
