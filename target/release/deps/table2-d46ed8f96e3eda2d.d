/root/repo/target/release/deps/table2-d46ed8f96e3eda2d.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d46ed8f96e3eda2d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
