/root/repo/target/release/deps/owl_trace-ebacbabc6a5e5121.d: crates/trace/src/lib.rs crates/trace/src/report.rs

/root/repo/target/release/deps/libowl_trace-ebacbabc6a5e5121.rlib: crates/trace/src/lib.rs crates/trace/src/report.rs

/root/repo/target/release/deps/libowl_trace-ebacbabc6a5e5121.rmeta: crates/trace/src/lib.rs crates/trace/src/report.rs

crates/trace/src/lib.rs:
crates/trace/src/report.rs:
