/root/repo/target/release/deps/owl_bitvec-66969779a5946391.d: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

/root/repo/target/release/deps/libowl_bitvec-66969779a5946391.rlib: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

/root/repo/target/release/deps/libowl_bitvec-66969779a5946391.rmeta: crates/bitvec/src/lib.rs crates/bitvec/src/arith.rs crates/bitvec/src/cmp.rs crates/bitvec/src/fmt.rs crates/bitvec/src/logic.rs crates/bitvec/src/parse.rs crates/bitvec/src/shift.rs

crates/bitvec/src/lib.rs:
crates/bitvec/src/arith.rs:
crates/bitvec/src/cmp.rs:
crates/bitvec/src/fmt.rs:
crates/bitvec/src/logic.rs:
crates/bitvec/src/parse.rs:
crates/bitvec/src/shift.rs:
