/root/repo/target/release/deps/owl_sat-79664e9250c96ebf.d: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/libowl_sat-79664e9250c96ebf.rlib: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/libowl_sat-79664e9250c96ebf.rmeta: crates/sat/src/lib.rs crates/sat/src/budget.rs crates/sat/src/hash.rs crates/sat/src/heap.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/budget.rs:
crates/sat/src/hash.rs:
crates/sat/src/heap.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
