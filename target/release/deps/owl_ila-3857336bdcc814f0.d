/root/repo/target/release/deps/owl_ila-3857336bdcc814f0.d: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

/root/repo/target/release/deps/libowl_ila-3857336bdcc814f0.rlib: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

/root/repo/target/release/deps/libowl_ila-3857336bdcc814f0.rmeta: crates/ila/src/lib.rs crates/ila/src/compile.rs crates/ila/src/expr.rs crates/ila/src/golden.rs crates/ila/src/model.rs

crates/ila/src/lib.rs:
crates/ila/src/compile.rs:
crates/ila/src/expr.rs:
crates/ila/src/golden.rs:
crates/ila/src/model.rs:
