/root/repo/target/release/deps/owl-ad3818483105172e.d: src/lib.rs

/root/repo/target/release/deps/libowl-ad3818483105172e.rlib: src/lib.rs

/root/repo/target/release/deps/libowl-ad3818483105172e.rmeta: src/lib.rs

src/lib.rs:
