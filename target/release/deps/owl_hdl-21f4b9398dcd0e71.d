/root/repo/target/release/deps/owl_hdl-21f4b9398dcd0e71.d: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

/root/repo/target/release/deps/libowl_hdl-21f4b9398dcd0e71.rlib: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

/root/repo/target/release/deps/libowl_hdl-21f4b9398dcd0e71.rmeta: crates/hdl/src/lib.rs crates/hdl/src/bitops.rs crates/hdl/src/cond.rs crates/hdl/src/module.rs

crates/hdl/src/lib.rs:
crates/hdl/src/bitops.rs:
crates/hdl/src/cond.rs:
crates/hdl/src/module.rs:
