/root/repo/target/release/deps/ablation-0a7ce8a5a74b615f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-0a7ce8a5a74b615f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
