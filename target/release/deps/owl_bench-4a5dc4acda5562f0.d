/root/repo/target/release/deps/owl_bench-4a5dc4acda5562f0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libowl_bench-4a5dc4acda5562f0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libowl_bench-4a5dc4acda5562f0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
