/root/repo/target/release/deps/owl_smt-0536e3879b200ed1.d: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

/root/repo/target/release/deps/libowl_smt-0536e3879b200ed1.rlib: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

/root/repo/target/release/deps/libowl_smt-0536e3879b200ed1.rmeta: crates/smt/src/lib.rs crates/smt/src/blast.rs crates/smt/src/digest.rs crates/smt/src/eval.rs crates/smt/src/manager.rs crates/smt/src/print.rs crates/smt/src/simplify.rs crates/smt/src/solver.rs crates/smt/src/subst.rs

crates/smt/src/lib.rs:
crates/smt/src/blast.rs:
crates/smt/src/digest.rs:
crates/smt/src/eval.rs:
crates/smt/src/manager.rs:
crates/smt/src/print.rs:
crates/smt/src/simplify.rs:
crates/smt/src/solver.rs:
crates/smt/src/subst.rs:
