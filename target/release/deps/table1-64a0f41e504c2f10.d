/root/repo/target/release/deps/table1-64a0f41e504c2f10.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-64a0f41e504c2f10: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
