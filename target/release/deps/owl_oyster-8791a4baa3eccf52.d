/root/repo/target/release/deps/owl_oyster-8791a4baa3eccf52.d: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

/root/repo/target/release/deps/libowl_oyster-8791a4baa3eccf52.rlib: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

/root/repo/target/release/deps/libowl_oyster-8791a4baa3eccf52.rmeta: crates/oyster/src/lib.rs crates/oyster/src/interp.rs crates/oyster/src/ir.rs crates/oyster/src/parse.rs crates/oyster/src/print.rs crates/oyster/src/sym.rs

crates/oyster/src/lib.rs:
crates/oyster/src/interp.rs:
crates/oyster/src/ir.rs:
crates/oyster/src/parse.rs:
crates/oyster/src/print.rs:
crates/oyster/src/sym.rs:
