/root/repo/target/release/deps/owl_core-0eee044b275d7c19.d: crates/core/src/lib.rs crates/core/src/abstraction.rs crates/core/src/certify.rs crates/core/src/codegen.rs crates/core/src/conditions.rs crates/core/src/diagnose.rs crates/core/src/journal.rs crates/core/src/minimize.rs crates/core/src/session.rs crates/core/src/synth.rs crates/core/src/union.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libowl_core-0eee044b275d7c19.rlib: crates/core/src/lib.rs crates/core/src/abstraction.rs crates/core/src/certify.rs crates/core/src/codegen.rs crates/core/src/conditions.rs crates/core/src/diagnose.rs crates/core/src/journal.rs crates/core/src/minimize.rs crates/core/src/session.rs crates/core/src/synth.rs crates/core/src/union.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libowl_core-0eee044b275d7c19.rmeta: crates/core/src/lib.rs crates/core/src/abstraction.rs crates/core/src/certify.rs crates/core/src/codegen.rs crates/core/src/conditions.rs crates/core/src/diagnose.rs crates/core/src/journal.rs crates/core/src/minimize.rs crates/core/src/session.rs crates/core/src/synth.rs crates/core/src/union.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/abstraction.rs:
crates/core/src/certify.rs:
crates/core/src/codegen.rs:
crates/core/src/conditions.rs:
crates/core/src/diagnose.rs:
crates/core/src/journal.rs:
crates/core/src/minimize.rs:
crates/core/src/session.rs:
crates/core/src/synth.rs:
crates/core/src/union.rs:
crates/core/src/verify.rs:
