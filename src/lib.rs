//! # OWL — Control Logic Synthesis
//!
//! A Rust reproduction of *"Control Logic Synthesis: Drawing the Rest of
//! the OWL"* (ASPLOS 2024). This facade crate re-exports the public API of
//! every sub-crate so applications can depend on `owl` alone.
//!
//! The pipeline (paper Fig. 4): a datapath **sketch** written in the
//! PyRTL-like [`hdl`] DSL lowers to the [`oyster`] IR with *holes* where
//! control logic belongs; an [`ila`] architectural specification plus an
//! [`core::AbstractionFn`] produce pre/postconditions; a
//! [`core::SynthesisSession`] fills the holes with correct-by-construction
//! control logic via CEGIS over the [`smt`]/[`sat`] solver stack; and
//! [`netlist`] lowers the completed design to gates. The [`service`]
//! layer runs many sessions concurrently with admission control, load
//! shedding, retry, and crash recovery, and the [`trace`] layer
//! observes the whole stack (structured spans, counters, Chrome-trace
//! export) without perturbing any output.
//!
//! # Quick start
//!
//! See `examples/quickstart.rs` for the accumulator FSM from the paper's
//! Section 2.3, synthesized end to end.

pub use owl_bitvec as bitvec;
pub use owl_cache as cache;
pub use owl_core as core;
pub use owl_egraph as egraph;
pub use owl_cores as cores;
pub use owl_hdl as hdl;
pub use owl_ila as ila;
pub use owl_netlist as netlist;
pub use owl_oyster as oyster;
pub use owl_sat as sat;
pub use owl_service as service;
pub use owl_smt as smt;
pub use owl_trace as trace;

pub use owl_bitvec::BitVec;
