//! Property-based tests over the substrate crates: the bitvector algebra
//! against native integer semantics, the SAT solver against brute force,
//! SMT simplification and bit-blasting against concrete evaluation, the
//! Oyster text format round trip, and the synthesis journal's
//! encode/decode round trip and truncation recovery.

use owl::core::journal::{read_journal, MemJournal, Record, SnapStatus, TaskSnapshot, MAGIC};
use owl::core::{CoreError, QueryLog};
use owl::sat::{Lit, SolveResult, Solver};
use owl::smt::{check, Env, SmtResult, TermId, TermManager};
use owl::BitVec;
use proptest::prelude::*;

// ----------------------------------------------------------------------
// BitVec vs. u128 reference semantics
// ----------------------------------------------------------------------

fn mask(width: u32, v: u128) -> u128 {
    if width == 128 {
        v
    } else {
        v & ((1u128 << width) - 1)
    }
}

proptest! {
    #[test]
    fn bitvec_arith_matches_u128(a in any::<u128>(), b in any::<u128>(), width in 1u32..=128) {
        let (am, bm) = (mask(width, a), mask(width, b));
        let (x, y) = (BitVec::from_u128(width, am), BitVec::from_u128(width, bm));
        prop_assert_eq!(x.add(&y).to_u128().unwrap(), mask(width, am.wrapping_add(bm)));
        prop_assert_eq!(x.sub(&y).to_u128().unwrap(), mask(width, am.wrapping_sub(bm)));
        prop_assert_eq!(x.mul(&y).to_u128().unwrap(), mask(width, am.wrapping_mul(bm)));
        prop_assert_eq!(x.and(&y).to_u128().unwrap(), am & bm);
        prop_assert_eq!(x.or(&y).to_u128().unwrap(), am | bm);
        prop_assert_eq!(x.xor(&y).to_u128().unwrap(), am ^ bm);
        prop_assert_eq!(x.not().to_u128().unwrap(), mask(width, !am));
        prop_assert_eq!(x.ult(&y), am < bm);
        prop_assert_eq!(x.ule(&y), am <= bm);
    }

    #[test]
    fn bitvec_shifts_match_u128(a in any::<u128>(), shift in 0u32..140, width in 1u32..=128) {
        let am = mask(width, a);
        let x = BitVec::from_u128(width, am);
        let expect_shl = if shift >= width { 0 } else { mask(width, am << shift) };
        let expect_shr = if shift >= width { 0 } else { am >> shift };
        prop_assert_eq!(x.shl_amount(shift).to_u128().unwrap(), expect_shl);
        prop_assert_eq!(x.lshr_amount(shift).to_u128().unwrap(), expect_shr);
        // Rotation round-trips.
        prop_assert_eq!(x.rol_amount(shift % width).ror_amount(shift % width), x);
    }

    #[test]
    fn bitvec_division_matches_u128(a in any::<u128>(), b in any::<u128>(), width in 1u32..=64) {
        let (am, bm) = (mask(width, a), mask(width, b));
        let (x, y) = (BitVec::from_u128(width, am), BitVec::from_u128(width, bm));
        if bm != 0 {
            prop_assert_eq!(x.udiv(&y).to_u128().unwrap(), am / bm);
            prop_assert_eq!(x.urem(&y).to_u128().unwrap(), am % bm);
        } else {
            prop_assert!(x.udiv(&y).is_ones());
            prop_assert_eq!(x.urem(&y), x);
        }
    }

    #[test]
    fn bitvec_signed_compare_matches_i128(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (BitVec::from_u64(64, a), BitVec::from_u64(64, b));
        prop_assert_eq!(x.slt(&y), (a as i64) < (b as i64));
        prop_assert_eq!(x.sle(&y), (a as i64) <= (b as i64));
    }

    #[test]
    fn bitvec_parse_display_round_trip(a in any::<u128>(), width in 1u32..=128) {
        let x = BitVec::from_u128(width, mask(width, a));
        let text = x.to_string();
        prop_assert_eq!(text.parse::<BitVec>().unwrap(), x);
    }
}

// ----------------------------------------------------------------------
// SAT solver vs. brute force on small random CNFs
// ----------------------------------------------------------------------

fn brute_force_sat(nvars: usize, clauses: &[Vec<i32>]) -> bool {
    (0..1u32 << nvars).any(|assignment| {
        clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let var = (lit.unsigned_abs() - 1) as usize;
                let value = (assignment >> var) & 1 == 1;
                if lit > 0 {
                    value
                } else {
                    !value
                }
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sat_agrees_with_brute_force(
        clauses in proptest::collection::vec(
            proptest::collection::vec((1i32..=8, any::<bool>()), 1..=3),
            1..24,
        )
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().map(|(v, neg)| if neg { -v } else { v }).collect())
            .collect();
        let mut solver = Solver::new();
        let vars: Vec<_> = (0..8).map(|_| solver.new_var()).collect();
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&l| {
                Lit::with_sign(vars[(l.unsigned_abs() - 1) as usize], l > 0)
            }));
        }
        let expected = brute_force_sat(8, &clauses);
        match solver.solve() {
            SolveResult::Sat => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                // The model satisfies every clause.
                for clause in &clauses {
                    let satisfied = clause.iter().any(|&l| {
                        let v =
                            solver.value(vars[(l.unsigned_abs() - 1) as usize]).unwrap_or(false);
                        if l > 0 {
                            v
                        } else {
                            !v
                        }
                    });
                    prop_assert!(satisfied);
                }
            }
            SolveResult::Unsat => prop_assert!(!expected, "solver said UNSAT, brute force says SAT"),
            SolveResult::Unknown => prop_assert!(false, "no budget set; Unknown impossible"),
        }
    }
}

// ----------------------------------------------------------------------
// SMT terms: random expressions evaluate consistently through folding
// and through the bit-blaster.
// ----------------------------------------------------------------------

/// A tiny random term generator over two 8-bit variables.
fn build_term(mgr: &mut TermManager, x: TermId, y: TermId, ops: &[u8]) -> TermId {
    let mut stack = vec![x, y];
    for &op in ops {
        let a = stack.pop().unwrap_or(x);
        let b = stack.pop().unwrap_or(y);
        let t = match op % 12 {
            0 => mgr.add(a, b),
            1 => mgr.sub(a, b),
            2 => mgr.and(a, b),
            3 => mgr.or(a, b),
            4 => mgr.xor(a, b),
            5 => mgr.not(a),
            6 => {
                let c = mgr.ult(a, b);
                mgr.ite(c, a, b)
            }
            7 => mgr.shl(a, b),
            8 => mgr.lshr(a, b),
            9 => mgr.mul(a, b),
            10 => {
                let e = mgr.extract(a, 6, 2);
                mgr.zext(e, 8)
            }
            _ => {
                let e = mgr.extract(a, 3, 0);
                mgr.sext(e, 8)
            }
        };
        stack.push(t);
    }
    stack.pop().expect("nonempty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn blasted_terms_agree_with_evaluation(
        ops in proptest::collection::vec(any::<u8>(), 1..12),
        xv in any::<u8>(),
        yv in any::<u8>(),
    ) {
        let mut mgr = TermManager::new();
        let x = mgr.fresh_var("x", 8);
        let y = mgr.fresh_var("y", 8);
        let t = build_term(&mut mgr, x, y, &ops);

        // Concrete evaluation under (xv, yv).
        let mut env = Env::new();
        env.set_var(mgr.as_var(x).unwrap(), BitVec::from_u64(8, u64::from(xv)));
        env.set_var(mgr.as_var(y).unwrap(), BitVec::from_u64(8, u64::from(yv)));
        let expect = env.eval(&mgr, t);

        // The solver must agree: pin x and y, ask for t's value.
        let cx = mgr.const_u64(8, u64::from(xv));
        let cy = mgr.const_u64(8, u64::from(yv));
        let ex = mgr.eq(x, cx);
        let ey = mgr.eq(y, cy);
        let w = mgr.width(t);
        let out = mgr.fresh_var("out", w);
        let tie = mgr.eq(out, t);
        match check(&mut mgr, &[ex, ey, tie], None) {
            SmtResult::Sat(model) => prop_assert_eq!(model.eval(&mgr, out), expect),
            other => prop_assert!(false, "expected SAT, got {:?}", other),
        }
    }
}

// ----------------------------------------------------------------------
// Oyster parser/printer round trip on generated designs
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn oyster_round_trip_random_exprs(
        widths in proptest::collection::vec(1u32..12, 2..5),
        ops in proptest::collection::vec(any::<u8>(), 1..10),
    ) {
        use owl::oyster::{Design, Expr};
        let mut d = Design::new("prop");
        for (i, w) in widths.iter().enumerate() {
            d.input(format!("in{i}"), *w);
        }
        // Build a random same-width expression over input 0.
        let w = widths[0];
        let mut e = Expr::var("in0");
        for &op in &ops {
            e = match op % 6 {
                0 => e.clone().add(Expr::var("in0")),
                1 => e.clone().xor(Expr::var("in0")),
                2 => e.not(),
                3 => Expr::ite(Expr::const_u64(1, u64::from(op & 1)), e.clone(), e),
                4 => e.clone().and(Expr::const_u64(w, u64::from(op))),
                _ => e.clone().or(Expr::var("in0")),
            };
        }
        d.assign("out_wire", e);
        let text = d.to_string();
        let reparsed: Design = text.parse().expect("round trip parses");
        prop_assert_eq!(d, reparsed);
    }
}

// ----------------------------------------------------------------------
// Synthesis journal: encode/decode round trip and truncation recovery
// ----------------------------------------------------------------------

/// A raw generated record: (instr suffix, kind selector, rounds,
/// message, holes, certification failures, qlog tallies).
type RawRecord =
    (String, u8, usize, String, Vec<(String, u32, u64)>, Vec<String>, Vec<u16>);

/// A local (journalable) error. The error's `instr` is reconstructed
/// from the enclosing record's on decode, so it must match here for the
/// round trip to be an equality.
fn local_error(instr: &str, pick: u8, rounds: usize, msg: &str) -> CoreError {
    match pick % 6 {
        0 => CoreError::NoSolution { instr: instr.to_string() },
        1 => CoreError::SolverExhausted { instr: instr.to_string() },
        2 => CoreError::NoConvergence { instr: instr.to_string(), rounds },
        3 => CoreError::Invalid(msg.to_string()),
        4 => CoreError::Internal { instr: instr.to_string(), message: msg.to_string() },
        _ => CoreError::Stalled { instr: instr.to_string() },
    }
}

fn build_record(raw: &RawRecord) -> Record {
    let (suffix, kind, rounds, msg, holes, fails, nums) = raw;
    let instr = format!("I_{suffix}");
    if kind % 5 == 0 {
        return Record::Stall { instr };
    }
    let status = match (kind / 5) % 3 {
        0 => SnapStatus::Solved,
        1 => SnapStatus::Reused,
        _ => SnapStatus::Failed(local_error(&instr, kind / 16, *rounds, msg)),
    };
    let holes = if kind % 2 == 0 {
        None
    } else {
        Some(
            holes
                .iter()
                .map(|(name, width, value)| {
                    let masked =
                        if *width == 64 { *value } else { value & ((1u64 << width) - 1) };
                    (name.clone(), BitVec::from_u64(*width, masked))
                })
                .collect(),
        )
    };
    let qlog = QueryLog {
        sat_verified: usize::from(nums[0]),
        unsat_verified: usize::from(nums[1]),
        trivial: usize::from(nums[2]),
        unchecked: usize::from(nums[3]),
        failures: fails.clone(),
        terms_before: usize::from(nums[4]),
        terms_after: usize::from(nums[5]),
        cnf_vars: usize::from(nums[6]),
        cnf_clauses: usize::from(nums[7]),
    };
    let snap = TaskSnapshot {
        status,
        escalations: u32::from(*kind),
        holes,
        qlog,
        cex_rounds: *rounds,
        solver_calls: usize::from(nums[0]) + usize::from(nums[1]),
        reused: usize::from(kind % 2),
        stat_escalations: usize::from(kind / 3),
    };
    if kind % 5 == 1 {
        Record::Retry { instr, snap }
    } else {
        Record::Task { instr, snap }
    }
}

fn raw_record_strategy() -> impl Strategy<Value = RawRecord> {
    (
        any::<String>(),
        any::<u8>(),
        0usize..10_000,
        any::<String>(),
        proptest::collection::vec((any::<String>(), 1u32..=64, any::<u64>()), 0..4),
        proptest::collection::vec(any::<String>(), 0..3),
        proptest::collection::vec(any::<u16>(), 8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary records — instruction names and messages drawn from
    /// *all* of `String`, including quotes, control characters, and
    /// multi-byte UTF-8 — survive the journal text format unchanged.
    #[test]
    fn journal_records_round_trip(
        raws in proptest::collection::vec(raw_record_strategy(), 1..8),
        fp in any::<u64>(),
    ) {
        let records: Vec<Record> = raws.iter().map(build_record).collect();
        let mut mem = MemJournal::default();
        mem.append_line(MAGIC).unwrap();
        mem.append_line(&format!("fingerprint {fp:016x}")).unwrap();
        for (i, rec) in records.iter().enumerate() {
            mem.append_line(&rec.encode(i as u64)).unwrap();
        }
        let contents = read_journal(&mut mem);
        prop_assert_eq!(contents.fingerprint, Some(fp));
        prop_assert!(!contents.truncated, "an intact journal must not report truncation");
        prop_assert_eq!(contents.records, records);
    }

    /// A journal cut at an arbitrary byte offset recovers an exact
    /// prefix of its records — never a panic, never a garbled record.
    #[test]
    fn journal_truncation_recovers_an_exact_prefix(
        raws in proptest::collection::vec(raw_record_strategy(), 1..6),
        fp in any::<u64>(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let records: Vec<Record> = raws.iter().map(build_record).collect();
        let mut mem = MemJournal::default();
        mem.append_line(MAGIC).unwrap();
        mem.append_line(&format!("fingerprint {fp:016x}")).unwrap();
        for (i, rec) in records.iter().enumerate() {
            mem.append_line(&rec.encode(i as u64)).unwrap();
        }
        let full = mem.bytes.clone();
        let cut = ((full.len() as f64 * cut_frac) as usize).min(full.len());
        // A cut inside a multi-byte character leaves invalid UTF-8,
        // which reads as an empty journal — the empty prefix, so the
        // assertion below still holds.
        let mut partial = MemJournal { bytes: full[..cut].to_vec(), faults: None };
        let contents = read_journal(&mut partial);
        prop_assert!(contents.records.len() <= records.len());
        prop_assert_eq!(
            contents.records.as_slice(),
            &records[..contents.records.len()]
        );
    }
}
