//! The incremental-solving identity contract, checked end to end:
//! synthesis with persistent solver sessions (`incremental = true`, the
//! default) must produce byte-identical solutions, outcomes,
//! certificates, completed designs, and netlists to the scratch path
//! (`incremental = false`), at every parallelism level. Only the reuse
//! provenance counters may differ — they describe how answers were
//! computed, never which answers.

use owl::core::{
    complete_design, control_union, SynthesisConfig, SynthesisOutput, SynthesisSession,
};
use owl::netlist::lower;
use owl::smt::TermManager;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Asserts that two synthesis outputs are observably identical modulo
/// the reuse provenance counters (`clauses_retained`,
/// `blast_cache_hits`, `incremental_rounds`), which are excluded from
/// the identity contract by design.
fn assert_identical_modulo_provenance(label: &str, a: &SynthesisOutput, b: &SynthesisOutput) {
    assert_eq!(a.solutions.len(), b.solutions.len(), "{label}: solution count");
    for (x, y) in a.solutions.iter().zip(&b.solutions) {
        assert_eq!(x.instr, y.instr, "{label}: solution order");
        assert_eq!(x.holes, y.holes, "{label}: hole values for {}", x.instr);
    }
    assert_eq!(
        format!("{:?}", a.outcomes),
        format!("{:?}", b.outcomes),
        "{label}: per-instruction outcomes"
    );
    assert_eq!(a.stats.solver_calls, b.stats.solver_calls, "{label}: solver calls");
    assert_eq!(a.stats.cex_rounds, b.stats.cex_rounds, "{label}: CEGIS rounds");
    assert_eq!(a.stats.cnf_vars, b.stats.cnf_vars, "{label}: CNF vars");
    assert_eq!(a.stats.cnf_clauses, b.stats.cnf_clauses, "{label}: CNF clauses");
    match (&a.certificate, &b.certificate) {
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.to_string(), cb.to_string(), "{label}: certificates")
        }
        (None, None) => {}
        _ => panic!("{label}: one run certified, the other did not"),
    }
}

fn run_rv32i(incremental: bool, threads: usize) -> (SynthesisOutput, String, String) {
    let cs = owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::BASE);
    let config = SynthesisConfig::builder().incremental(incremental).build();
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .parallelism(threads)
        .run_with(&mut mgr)
        .expect("valid inputs");
    assert!(
        out.is_complete(),
        "incremental={incremental} threads={threads}: {:?}",
        out.first_error()
    );
    let union =
        control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).expect("union succeeds");
    let completed = complete_design(&cs.sketch, &union);
    let design = completed.to_string();
    let netlist = format!("{:?}", lower(&completed).expect("lowers").stats());
    (out, design, netlist)
}

/// The headline property: RV32I synthesized with persistent sessions at
/// 1, 2, and 8 workers is indistinguishable from the scratch oracle —
/// same controls, same certificates, same completed design, same
/// netlist — while the provenance counters prove reuse actually
/// happened.
#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn rv32i_incremental_matches_scratch_at_every_parallelism() {
    let (scratch, scratch_design, scratch_netlist) = run_rv32i(false, 1);
    assert_eq!(scratch.stats.clauses_retained, 0, "scratch retains nothing");
    assert_eq!(scratch.stats.blast_cache_hits, 0, "scratch reblasts everything");
    assert_eq!(scratch.stats.incremental_rounds, 0, "scratch runs no warm rounds");

    for threads in THREAD_COUNTS {
        let label = format!("threads={threads}");
        let (on, design, netlist) = run_rv32i(true, threads);
        assert_identical_modulo_provenance(&label, &scratch, &on);
        assert_eq!(scratch_design, design, "{label}: completed design");
        assert_eq!(scratch_netlist, netlist, "{label}: netlist stats");
        // RV32I needs multiple CEGIS rounds, so a warm session must
        // demonstrably retain state across them.
        assert!(on.stats.clauses_retained >= 1, "{label}: no clauses retained");
        assert!(on.stats.blast_cache_hits >= 1, "{label}: blast cache never hit");
        assert!(on.stats.incremental_rounds >= 1, "{label}: no warm solver rounds");
    }
}

/// The same contract on the small accumulator case study, cheap enough
/// to run everywhere: on/off agree at every thread count.
#[test]
fn accumulator_incremental_matches_scratch() {
    let cs = owl::cores::accumulator::case_study();
    let mut scratch_ref: Option<SynthesisOutput> = None;
    for threads in THREAD_COUNTS {
        for incremental in [false, true] {
            let config = SynthesisConfig::builder().incremental(incremental).build();
            let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
                .config(config)
                .parallelism(threads)
                .run()
                .expect("valid inputs");
            assert!(
                out.is_complete(),
                "incremental={incremental} threads={threads}: {:?}",
                out.first_error()
            );
            if !incremental {
                assert_eq!(out.stats.blast_cache_hits, 0, "threads={threads}: scratch hits");
            }
            match &scratch_ref {
                None => scratch_ref = Some(out),
                Some(r) => assert_identical_modulo_provenance(
                    &format!("incremental={incremental} threads={threads}"),
                    r,
                    &out,
                ),
            }
        }
    }
}
