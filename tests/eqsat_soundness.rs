//! Property-based soundness harness for the equality-saturation layer:
//! random bitvector term DAGs must evaluate identically before and
//! after `owl_smt::simplify_terms`, and random gate-level designs must
//! simulate identically before and after the netlist eqsat pass.
//!
//! Deterministic in-crate mirrors of these sweeps live in
//! `crates/smt/src/simplify.rs` and `crates/netlist/src/eqsat.rs`; this
//! file drives the same invariants with proptest's shrinking search.

use owl::netlist::{lower, optimize_with, GateSim, OptLevel};
use owl::oyster::Design;
use owl::smt::{simplify_terms, Budget, Env, SaturationLimits, TermId, TermManager};
use owl::BitVec;
use proptest::prelude::*;
use std::collections::HashMap;

// ----------------------------------------------------------------------
// Term-level: eval(simplify(t)) == eval(t)
// ----------------------------------------------------------------------

/// One step of the random term-DAG recipe: an operator code plus operand
/// picks (taken modulo the live pool size, so any indices are valid).
type Step = (u8, usize, usize, u64);

/// Builds a width-8 term pool from the recipe and returns a 1-bit root
/// (a comparison or reduction, so tautologies and contradictions show
/// up too), along with the 8-bit variables and the 1-bit condition.
fn build_term(
    mgr: &mut TermManager,
    steps: &[Step],
    root_sel: u8,
) -> (TermId, Vec<TermId>, TermId) {
    let vars: Vec<TermId> = (0..4).map(|i| mgr.fresh_var(format!("v{i}"), 8)).collect();
    let cond = mgr.fresh_var("c", 1);
    let mut pool = vars.clone();
    for &(op, ai, bi, k) in steps {
        let a = pool[ai % pool.len()];
        let b = pool[bi % pool.len()];
        let t = match op % 14 {
            0 => mgr.and(a, b),
            1 => mgr.or(a, b),
            2 => mgr.xor(a, b),
            3 => mgr.add(a, b),
            4 => mgr.sub(a, b),
            5 => mgr.mul(a, b),
            6 => {
                let c = mgr.const_u64(8, k % 10);
                mgr.shl(a, c)
            }
            7 => {
                let c = mgr.const_u64(8, k % 10);
                mgr.lshr(a, c)
            }
            8 => mgr.not(a),
            9 => mgr.ite(cond, a, b),
            10 => {
                let hi = mgr.extract(a, 7, 4);
                let lo = mgr.extract(b, 3, 0);
                mgr.concat(hi, lo)
            }
            11 => {
                let lo = mgr.extract(a, 3, 0);
                mgr.zext(lo, 8)
            }
            12 => {
                let lo = mgr.extract(a, 4, 0);
                mgr.sext(lo, 8)
            }
            _ => {
                let c = mgr.const_u64(8, k);
                mgr.xor(a, c)
            }
        };
        pool.push(t);
    }
    let lhs = *pool.last().unwrap();
    let rhs = pool[pool.len() / 2];
    let root = match root_sel % 3 {
        0 => mgr.eq(lhs, rhs),
        1 => mgr.ult(lhs, rhs),
        _ => mgr.red_or(lhs),
    };
    (root, vars, cond)
}

proptest! {
    #[test]
    fn simplified_terms_evaluate_identically(
        steps in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<u64>()), 1..16),
        root_sel in any::<u8>(),
        envs in proptest::collection::vec((any::<[u8; 4]>(), any::<bool>()), 1..5),
    ) {
        let mut mgr = TermManager::new();
        let (root, vars, cond) = build_term(&mut mgr, &steps, root_sel);
        let (out, stats) = simplify_terms(
            &mut mgr,
            &[root],
            &Budget::unlimited(),
            &SaturationLimits::default(),
        );
        prop_assert!(stats.applied);
        prop_assert_eq!(mgr.width(out[0]), mgr.width(root));
        for (vals, cval) in envs {
            let mut env = Env::new();
            for (&v, &val) in vars.iter().zip(vals.iter()) {
                env.set_var(mgr.as_var(v).unwrap(), BitVec::from_u64(8, u64::from(val)));
            }
            env.set_var(mgr.as_var(cond).unwrap(), BitVec::from_u64(1, u64::from(cval)));
            prop_assert_eq!(env.eval(&mgr, root), env.eval(&mgr, out[0]));
        }
    }

    #[test]
    fn deadline_limited_simplification_is_still_sound(
        steps in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<u64>()), 1..16),
        root_sel in any::<u8>(),
        vals in any::<[u8; 4]>(),
        cval in any::<bool>(),
    ) {
        // A zero deadline forces the mid-saturation bail-out path; the
        // partial result must still be equivalent.
        let mut mgr = TermManager::new();
        let (root, vars, cond) = build_term(&mut mgr, &steps, root_sel);
        let budget = Budget::unlimited().with_deadline_in(std::time::Duration::ZERO);
        let (out, _) =
            simplify_terms(&mut mgr, &[root], &budget, &SaturationLimits::default());
        let mut env = Env::new();
        for (&v, &val) in vars.iter().zip(vals.iter()) {
            env.set_var(mgr.as_var(v).unwrap(), BitVec::from_u64(8, u64::from(val)));
        }
        env.set_var(mgr.as_var(cond).unwrap(), BitVec::from_u64(1, u64::from(cval)));
        prop_assert_eq!(env.eval(&mgr, root), env.eval(&mgr, out[0]));
    }
}

// ----------------------------------------------------------------------
// Netlist-level: GateSim(optimize_with(Eqsat)) == GateSim(lowered)
// ----------------------------------------------------------------------

/// One random gate: operator code plus operand picks.
type Gate = (u8, usize, usize);

fn random_design(gates: &[Gate]) -> Design {
    let vars = ["a", "b", "c", "d"];
    let mut exprs: Vec<String> = vars.iter().map(|v| (*v).to_string()).collect();
    for &(op, xi, yi) in gates {
        let x = exprs[xi % exprs.len()].clone();
        let y = exprs[yi % exprs.len()].clone();
        let e = match op % 5 {
            0 => format!("({x} & {y})"),
            1 => format!("({x} | {y})"),
            2 => format!("({x} ^ {y})"),
            3 => format!("(~{x})"),
            _ => format!("({x} == {y})"),
        };
        exprs.push(e);
    }
    let body = exprs.last().unwrap();
    let text = format!(
        "design r\ninput a 1\ninput b 1\ninput c 1\ninput d 1\noutput o 1\no := {body}\nend\n"
    );
    text.parse().expect("generated design parses")
}

proptest! {
    #[test]
    fn eqsat_netlist_simulates_identically(
        gates in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..12),
    ) {
        let design = random_design(&gates);
        let nl = lower(&design).unwrap();
        let out = optimize_with(&nl, OptLevel::Eqsat);
        // 1-bit inputs: check all 16 assignments exhaustively.
        for assignment in 0..16u64 {
            let ins: HashMap<String, BitVec> = ["a", "b", "c", "d"]
                .iter()
                .enumerate()
                .map(|(i, v)| ((*v).to_string(), BitVec::from_u64(1, (assignment >> i) & 1)))
                .collect();
            let o1 = GateSim::new(&nl).step(&ins);
            let o2 = GateSim::new(&out).step(&ins);
            prop_assert_eq!(o1, o2, "assignment {:04b}", assignment);
        }
    }
}
