//! Differential testing of the synthesized single-cycle RISC-V core:
//! random-ish instruction streams run on the completed hardware (via the
//! Oyster interpreter) and on the ILA golden model, comparing all
//! architectural state every step.
//!
//! These tests synthesize a full core, so they are release-mode material;
//! in debug builds they are ignored (run `cargo test --release -- --ignored`
//! or rely on the release CI pass).

use owl::cores::asm::{Asm, Program};
use owl::cores::rv32i::{self, Extensions};
use owl::ila::golden::{GoldenModel, SpecState};
use owl::oyster::Interpreter;
use owl::smt::TermManager;
use owl::BitVec;
use std::collections::HashMap;

fn completed_core(ext: Extensions) -> (owl::cores::CaseStudy, owl::oyster::Design) {
    use owl::core::{complete_design, control_union, SynthesisSession};
    let cs = rv32i::single_cycle(ext);
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .expect("synthesis succeeds");
    let union =
        control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).expect("union succeeds");
    let complete = complete_design(&cs.sketch, &union);
    (cs, complete)
}

/// Runs `program` on both the hardware and the golden model for
/// `steps` architectural steps, checking pc and every written register.
fn differential_run(ext: Extensions, program: &Program, steps: usize) {
    let (cs, complete) = completed_core(ext);
    let code = program.encode();

    // Hardware side.
    let mut sim = Interpreter::new(&complete).expect("simulatable");
    for (i, word) in code.iter().enumerate() {
        sim.poke_mem("i_mem", i as u64, BitVec::from_u64(32, u64::from(*word))).expect("poke");
    }

    // Golden model side.
    let model = GoldenModel::new(&cs.spec).expect("golden model");
    let mut st = SpecState::zeroed(&cs.spec);
    for (i, word) in code.iter().enumerate() {
        st.mems.get_mut("imem").expect("imem").write(i as u64, BitVec::from_u64(32, u64::from(*word)));
    }

    let inputs = HashMap::new();
    for step in 0..steps {
        let fired = model.step(&mut st).expect("golden step");
        assert!(fired.is_some(), "golden model decoded nothing at step {step}");
        sim.step(&inputs).expect("hardware step");
        assert_eq!(
            sim.reg("pc").expect("pc"),
            &st.bvs["pc"],
            "pc diverged at step {step} ({fired:?})"
        );
        for reg in 0..32u64 {
            assert_eq!(
                sim.mem("rf").expect("rf").read(reg),
                st.mems["GPR"].read(reg),
                "x{reg} diverged at step {step} ({fired:?})"
            );
        }
    }
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn straightline_arithmetic_matches_golden_model() {
    let mut p = Program::new();
    p.li(1, 0xDEAD_BEEF);
    p.li(2, 0x0F0F_3344);
    p.push(Asm::Add { rd: 3, rs1: 1, rs2: 2 });
    p.push(Asm::Sub { rd: 4, rs1: 1, rs2: 2 });
    p.push(Asm::Xor { rd: 5, rs1: 1, rs2: 2 });
    p.push(Asm::And { rd: 6, rs1: 1, rs2: 2 });
    p.push(Asm::Or { rd: 7, rs1: 1, rs2: 2 });
    p.push(Asm::Sll { rd: 8, rs1: 1, rs2: 2 });
    p.push(Asm::Srl { rd: 9, rs1: 1, rs2: 2 });
    p.push(Asm::Sra { rd: 10, rs1: 1, rs2: 2 });
    p.push(Asm::Slt { rd: 11, rs1: 1, rs2: 2 });
    p.push(Asm::Sltu { rd: 12, rs1: 1, rs2: 2 });
    p.push(Asm::Slti { rd: 13, rs1: 1, imm: -5 });
    p.push(Asm::Addi { rd: 14, rs1: 3, imm: 2047 });
    p.push(Asm::Andi { rd: 15, rs1: 1, imm: -256 });
    let steps = p.len();
    differential_run(Extensions::BASE, &p, steps);
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn memory_traffic_matches_golden_model() {
    let mut p = Program::new();
    p.li(1, 0x200); // base address
    p.li(2, 0xA1B2_C3D4);
    p.push(Asm::Sw { rs2: 2, rs1: 1, offset: 0 });
    p.push(Asm::Sh { rs2: 2, rs1: 1, offset: 6 });
    p.push(Asm::Sb { rs2: 2, rs1: 1, offset: 9 });
    p.push(Asm::Lw { rd: 3, rs1: 1, offset: 0 });
    p.push(Asm::Lh { rd: 4, rs1: 1, offset: 0 });
    p.push(Asm::Lhu { rd: 5, rs1: 1, offset: 2 });
    p.push(Asm::Lb { rd: 6, rs1: 1, offset: 3 });
    p.push(Asm::Lbu { rd: 7, rs1: 1, offset: 9 });
    p.push(Asm::Lw { rd: 8, rs1: 1, offset: 4 });
    let steps = p.len();
    differential_run(Extensions::BASE, &p, steps);
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn branches_and_jumps_match_golden_model() {
    let mut p = Program::new();
    p.li(1, 5); // 0: x1 = 5
    p.li(2, 5); // 4: x2 = 5
    p.push(Asm::Beq { rs1: 1, rs2: 2, offset: 8 }); // 8: taken -> 16
    p.li(3, 111); // 12: skipped
    p.push(Asm::Bne { rs1: 1, rs2: 2, offset: 8 }); // 16: not taken
    p.push(Asm::Blt { rs1: 1, rs2: 2, offset: 8 }); // 20: not taken (5 < 5)
    p.push(Asm::Bge { rs1: 1, rs2: 2, offset: 8 }); // 24: taken -> 32
    p.li(3, 222); // 28: skipped
    p.push(Asm::Jal { rd: 4, offset: 8 }); // 32: jump -> 40, x4 = 36
    p.li(3, 333); // 36: skipped
    p.push(Asm::Jalr { rd: 5, rs1: 4, offset: 8 }); // 40: -> (36+8)=44, x5 = 44
    p.push(Asm::Addi { rd: 6, rs1: 5, imm: 1 }); // 44
    // Executed stream: 0,4,8,16,20,24,32,40,44 = 9 architectural steps
    // (li's may be two instructions; count below is computed dynamically).
    differential_run(Extensions::BASE, &p, 9);
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn zbkb_zbkc_instructions_match_golden_model() {
    let mut p = Program::new();
    p.li(1, 0x1234_5678);
    p.li(2, 0x0000_0005);
    p.push(Asm::Rol { rd: 3, rs1: 1, rs2: 2 });
    p.push(Asm::Ror { rd: 4, rs1: 1, rs2: 2 });
    p.push(Asm::Rori { rd: 5, rs1: 1, shamt: 13 });
    p.push(Asm::Andn { rd: 6, rs1: 1, rs2: 2 });
    let steps = p.len();
    differential_run(Extensions::ZBKC, &p, steps);
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn pseudo_random_alu_soak_matches_golden_model() {
    // A deterministic pseudo-random mix of ALU ops over x1..x15.
    let mut p = Program::new();
    let mut seed = 0x9E37_79B9u64;
    p.li(1, 0x0BAD_F00D);
    p.li(2, 0x1357_9BDF);
    for _ in 0..60 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let rd = 1 + ((seed >> 8) % 15) as u32;
        let rs1 = 1 + ((seed >> 16) % 15) as u32;
        let rs2 = 1 + ((seed >> 24) % 15) as u32;
        let imm = ((seed >> 33) & 0x7FF) as i32 - 1024;
        match (seed >> 45) % 8 {
            0 => p.push(Asm::Add { rd, rs1, rs2 }),
            1 => p.push(Asm::Sub { rd, rs1, rs2 }),
            2 => p.push(Asm::Xor { rd, rs1, rs2 }),
            3 => p.push(Asm::Addi { rd, rs1, imm }),
            4 => p.push(Asm::Sltu { rd, rs1, rs2 }),
            5 => p.push(Asm::Sll { rd, rs1, rs2 }),
            6 => p.push(Asm::Sra { rd, rs1, rs2 }),
            _ => p.push(Asm::Ori { rd, rs1, imm }),
        };
    }
    let steps = p.len();
    differential_run(Extensions::BASE, &p, steps);
}
