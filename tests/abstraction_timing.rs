//! Negative tests for the abstraction function's timing role.
//!
//! The paper is explicit that the α timing is load-bearing: "without this
//! timing information the generated pre- and postconditions will not have
//! semantically valid values and the program synthesizer will fail to
//! find a satisfying implementation" (§4.1.2), and the crypto core's
//! `instruction_valid` assumption is what stops the solver from chasing
//! flushed instructions (§4.2). These tests check both failure modes
//! actually occur — and that the failures are reported, not mis-solved.

use owl::core::{
    AbstractionFn, DatapathKind, SynthesisConfig, SynthesisMode, SynthesisSession,
};
use owl::cores::{alu_machine, crypto_core};
use owl::smt::TermManager;
use std::time::Duration;

fn quick_config() -> SynthesisConfig {
    SynthesisConfig::builder()
        .mode(SynthesisMode::PerInstruction)
        .max_cex_rounds(32)
        .conflict_budget(200_000)
        .time_budget(Duration::from_secs(120))
        .build()
}

#[test]
fn alu_machine_fails_with_wrong_write_time() {
    // The three-stage ALU writes the register file at time 3; claiming
    // time 2 makes the postcondition compare against the pipeline
    // mid-flight, which no control constants can satisfy.
    let cs = alu_machine::case_study();
    let mut wrong = AbstractionFn::new(3);
    wrong
        .map_input("op", "op")
        .map_input("dest", "dest")
        .map_input("src1", "src1")
        .map_input("src2", "src2")
        .map("regs", "regfile", DatapathKind::Memory, [1], [2]);
    let mut mgr = TermManager::new();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &wrong)
        .config(quick_config())
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    assert!(result.is_err(), "mis-timed abstraction function must not synthesize");
}

#[test]
fn alu_machine_fails_with_wrong_cycle_count() {
    // Evaluating only 2 cycles of a 3-deep pipeline cannot expose the
    // write-back at all (a write at time 3 is out of range, caught by
    // validation).
    let mut alpha = AbstractionFn::new(2);
    alpha.map("regs", "regfile", DatapathKind::Memory, [1], [3]);
    assert!(alpha.check().is_err());
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a pipelined core; run in release")]
#[test]
fn crypto_core_fails_without_instruction_valid_assumption() {
    let cs = crypto_core::case_study();
    // Same α minus the assumption.
    let mut no_assume = AbstractionFn::new(3);
    no_assume
        .map("pc", "pc", DatapathKind::Register, [1], [2])
        .map("GPR", "rf", DatapathKind::Memory, [2], [3])
        .map("mem", "d_mem", DatapathKind::Memory, [3], [3])
        .map("imem", "i_mem", DatapathKind::Memory, [1], []);
    let mut mgr = TermManager::new();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &no_assume)
        .config(quick_config())
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    assert!(
        result.is_err(),
        "without the instruction_valid assumption, the flushed-slot case \
         makes every instruction unsynthesizable"
    );
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a pipelined core; run in release")]
#[test]
fn crypto_core_succeeds_with_the_assumption() {
    // The positive control for the test above.
    let cs = crypto_core::case_study();
    let mut mgr = TermManager::new();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(quick_config())
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    assert!(result.is_ok(), "{:?}", result.err());
}
