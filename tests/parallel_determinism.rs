//! The parallel scheduler's determinism contract, checked end to end:
//! `SynthesisSession` must produce identical per-instruction outcomes,
//! certificates, completed designs, and gate-level netlists at every
//! parallelism level — including under injected cancellation and
//! panic faults, where thread interleavings differ most.

use owl::core::{
    complete_design, control_union, CoreError, Fault, FaultPlan, InstrStatus, SynthesisConfig,
    SynthesisOutput, SynthesisSession,
};
use owl::netlist::lower;
use owl::smt::TermManager;
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Asserts that two synthesis outputs are observably identical:
/// solutions (instruction names and hole values), outcome statuses,
/// work statistics, and certificates.
fn assert_outputs_identical(label: &str, a: &SynthesisOutput, b: &SynthesisOutput) {
    assert_eq!(a.solutions.len(), b.solutions.len(), "{label}: solution count");
    for (x, y) in a.solutions.iter().zip(&b.solutions) {
        assert_eq!(x.instr, y.instr, "{label}: solution order");
        assert_eq!(x.holes, y.holes, "{label}: hole values for {}", x.instr);
    }
    assert_eq!(
        format!("{:?}", a.outcomes),
        format!("{:?}", b.outcomes),
        "{label}: per-instruction outcomes"
    );
    assert_eq!(a.stats.solver_calls, b.stats.solver_calls, "{label}: solver calls");
    assert_eq!(a.stats.cex_rounds, b.stats.cex_rounds, "{label}: CEGIS rounds");
    assert_eq!(a.stats.reused, b.stats.reused, "{label}: reuse count");
    assert_eq!(a.stats.escalations, b.stats.escalations, "{label}: escalations");
    assert_eq!(a.stats.cnf_vars, b.stats.cnf_vars, "{label}: CNF vars");
    assert_eq!(a.stats.cnf_clauses, b.stats.cnf_clauses, "{label}: CNF clauses");
    match (&a.certificate, &b.certificate) {
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.to_string(), cb.to_string(), "{label}: certificates")
        }
        (None, None) => {}
        _ => panic!("{label}: one run certified, the other did not"),
    }
    assert_eq!(
        format!("{:?}", a.interrupted),
        format!("{:?}", b.interrupted),
        "{label}: interrupt"
    );
}

/// The headline property on a real core: RV32I synthesized at 1, 2 and
/// 8 workers yields byte-identical outcomes, certificates, completed
/// designs, and netlists.
#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn rv32i_is_identical_across_thread_counts() {
    let cs = owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::BASE);
    let mut reference: Option<(SynthesisOutput, String, String)> = None;
    for threads in THREAD_COUNTS {
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .parallelism(threads)
            .run_with(&mut mgr)
            .expect("valid inputs");
        assert!(out.is_complete(), "threads={threads}: {:?}", out.first_error());
        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions)
            .expect("union succeeds");
        let completed = complete_design(&cs.sketch, &union);
        let design_text = completed.to_string();
        let netlist = format!("{:?}", lower(&completed).expect("lowers").stats());
        match &reference {
            None => reference = Some((out, design_text, netlist)),
            Some((ref_out, ref_design, ref_netlist)) => {
                let label = format!("threads={threads}");
                assert_outputs_identical(&label, ref_out, &out);
                assert_eq!(ref_design, &design_text, "{label}: completed design");
                assert_eq!(ref_netlist, &netlist, "{label}: netlist stats");
            }
        }
    }
}

/// A cancellation raised before the run starts is observed at every
/// task's entry checkpoint: all instructions are skipped identically at
/// every thread count.
#[test]
fn pre_raised_cancellation_is_deterministic() {
    let cs = owl::cores::accumulator::case_study();
    let mut reference: Option<SynthesisOutput> = None;
    for threads in THREAD_COUNTS {
        let config = SynthesisConfig::default();
        config.cancel.cancel();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .config(config)
            .parallelism(threads)
            .run()
            .expect("valid inputs");
        assert!(matches!(out.interrupted, Some(CoreError::Cancelled)));
        assert!(out.solutions.is_empty());
        assert!(out.outcomes.iter().all(|o| matches!(o.status, InstrStatus::Skipped)));
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_outputs_identical(&format!("threads={threads}"), r, &out),
        }
    }
}

/// A cancellation that lands mid-run stops every worker promptly.
/// *Which* instructions finished is timing-dependent (the documented
/// exception), but each instruction that did solve must carry exactly
/// the controls the clean run finds, and every status must be one of
/// Solved / Failed(Cancelled) / Skipped.
#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn mid_run_cancellation_is_prompt_and_solved_subset_is_consistent() {
    let cs = owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::BASE);
    let mut clean_mgr = TermManager::new();
    let clean = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut clean_mgr)
        .expect("valid inputs");
    assert!(clean.is_complete());

    for threads in [2usize, 8] {
        let config = SynthesisConfig::default();
        let cancel = config.cancel.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            cancel.cancel();
        });
        let start = Instant::now();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .config(config)
            .parallelism(threads)
            .run()
            .expect("valid inputs");
        canceller.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "threads={threads}: cancellation must stop in-flight workers promptly"
        );
        for o in &out.outcomes {
            assert!(
                matches!(
                    o.status,
                    InstrStatus::Solved
                        | InstrStatus::Failed(CoreError::Cancelled)
                        | InstrStatus::Skipped
                ),
                "threads={threads}: unexpected status {:?} for {}",
                o.status,
                o.instr
            );
        }
        // Solved instructions agree with the clean run, whatever subset
        // the cancellation left standing.
        for sol in &out.solutions {
            let reference = clean
                .solutions
                .iter()
                .find(|s| s.instr == sol.instr)
                .expect("clean run solved every instruction");
            assert_eq!(sol.holes, reference.holes, "threads={threads}: {}", sol.instr);
        }
        if !out.is_complete() {
            assert!(
                matches!(out.interrupted, Some(CoreError::Cancelled)),
                "threads={threads}: a cancelled run reports the typed interrupt"
            );
        }
    }
}

/// A panic injected into *every* solver call is isolated at each
/// instruction boundary regardless of which worker hits it first, and
/// the wreckage is identical at every thread count (an all-indices plan
/// is interleaving-invariant by construction).
#[test]
fn panic_faults_are_isolated_identically_across_thread_counts() {
    let cs = owl::cores::accumulator::case_study();
    let n_instrs = cs.spec.instrs().len();
    let mut reference: Option<SynthesisOutput> = None;
    for threads in THREAD_COUNTS {
        let plan =
            Arc::new((0..256).fold(FaultPlan::new(), |p, i| p.at(i, Fault::Panic)));
        let config = SynthesisConfig::builder().fault_plan(plan).certify(false).build();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .config(config)
            .parallelism(threads)
            .run()
            .expect("valid inputs");
        assert!(out.interrupted.is_none(), "threads={threads}: a panic is not a global stop");
        assert_eq!(out.outcomes.len(), n_instrs);
        // Instructions whose queries constant-fold never reach the
        // solver (no fault fires) and legitimately solve; every query
        // that does reach it panics and must be isolated in place.
        let mut panicked = 0;
        for o in &out.outcomes {
            match &o.status {
                InstrStatus::Solved => {}
                InstrStatus::Failed(CoreError::Internal { .. }) => panicked += 1,
                other => panic!(
                    "threads={threads}: {} must solve or fail with an isolated \
                     internal error, got {other:?}",
                    o.instr
                ),
            }
        }
        assert!(panicked > 0, "threads={threads}: the fault plan never fired");
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_outputs_identical(&format!("threads={threads}"), r, &out),
        }
    }
}
