//! Fuzz harness for the Oyster text format: the parser must be total
//! (return `Ok` or `Err` on any input, never panic) and the printer must
//! be its right inverse (`parse ∘ print = id`) on every valid design.
//!
//! The seed corpus is the real sketches from `owl-cores` — every design
//! the paper's case studies feed the synthesizer — plus token-soup and
//! mutation strategies aimed at the lexer/parser edge cases (bitvector
//! literals, rom tables, nesting depth, oversized widths).

use owl::cores;
use owl::oyster::Design;
use proptest::prelude::*;

/// All corpus designs, by name (used in failure messages).
fn corpus() -> Vec<(&'static str, Design)> {
    use owl::cores::rv32i::Extensions;
    vec![
        ("accumulator", cores::accumulator::sketch()),
        ("alu_machine", cores::alu_machine::sketch()),
        ("crypto_core", cores::crypto_core::sketch()),
        ("crypto_core_ref", cores::crypto_core::reference()),
        ("aes", cores::aes::sketch()),
        ("rv32i_single", cores::rv32i::datapath::single_cycle_sketch(Extensions::BASE)),
        ("rv32i_zbkc_single", cores::rv32i::datapath::single_cycle_sketch(Extensions::ZBKC)),
        ("rv32i_two_stage", cores::rv32i::datapath::two_stage_sketch(Extensions::BASE)),
        ("rv32i_ref", cores::rv32i::datapath::reference_single_cycle(Extensions::ZBKB)),
    ]
}

#[test]
fn print_parse_round_trips_on_the_cores_corpus() {
    for (name, d) in corpus() {
        let text = d.to_string();
        let reparsed: Design = text.parse().unwrap_or_else(|e| {
            panic!("printed {name} failed to reparse: {e}\n{text}");
        });
        assert_eq!(d, reparsed, "round trip changed {name}");
        // And printing is a fixed point after one round.
        assert_eq!(text, reparsed.to_string(), "printing {name} is not stable");
    }
}

/// Fragments biased toward the grammar so random soup reaches deep
/// parser states instead of dying at the first token.
const FRAGMENTS: &[&str] = &[
    "design", "end", "input", "output", "register", "hole", "memory", "rom", "write", "when",
    "if", "then", "else", "zext", "sext", "extract", "concat", ":=", "(", ")", "[", "]", ",",
    "~", "&", "|", "^", "+", "-", "*", "<<", ">>", ">>>", "==", "!=", "<u", "<=u", "<s", "<=s",
    "a", "b", "x_1", "ram", "t.q", "0", "1", "8", "31", "65537", "4294967296",
    "18446744073709551615", "8'xff", "1'b1", "12'd99", "0'x0", "'", "'x", "; comment", "# c",
    "\n", " ", "\t",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality on arbitrary bytes: whatever the input, the parser
    /// returns instead of panicking.
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = text.parse::<Design>();
    }

    /// Totality on grammar-shaped token soup.
    #[test]
    fn parse_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..96),
    ) {
        let text: String = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        let _ = text.parse::<Design>();
    }

    /// Totality on mutated corpus text: splice random fragments into a
    /// real design at a random offset.
    #[test]
    fn parse_never_panics_on_mutated_corpus(
        which in 0usize..9,
        cut_frac in 0.0f64..1.0,
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..12),
    ) {
        let base = corpus()[which].1.to_string();
        // The printer emits ASCII, so any byte offset is a char boundary.
        let cut = ((base.len() as f64) * cut_frac) as usize;
        let mut text = base[..cut].to_string();
        for &i in &picks {
            text.push_str(FRAGMENTS[i]);
            text.push(' ');
        }
        text.push_str(&base[cut..]);
        let _ = text.parse::<Design>();
    }

    /// Anything the parser accepts must survive print → parse unchanged:
    /// the printed form of an accepted design reparses to the same value.
    #[test]
    fn accepted_designs_round_trip(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..96),
    ) {
        let text: String = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        if let Ok(d) = text.parse::<Design>() {
            let printed = d.to_string();
            let reparsed: Design = printed
                .parse()
                .unwrap_or_else(|e| panic!("accepted design failed to reparse: {e}\n{printed}"));
            prop_assert_eq!(d, reparsed);
        }
    }
}
