//! The durability contract, end to end: a journaled synthesis run can
//! be killed at any point and resumed — at any parallelism level — into
//! a `SynthesisOutput` byte-identical to an uninterrupted run's, and a
//! corrupted or truncated journal degrades to re-solving the lost work,
//! never a panic and never a wrong solution.

use owl::core::{
    CoreError, Fault, FaultPlan, InstrStatus, IoFault, SynthesisConfig, SynthesisMode,
    SynthesisOutput, SynthesisSession,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A per-test journal path in the system temp directory, fresh on entry.
fn journal_path(test: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("owl_durability_{}_{test}.journal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Asserts the byte-identical-resume contract: solutions, outcomes,
/// work statistics, and certificates all match. (`stats.replayed` and
/// `stats.elapsed` are provenance, deliberately outside the contract.)
fn assert_outputs_identical(label: &str, a: &SynthesisOutput, b: &SynthesisOutput) {
    assert_eq!(a.solutions.len(), b.solutions.len(), "{label}: solution count");
    for (x, y) in a.solutions.iter().zip(&b.solutions) {
        assert_eq!(x.instr, y.instr, "{label}: solution order");
        assert_eq!(x.holes, y.holes, "{label}: hole values for {}", x.instr);
    }
    assert_eq!(
        format!("{:?}", a.outcomes),
        format!("{:?}", b.outcomes),
        "{label}: per-instruction outcomes"
    );
    assert_eq!(a.stats.solver_calls, b.stats.solver_calls, "{label}: solver calls");
    assert_eq!(a.stats.cex_rounds, b.stats.cex_rounds, "{label}: CEGIS rounds");
    assert_eq!(a.stats.reused, b.stats.reused, "{label}: reuse count");
    assert_eq!(a.stats.escalations, b.stats.escalations, "{label}: escalations");
    match (&a.certificate, &b.certificate) {
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.to_string(), cb.to_string(), "{label}: certificates")
        }
        (None, None) => {}
        _ => panic!("{label}: one run certified, the other did not"),
    }
    assert_eq!(
        format!("{:?}", a.interrupted),
        format!("{:?}", b.interrupted),
        "{label}: interrupt"
    );
}

fn clean_reference() -> SynthesisOutput {
    let cs = owl::cores::accumulator::case_study();
    SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run().expect("valid inputs")
}

/// A complete journal resumes without re-solving anything: every
/// instruction is replayed, at every parallelism level, and the output
/// is byte-identical to both the journaled run and a journal-free run.
#[test]
fn complete_journal_resumes_byte_identically() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let path = journal_path("complete");
    let journaled = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .journal_to(&path)
        .run()
        .expect("valid inputs");
    assert_outputs_identical("journaled", &reference, &journaled);
    let text = std::fs::read_to_string(&path).expect("journal written");
    assert!(text.starts_with("owl-journal v1\n"), "journal header missing:\n{text}");
    assert!(text.contains(" task "), "no task records journaled:\n{text}");

    for threads in THREAD_COUNTS {
        let resumed = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .resume(&path)
            .parallelism(threads)
            .run()
            .expect("resume succeeds");
        assert_eq!(
            resumed.stats.replayed,
            resumed.outcomes.len(),
            "threads={threads}: a complete journal replays every instruction"
        );
        assert_outputs_identical(&format!("resume threads={threads}"), &reference, &resumed);
    }
    let _ = std::fs::remove_file(&path);
}

/// The crash-anywhere property: the journal truncated at a spread of
/// byte offsets (simulating a kill mid-write at any point) always
/// resumes to the identical output — lost records are re-solved, intact
/// ones are replayed, and a beheaded journal is simply a fresh run.
#[test]
fn truncation_at_any_offset_resumes_identically() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let path = journal_path("truncate_src");
    SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .journal_to(&path)
        .run()
        .expect("valid inputs");
    let full = std::fs::read(&path).expect("journal written");
    let _ = std::fs::remove_file(&path);
    assert!(full.len() > 64, "journal suspiciously small: {} bytes", full.len());

    let cut_path = journal_path("truncate_cut");
    let stride = (full.len() / 24).max(1);
    let cuts = (0..=full.len()).step_by(stride).chain([full.len()]);
    for cut in cuts {
        std::fs::write(&cut_path, &full[..cut]).expect("write truncated journal");
        let resumed = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .resume(&cut_path)
            .parallelism(2)
            .run()
            .unwrap_or_else(|e| panic!("cut at {cut}: resume must not fail: {e}"));
        assert_outputs_identical(&format!("cut at {cut}"), &reference, &resumed);
    }
    let _ = std::fs::remove_file(&cut_path);
}

/// Bit-flips in the record region are caught by the per-record CRC: the
/// damaged suffix is discarded and re-solved, and the resumed output is
/// identical. (Header damage is exercised separately below — a flipped
/// fingerprint is indistinguishable from a different-inputs journal and
/// is *rejected*, which is also not a panic and not a wrong solution.)
#[test]
fn record_bit_flips_resume_identically() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let path = journal_path("flip_src");
    SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .journal_to(&path)
        .run()
        .expect("valid inputs");
    let full = std::fs::read(&path).expect("journal written");
    let _ = std::fs::remove_file(&path);
    let header_end = {
        let text = String::from_utf8(full.clone()).expect("journal is UTF-8");
        let mut it = text.match_indices('\n');
        it.nth(1).map(|(i, _)| i + 1).expect("journal has a two-line header")
    };

    let flip_path = journal_path("flip_cur");
    let bits = (full.len() - header_end) * 8;
    let stride = (bits / 24).max(1);
    for bit in (0..bits).step_by(stride) {
        let mut damaged = full.clone();
        damaged[header_end + bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&flip_path, &damaged).expect("write damaged journal");
        let resumed = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .resume(&flip_path)
            .run()
            .unwrap_or_else(|e| panic!("bit {bit}: resume must not fail: {e}"));
        assert_outputs_identical(&format!("bit {bit}"), &reference, &resumed);
    }
    let _ = std::fs::remove_file(&flip_path);
}

/// A journal written for different inputs (here: a different
/// differential-testing seed, which changes the certificate) is
/// rejected with a typed validation error rather than silently
/// replaying snapshots that no longer describe this problem.
#[test]
fn fingerprint_mismatch_is_rejected() {
    let cs = owl::cores::accumulator::case_study();
    let path = journal_path("fingerprint");
    SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .journal_to(&path)
        .run()
        .expect("valid inputs");

    let other = SynthesisConfig::builder().differential_seed(0xD00D).build();
    let err = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(other)
        .resume(&path)
        .run()
        .expect_err("a mismatched fingerprint must be rejected");
    assert!(
        matches!(&err, CoreError::Invalid(m) if m.contains("fingerprint")),
        "unexpected error: {err:?}"
    );

    // Header damage: garbling the magic makes the journal read as empty
    // (fresh run); garbling the fingerprint digits makes it a
    // different-inputs journal (rejected). Neither panics.
    let full = std::fs::read(&path).expect("journal written");
    let mut beheaded = full.clone();
    beheaded[0] ^= 0xFF;
    std::fs::write(&path, &beheaded).expect("write");
    let fresh = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(&path)
        .run()
        .expect("a beheaded journal is a fresh run");
    assert_eq!(fresh.stats.replayed, 0);
    let _ = std::fs::remove_file(&path);
}

/// Resuming from a journal that never existed is exactly a fresh
/// journaled run.
#[test]
fn resume_without_a_journal_is_a_fresh_run() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let path = journal_path("missing");
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(&path)
        .run()
        .expect("valid inputs");
    assert_eq!(out.stats.replayed, 0);
    assert_outputs_identical("fresh resume", &reference, &out);
    assert!(path.exists(), "the fresh run must still write the journal");
    let _ = std::fs::remove_file(&path);
}

/// Journaling requires the per-instruction scheduler; the monolithic
/// solver has no instruction-grained progress to checkpoint.
#[test]
fn journaling_rejects_monolithic_mode() {
    let cs = owl::cores::accumulator::case_study();
    let path = journal_path("monolithic");
    let config = SynthesisConfig::builder().mode(SynthesisMode::Monolithic).build();
    let err = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .journal_to(&path)
        .run()
        .expect_err("journaling in monolithic mode must be rejected");
    assert!(matches!(err, CoreError::Invalid(_)), "unexpected error: {err:?}");
}

/// Injected journal I/O faults (failed and torn writes) degrade
/// *durability*, never the run: synthesis completes identically, and a
/// resume from whatever intact prefix survived is still identical.
#[test]
fn write_faults_degrade_durability_not_results() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    // Op 0/1 are the header lines; fault the first record append with a
    // torn write and every later append with a hard error.
    let mut plan = FaultPlan::new().io_at(2, IoFault::ShortWrite(7));
    for op in 3..64 {
        plan = plan.io_at(op, IoFault::WriteError);
    }
    let path = journal_path("io_faults");
    let config = SynthesisConfig::builder().fault_plan(Arc::new(plan)).build();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .journal_to(&path)
        .run()
        .expect("I/O faults must not fail the run");
    assert_outputs_identical("under I/O faults", &reference, &out);

    // The journal holds a torn first record at best; resume discards it
    // and re-solves, still identical. (The resumed session gets a
    // fault-free plan — the I/O channel is independent of solver calls,
    // so this does not shift any solver-fault indices.)
    let resumed = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(&path)
        .run()
        .expect("resume after torn writes succeeds");
    assert_outputs_identical("resume after torn writes", &reference, &resumed);
    let _ = std::fs::remove_file(&path);
}

/// The stall watchdog: with every solver call stalled far past the
/// timeout, the supervisor marks each in-flight instruction `Stalled`
/// (a typed, local verdict — the run itself completes), journals the
/// event, and the run ends promptly instead of hanging.
#[test]
fn watchdog_declares_stalls_and_journals_them() {
    let cs = owl::cores::accumulator::case_study();
    let plan = Arc::new((0..64).fold(FaultPlan::new(), |p, i| {
        p.at(i, Fault::StallMillis(2_000))
    }));
    let config = SynthesisConfig::builder()
        .fault_plan(plan)
        .stall_timeout(Duration::from_millis(50))
        .certify(false)
        .build();
    let path = journal_path("stall");
    let start = std::time::Instant::now();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .journal_to(&path)
        .parallelism(2)
        .run()
        .expect("valid inputs");
    assert!(out.interrupted.is_none(), "a stall is not a global stop");
    let mut stalled = 0;
    for o in &out.outcomes {
        match &o.status {
            // Queries that constant-fold never reach the solver and
            // legitimately solve; everything that does reach it stalls.
            InstrStatus::Solved => {}
            InstrStatus::Failed(CoreError::Stalled { instr }) => {
                assert_eq!(instr, &o.instr);
                stalled += 1;
            }
            other => panic!("{}: expected Solved or Stalled, got {other:?}", o.instr),
        }
    }
    assert!(stalled > 0, "the watchdog never fired");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "stalled tasks must be cut loose promptly"
    );
    let text = std::fs::read_to_string(&path).expect("journal written");
    assert!(text.contains(" stall "), "stall events must be journaled:\n{text}");
    let _ = std::fs::remove_file(&path);
}
