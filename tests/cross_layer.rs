//! Cross-layer consistency fuzzing: the same random Oyster designs are
//! run through the concrete interpreter, the symbolic evaluator (with
//! the trace evaluated under a concrete environment), and the gate-level
//! netlist (raw and optimized) — all four must agree cycle for cycle.

use owl::netlist::{lower, optimize, GateSim};
use owl::oyster::{Design, Interpreter, SymbolicEvaluator};
use owl::smt::{Env, TermManager};
use owl::BitVec;
use proptest::prelude::*;
use std::collections::HashMap;

/// A compact generator of valid random designs: a few inputs, registers,
/// one memory, and a stack-machine expression builder per statement.
#[derive(Debug, Clone)]
struct RandomDesign {
    input_widths: Vec<u32>,
    reg_widths: Vec<u32>,
    stmt_ops: Vec<Vec<u8>>,
}

fn arb_design() -> impl Strategy<Value = RandomDesign> {
    (
        proptest::collection::vec(1u32..10, 1..4),
        proptest::collection::vec(1u32..10, 1..3),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 1..5),
    )
        .prop_map(|(input_widths, reg_widths, stmt_ops)| RandomDesign {
            input_widths,
            reg_widths,
            stmt_ops,
        })
}

fn build(rd: &RandomDesign) -> Design {
    use owl::oyster::Expr;
    let mut d = Design::new("fuzz");
    for (i, w) in rd.input_widths.iter().enumerate() {
        d.input(format!("in{i}"), *w);
    }
    for (i, w) in rd.reg_widths.iter().enumerate() {
        d.register(format!("r{i}"), *w);
    }
    // Each statement drives one register from a random expression over
    // width-matched sources (at most one driver per register).
    for (si, ops) in rd.stmt_ops.iter().enumerate().take(rd.reg_widths.len()) {
        let reg = si;
        let w = rd.reg_widths[reg];
        // Sources resized to the register width.
        let sources: Vec<Expr> = rd
            .input_widths
            .iter()
            .enumerate()
            .map(|(i, iw)| {
                let v = Expr::var(format!("in{i}"));
                if *iw >= w {
                    v.extract(w - 1, 0)
                } else {
                    v.zext(w)
                }
            })
            .chain([Expr::var(format!("r{reg}"))])
            .collect();
        let mut e = sources[ops[0] as usize % sources.len()].clone();
        for &op in &ops[1..] {
            let other = sources[op as usize % sources.len()].clone();
            e = match op % 7 {
                0 => e.add(other),
                1 => e.xor(other),
                2 => e.and(other),
                3 => e.or(other),
                4 => Expr::ite(e.clone().neq(other.clone()), other, e),
                5 => e.not(),
                _ => e.sub(other),
            };
        }
        d.assign(format!("r{reg}"), e);
    }
    d.check().expect("generated design is valid");
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn interpreter_symbolic_and_gates_agree(
        rd in arb_design(),
        stimulus in proptest::collection::vec(any::<u64>(), 3),
    ) {
        let design = build(&rd);
        let cycles = stimulus.len() as u32;

        // Concrete interpreter.
        let mut interp = Interpreter::new(&design).expect("interpreter");
        // Gate level (raw + optimized).
        let netlist = lower(&design).expect("lowers");
        let optimized = optimize(&netlist);
        let mut gates_raw = GateSim::new(&netlist);
        let mut gates_opt = GateSim::new(&optimized);
        // Symbolic: one evaluation, then concrete replay via Env. Inputs
        // are held constant across the window in the symbolic semantics,
        // so replay with the first stimulus only.
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &design, cycles).expect("symbolic");
        let mut env = Env::new();
        for (name, term) in &trace.inputs {
            let idx: usize = name[2..].parse().expect("input name");
            let w = rd.input_widths[idx];
            env.set_var(mgr.as_var(*term).unwrap(), BitVec::from_u64(w, stimulus[0]));
        }
        for (name, term) in &trace.initial_regs {
            let _ = name;
            env.set_var(mgr.as_var(*term).unwrap(), BitVec::zero(mgr.width(*term)));
        }

        for (cycle, _) in stimulus.iter().enumerate() {
            // Constant-input stimulus (symbolic semantics hold inputs
            // fixed over the window).
            let inputs: HashMap<String, BitVec> = rd
                .input_widths
                .iter()
                .enumerate()
                .map(|(i, w)| (format!("in{i}"), BitVec::from_u64(*w, stimulus[0])))
                .collect();
            interp.step(&inputs).expect("interp step");
            gates_raw.step(&inputs);
            gates_opt.step(&inputs);

            for (ri, _) in rd.reg_widths.iter().enumerate() {
                let name = format!("r{ri}");
                let expect = interp.reg(&name).expect("reg").clone();
                prop_assert_eq!(&gates_raw.reg(&name), &expect, "raw gates, cycle {}", cycle);
                prop_assert_eq!(&gates_opt.reg(&name), &expect, "opt gates, cycle {}", cycle);
                let sym_term = trace.snapshots[cycle + 1].regs[&name];
                prop_assert_eq!(
                    env.eval(&mgr, sym_term),
                    expect,
                    "symbolic trace, cycle {}",
                    cycle
                );
            }
        }
    }
}
