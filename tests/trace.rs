//! The observability contract, end to end: tracing is provably inert
//! (a traced run's output is byte-identical to an untraced run's at any
//! parallelism level), the span tree is well-formed, counters stay
//! monotone even under injected faults, and the Chrome trace-event
//! export parses with spans from every layer of the stack.

use owl::core::{Fault, FaultPlan, SynthesisConfig, SynthesisOutput, SynthesisSession, Tracer};
use owl::service::{JobSpec, Report, ServiceConfig, Shutdown, SynthesisService};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Asserts the inertness contract: solutions, outcomes, work counters,
/// and certificates all match (wall-clock provenance excluded).
fn assert_outputs_identical(label: &str, a: &SynthesisOutput, b: &SynthesisOutput) {
    assert_eq!(a.solutions.len(), b.solutions.len(), "{label}: solution count");
    for (x, y) in a.solutions.iter().zip(&b.solutions) {
        assert_eq!(x.instr, y.instr, "{label}: solution order");
        assert_eq!(x.holes, y.holes, "{label}: hole values for {}", x.instr);
    }
    assert_eq!(
        format!("{:?}", a.outcomes),
        format!("{:?}", b.outcomes),
        "{label}: per-instruction outcomes"
    );
    assert_eq!(a.stats.solver_calls, b.stats.solver_calls, "{label}: solver calls");
    assert_eq!(a.stats.cex_rounds, b.stats.cex_rounds, "{label}: CEGIS rounds");
    assert_eq!(a.stats.cnf_vars, b.stats.cnf_vars, "{label}: CNF vars");
    assert_eq!(a.stats.cnf_clauses, b.stats.cnf_clauses, "{label}: CNF clauses");
    match (&a.certificate, &b.certificate) {
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.to_string(), cb.to_string(), "{label}: certificates")
        }
        (None, None) => {}
        _ => panic!("{label}: one run certified, the other did not"),
    }
}

#[test]
fn traced_run_is_byte_identical_to_untraced_at_any_parallelism() {
    let cs = owl::cores::accumulator::case_study();
    let untraced =
        SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run().expect("untraced run");
    for threads in THREAD_COUNTS {
        let tracer = Tracer::enabled();
        let traced = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .parallelism(threads)
            .tracer(tracer.clone())
            .run()
            .expect("traced run");
        assert_outputs_identical(&format!("threads={threads}"), &untraced, &traced);
        let snapshot = tracer.snapshot();
        assert!(snapshot.spans().count() > 0, "threads={threads}: trace captured no spans");
        snapshot.check_well_formed().expect("well-formed span tree");
    }
}

#[test]
fn traced_trace_is_deterministic_modulo_wall_clock() {
    // Two traced single-threaded runs of the same problem produce the
    // same trace once the clock fields are zeroed: same spans in the
    // same order, same parents, same counter deltas.
    let cs = owl::cores::accumulator::case_study();
    let run = || {
        let tracer = Tracer::enabled();
        SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .tracer(tracer.clone())
            .run()
            .expect("traced run");
        tracer.snapshot().zeroed_clock()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.dropped, b.dropped, "ring drops differ");
    assert_eq!(a.totals, b.totals, "counter totals differ");
    let spans_a: Vec<_> = a.spans().map(|s| (s.id, s.parent, s.layer, s.name.clone())).collect();
    let spans_b: Vec<_> = b.spans().map(|s| (s.id, s.parent, s.layer, s.name.clone())).collect();
    assert_eq!(spans_a, spans_b, "span sequences differ");
}

#[test]
fn counter_totals_are_monotone_under_faults() {
    // Injected solver faults perturb the search; the trace must stay
    // well-formed and every counter's running total monotone.
    let cs = owl::cores::accumulator::case_study();
    let plan = (0..16).fold(FaultPlan::new(), |p, i| p.at(i * 3, Fault::ForceUnknown));
    let config = SynthesisConfig::builder().fault_plan(Arc::new(plan)).certify(false).build();
    let tracer = Tracer::enabled();
    // Faulted runs may fail; the trace contract holds either way.
    let _ = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .tracer(tracer.clone())
        .run();
    let snapshot = tracer.snapshot();
    snapshot.check_well_formed().expect("well-formed under faults");
    let mut last: std::collections::HashMap<(&str, String), u64> = std::collections::HashMap::new();
    for c in snapshot.counters() {
        let key = (c.layer, c.name.clone());
        let prev = last.insert(key, c.total).unwrap_or(0);
        assert!(
            c.total >= prev,
            "counter {}/{} went backwards: {} -> {}",
            c.layer,
            c.name,
            prev,
            c.total
        );
    }
    // The final totals agree with the last ring sample per key.
    for (layer, name, total) in &snapshot.totals {
        if let Some(seen) = last.get(&(*layer, name.clone())) {
            assert_eq!(seen, total, "total for {layer}/{name} disagrees with ring");
        }
    }
}

#[test]
fn disabled_tracer_records_nothing() {
    let cs = owl::cores::accumulator::case_study();
    let tracer = Tracer::disabled();
    let _ = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .tracer(tracer.clone())
        .run()
        .expect("run");
    assert!(!tracer.is_enabled());
    let snapshot = tracer.snapshot();
    assert_eq!(snapshot.spans().count(), 0);
    assert_eq!(snapshot.totals.len(), 0);
}

/// A minimal JSON syntax walker: validates the exported trace without a
/// JSON dependency. Returns the number of objects seen.
fn check_json_syntax(text: &str) -> usize {
    let mut depth = 0i64;
    let mut objects = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                depth += 1;
                objects += 1;
            }
            '}' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced braces");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces at end");
    assert!(!in_str, "unterminated string");
    objects
}

#[test]
fn chrome_trace_export_has_spans_from_every_layer() {
    // A traced service batch touches every layer of the stack; the
    // Chrome export must carry the schema fields and all the layers as
    // categories.
    let cs = owl::cores::accumulator::case_study();
    let tracer = Tracer::with_capacity(1 << 18);
    let cache_dir =
        std::env::temp_dir().join(format!("owl_trace_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = ServiceConfig::default()
        .workers(2)
        .queue_capacity(8)
        .cache_dir(&cache_dir)
        .tracer(tracer.clone());
    let service = SynthesisService::start(config);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let spec = JobSpec::new(
                format!("trace-{i}"),
                cs.sketch.clone(),
                cs.spec.clone(),
                cs.alpha.clone(),
            )
            .parallelism(2);
            service.submit(spec).expect("admitted")
        })
        .collect();
    for h in handles {
        let _ = h.wait().expect("job completes");
    }
    let metrics = service.shutdown(Shutdown::Drain);
    let _ = std::fs::remove_dir_all(&cache_dir);
    assert_eq!(metrics.completed, 3);

    let snapshot = tracer.snapshot();
    snapshot.check_well_formed().expect("well-formed service trace");
    let layers: std::collections::BTreeSet<&str> = snapshot.spans().map(|s| s.layer).collect();
    for expected in ["service", "core", "smt", "sat", "cache"] {
        assert!(layers.contains(expected), "no spans from layer {expected} (saw {layers:?})");
    }

    let mut bytes = Vec::new();
    snapshot.write_chrome_trace(&mut bytes).expect("export");
    let text = String::from_utf8(bytes).expect("utf-8");
    assert!(text.contains("\"traceEvents\""), "missing traceEvents array");
    assert!(text.contains("\"displayTimeUnit\":\"ms\""), "missing displayTimeUnit");
    assert!(text.contains("\"ph\":\"X\""), "no complete-span events");
    assert!(text.contains("\"ph\":\"C\""), "no counter events");
    let objects = check_json_syntax(&text);
    assert!(objects > snapshot.spans().count(), "fewer JSON objects than spans");

    // The service metrics round-trip through the unified Report path.
    let rendered = owl::trace::to_json(&metrics.report());
    assert!(rendered.contains("\"completed\": 3"), "metrics report missing completed count");
}
