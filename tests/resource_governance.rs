//! Integration tests for the resource-governance layer: wall-clock
//! deadlines observed inside solver calls, cooperative cancellation,
//! graceful degradation to partial results, and fault-injection
//! recovery — all through the public `owl` facade.

use owl::core::{
    CoreError, Fault, FaultPlan, InstrStatus, SynthesisConfig, SynthesisMode, SynthesisSession,
};
use owl::smt::TermManager;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The acceptance scenario: a tiny time budget on the RV32I core must
/// terminate within roughly 2x the budget (the deadline is polled inside
/// the CDCL loop, so no single query can overshoot), returning whatever
/// prefix of instructions was solved plus a typed `Timeout`.
#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn rv32i_tiny_budget_terminates_promptly_with_partial_output() {
    let cs = owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::BASE);
    // The full core takes on the order of a second; 100ms lands mid-run.
    let budget = Duration::from_millis(100);
    let config = SynthesisConfig::builder().time_budget(budget).build();
    let mut mgr = TermManager::new();
    let start = Instant::now();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed < budget * 2 + Duration::from_millis(500),
        "run overshot its deadline: {elapsed:?} against a {budget:?} budget"
    );
    assert!(matches!(out.interrupted, Some(CoreError::Timeout { .. })));
    assert_eq!(out.outcomes.len(), cs.spec.instrs().len());
    // The solved prefix is exactly the instructions marked Solved, in
    // specification order, and nothing after the interrupt is Solved.
    let solved = out
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, InstrStatus::Solved))
        .count();
    assert_eq!(out.solutions.len(), solved);
    assert!(solved < cs.spec.instrs().len(), "a 100ms budget must not finish the full core");
    let err = out.require_complete().unwrap_err();
    assert!(err.to_string().contains("timed out"));
}

/// A mid-run timeout keeps the already-solved prefix and reports the
/// in-flight instruction as `Failed(Timeout)`. The fault plan stalls the
/// first solver call of instruction 2 past the deadline; the stall index
/// is calibrated with a probe run (the solver is deterministic).
#[test]
fn mid_run_timeout_keeps_solved_prefix() {
    let cs = owl::cores::accumulator::case_study();
    let mut probe_mgr = TermManager::new();
    let probe = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut probe_mgr)
        .unwrap();
    assert!(probe.is_complete());
    let first_instr_calls = probe.outcomes[0].solver_calls as u64;

    let plan = Arc::new(FaultPlan::new().at(first_instr_calls, Fault::StallMillis(500)));
    let config = SynthesisConfig::builder()
        .time_budget(Duration::from_millis(100))
        .fault_plan(plan)
        .build();
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .unwrap();
    assert!(matches!(out.interrupted, Some(CoreError::Timeout { .. })));
    assert_eq!(out.solutions.len(), 1, "the first instruction's solution is kept");
    assert_eq!(out.solutions[0].instr, probe.solutions[0].instr);
    assert!(matches!(out.outcomes[0].status, InstrStatus::Solved));
    assert!(matches!(
        out.outcomes[1].status,
        InstrStatus::Failed(CoreError::Timeout { .. })
    ));
    for later in &out.outcomes[2..] {
        assert!(matches!(later.status, InstrStatus::Skipped));
    }
}

/// Raising the shared cancel flag from another thread stops a long
/// monolithic query cooperatively (the flag is polled inside the CDCL
/// loop and at phase boundaries).
#[test]
fn cancellation_stops_a_long_monolithic_query() {
    let cs = owl::cores::accumulator::case_study();
    // Stall the first solver call so the query is reliably in flight
    // when the cancellation lands.
    let plan = Arc::new(FaultPlan::new().at(0, Fault::StallMillis(500)));
    let config = SynthesisConfig::builder()
        .mode(SynthesisMode::Monolithic)
        .fault_plan(plan)
        .build();
    let cancel = config.cancel.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        cancel.cancel();
    });
    let mut mgr = TermManager::new();
    let start = Instant::now();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .unwrap();
    canceller.join().unwrap();
    assert!(start.elapsed() < Duration::from_secs(10));
    assert!(matches!(out.interrupted, Some(CoreError::Cancelled)));
    assert!(out.solutions.is_empty());
}

/// A fault-injected `Unknown` on the first solver call is recovered by
/// the escalation ladder: the retry re-issues the query (at a later
/// fault-plan index) and the run completes.
#[test]
fn fault_injected_unknown_is_recovered_by_escalation() {
    let cs = owl::cores::accumulator::case_study();
    let plan = Arc::new(FaultPlan::new().at(0, Fault::ForceUnknown));
    let config = SynthesisConfig::builder().fault_plan(plan).build();
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .unwrap();
    assert!(out.is_complete(), "{:?}", out.first_error());
    assert!(out.stats.escalations >= 1);
    // The injected fault hits the first *real* solver call, which (after
    // constant folding) may belong to any instruction — but exactly one
    // of them must have needed the escalation retry.
    assert!(out.outcomes.iter().any(|o| o.escalations >= 1));
    // The recovered run finds the same controls as a clean run.
    let mut clean_mgr = TermManager::new();
    let clean = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut clean_mgr)
        .unwrap();
    for (a, b) in out.solutions.iter().zip(clean.solutions.iter()) {
        assert_eq!(a.instr, b.instr);
        assert_eq!(a.holes, b.holes);
    }
}
