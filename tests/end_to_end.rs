//! End-to-end integration tests: every case study through the full
//! pipeline (symbolic evaluation → CEGIS → control union → completion →
//! independent verification), plus cross-layer consistency checks.
//!
//! Heavier flows (the RISC-V cores, SHA-256) are exercised in
//! `riscv_differential.rs` and `constant_time.rs`.

use owl::core::{
    complete_design, control_union, verify_design, SynthesisConfig, SynthesisMode,
    SynthesisSession,
};
use owl::cores::{accumulator, aes, alu_machine, CaseStudy};
use owl::smt::TermManager;

fn synthesize_and_verify(cs: &CaseStudy, mode: SynthesisMode) -> owl::oyster::Design {
    let mut mgr = TermManager::new();
    let config = SynthesisConfig::builder().mode(mode).build();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", cs.name));
    let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions)
        .unwrap_or_else(|e| panic!("{}: union failed: {e}", cs.name));
    let complete = complete_design(&cs.sketch, &union);
    let mut mgr2 = TermManager::new();
    verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None)
        .unwrap_or_else(|e| panic!("{}: verification failed: {e}", cs.name));
    complete
}

#[test]
fn accumulator_end_to_end_per_instruction() {
    synthesize_and_verify(&accumulator::case_study(), SynthesisMode::PerInstruction);
}

#[test]
fn accumulator_end_to_end_monolithic() {
    synthesize_and_verify(&accumulator::case_study(), SynthesisMode::Monolithic);
}

#[test]
fn alu_machine_end_to_end_per_instruction() {
    synthesize_and_verify(&alu_machine::case_study(), SynthesisMode::PerInstruction);
}

#[test]
fn alu_machine_end_to_end_monolithic() {
    synthesize_and_verify(&alu_machine::case_study(), SynthesisMode::Monolithic);
}

#[test]
fn aes_end_to_end() {
    let complete = synthesize_and_verify(&aes::case_study(), SynthesisMode::PerInstruction);
    // The completed design round-trips through the Oyster text format.
    let printed = complete.to_string();
    let reparsed: owl::oyster::Design = printed.parse().expect("completed design reparses");
    assert_eq!(complete, reparsed);
}

#[test]
fn completed_designs_round_trip_through_text() {
    for cs in [accumulator::case_study(), alu_machine::case_study()] {
        let complete = synthesize_and_verify(&cs, SynthesisMode::PerInstruction);
        let reparsed: owl::oyster::Design =
            complete.to_string().parse().expect("reparse");
        assert_eq!(complete, reparsed, "{}", cs.name);
    }
}

#[test]
fn sketches_print_and_reparse() {
    for cs in [
        accumulator::case_study(),
        alu_machine::case_study(),
        aes::case_study(),
        owl::cores::crypto_core::case_study(),
        owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::ZBKC),
    ] {
        let reparsed: owl::oyster::Design =
            cs.sketch.to_string().parse().expect("sketch reparses");
        assert_eq!(cs.sketch, reparsed, "{}", cs.name);
        assert!(cs.sketch.check().is_ok());
    }
}

#[test]
fn tampered_control_fails_verification() {
    // Flip one solved hole value and confirm independent verification
    // catches it (the verifier is not fooled by the synthesis pipeline).
    let cs = accumulator::case_study();
    let mut mgr = TermManager::new();
    let mut out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .expect("synthesis succeeds");
    let first = &mut out.solutions[0];
    let old = first.holes["next_state"].clone();
    let tampered = old.add(&owl::BitVec::one(old.width()));
    first.holes.insert("next_state".to_string(), tampered);

    let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).expect("union");
    let complete = complete_design(&cs.sketch, &union);
    let mut mgr2 = TermManager::new();
    assert!(
        verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None).is_err(),
        "tampered control must fail verification"
    );
}

#[test]
fn netlist_lowering_matches_interpreter_on_completed_accumulator() {
    use owl::netlist::{lower, optimize, GateSim};
    use owl::BitVec;
    use std::collections::HashMap;

    let complete = synthesize_and_verify(&accumulator::case_study(), SynthesisMode::PerInstruction);
    let raw = lower(&complete).expect("lowers to gates");
    let opt = optimize(&raw);
    assert!(opt.stats().total() <= raw.stats().total());

    let mut ref_sim = owl::oyster::Interpreter::new(&complete).expect("interpreter");
    let mut raw_sim = GateSim::new(&raw);
    let mut opt_sim = GateSim::new(&opt);
    let mut seed = 7u64;
    for _ in 0..100 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let inputs: HashMap<String, BitVec> = [
            ("reset".to_string(), BitVec::from_u64(1, (seed >> 11) & 1)),
            ("go".to_string(), BitVec::from_u64(1, (seed >> 23) & 1)),
            ("stop".to_string(), BitVec::from_u64(1, (seed >> 35) & 1)),
            ("val".to_string(), BitVec::from_u64(2, (seed >> 47) & 3)),
        ]
        .into();
        let expect = ref_sim.step(&inputs).expect("step").outputs["out"].clone();
        assert_eq!(raw_sim.step(&inputs)["out"], expect);
        assert_eq!(opt_sim.step(&inputs)["out"], expect);
    }
}
