//! Gate-level validation of a full processor: the handwritten crypto core
//! is lowered to gates (raw and optimized) and must match the Oyster
//! interpreter cycle for cycle while executing a real program.

use owl::cores::asm::{Asm, Program};
use owl::cores::crypto_core;
use owl::netlist::{lower, optimize, GateSim};
use owl::oyster::Interpreter;
use owl::BitVec;
use std::collections::HashMap;

#[cfg_attr(debug_assertions, ignore = "lowers a full core to gates; run in release")]
#[test]
fn crypto_core_netlist_matches_interpreter() {
    let core = crypto_core::reference();
    let netlist = lower(&core).expect("core lowers to gates");
    let optimized = optimize(&netlist);
    assert!(optimized.stats().total() < netlist.stats().total());

    let mut p = Program::new();
    p.li(1, 0xDEAD_BEEF);
    p.li(2, 13);
    p.push(Asm::Ror { rd: 3, rs1: 1, rs2: 2 });
    p.push(Asm::Add { rd: 4, rs1: 3, rs2: 1 });
    p.push(Asm::Sltu { rd: 5, rs1: 2, rs2: 1 });
    p.push(Asm::Cmov { rd: 6, rs1: 4, rs2: 5 });
    p.li(7, 0x80);
    p.push(Asm::Sw { rs2: 6, rs1: 7, offset: 0 });
    p.push(Asm::Lw { rd: 8, rs1: 7, offset: 0 });
    p.push(Asm::Xor { rd: 9, rs1: 8, rs2: 1 });
    let code = p.encode();

    let mut interp = Interpreter::new(&core).expect("interpreter");
    let mut raw = GateSim::new(&netlist);
    let mut opt = GateSim::new(&optimized);
    for (i, word) in code.iter().enumerate() {
        let w = BitVec::from_u64(32, u64::from(*word));
        interp.poke_mem("i_mem", i as u64, w.clone()).expect("poke");
        raw.poke_mem("i_mem", i as u64, w.clone());
        opt.poke_mem("i_mem", i as u64, w);
    }

    let inputs = HashMap::new();
    // Enough cycles for the whole program at one instruction per two
    // cycles, plus startup and drain.
    for cycle in 0..(2 * code.len() as u64 + 8) {
        interp.step(&inputs).expect("step");
        raw.step(&inputs);
        opt.step(&inputs);
        for reg in ["pc", "issue", "s2_valid", "s3_valid"] {
            assert_eq!(
                &raw.reg(reg),
                interp.reg(reg).expect("reg"),
                "{reg} diverged at cycle {cycle} (raw)"
            );
            assert_eq!(
                &opt.reg(reg),
                interp.reg(reg).expect("reg"),
                "{reg} diverged at cycle {cycle} (optimized)"
            );
        }
    }
    // The stored word must match on all three levels.
    let expect_mem = interp.mem("d_mem").expect("d_mem").read(0x80 >> 2);
    assert_eq!(expect_mem.to_u64().unwrap() as u32, {
        let x: u32 = 0xDEAD_BEEF;
        let r = x.rotate_right(13);
        r.wrapping_add(x) // cmov condition (13 < 0xDEADBEEF) is true
    });
}
