//! End-to-end certification of synthesis results.
//!
//! The happy path: a certified run on a real case study produces a
//! certificate in which every instruction's solver answers are
//! proof-/model-checked and the synthesized control survives
//! differential re-verification on fresh (non-CEGIS) traces.
//!
//! The adversarial path: hand one instruction the control constants
//! synthesized for a different instruction — the miswired union must
//! fail differential re-verification while the honest union passes.

use owl::core::{
    complete_design, control_union, differential_check, SynthesisConfig, SynthesisSession,
};
use owl::smt::{Budget, TermManager};

#[test]
fn certified_accumulator_run_is_fully_certified() {
    let cs = owl::cores::accumulator::case_study();
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut mgr)
        .expect("valid inputs");
    assert!(out.is_complete(), "{:?}", out.first_error());
    let cert = out.certificate.expect("certification is on by default");
    assert!(cert.is_fully_certified(), "{cert}");
    for entry in &cert.instrs {
        assert!(entry.queries.total() > 0, "{}: no certified queries", entry.instr);
        assert!(entry.differential.is_passed(), "{}: {}", entry.instr, entry.differential);
    }
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn rv32i_certified_synthesis_is_fully_certified() {
    let cs = owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::BASE);
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut mgr)
        .expect("valid inputs");
    assert!(out.is_complete(), "{:?}", out.first_error());
    let cert = out.certificate.expect("certification is on by default");
    assert!(cert.is_fully_certified(), "{cert}");
}

#[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
#[test]
fn miswired_control_union_fails_differential_reverification() {
    let cs = owl::cores::rv32i::single_cycle(owl::cores::rv32i::Extensions::BASE);
    let mut mgr = TermManager::new();
    // Synthesize uncertified (faster); the certification machinery is
    // exercised explicitly below via differential_check.
    let config = SynthesisConfig::builder().certify(false).build();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .expect("valid inputs")
        .require_complete()
        .expect("RV32I synthesizes");
    let budget = Budget::unlimited();
    let instrs = vec!["ADD".to_string(), "JAL".to_string()];

    // Baseline: the honest union passes differential re-verification.
    let union =
        control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).expect("union");
    let complete = complete_design(&cs.sketch, &union);
    let honest = differential_check(&complete, &cs.spec, &cs.alpha, &instrs, 2, 7, &budget)
        .expect("valid inputs");
    assert!(honest.values().all(|s| s.is_passed()), "{honest:?}");

    // Miswire: hand JAL the controls synthesized for ADD. The completed
    // design now computes the wrong next-pc (and link register) whenever
    // JAL decodes, which fresh sampled traces must expose.
    let mut mutated = out.solutions.clone();
    let add = mutated.iter().position(|s| s.instr == "ADD").expect("ADD solved");
    let jal = mutated.iter().position(|s| s.instr == "JAL").expect("JAL solved");
    let add_holes = mutated[add].holes.clone();
    mutated[jal].holes = add_holes;
    let bad_union =
        control_union(&cs.sketch, &cs.spec, &cs.alpha, &mutated).expect("union");
    let bad = complete_design(&cs.sketch, &bad_union);
    let verdicts = differential_check(&bad, &cs.spec, &cs.alpha, &instrs, 2, 7, &budget)
        .expect("valid inputs");
    assert!(
        verdicts["JAL"].is_failed(),
        "miswired JAL control must fail differential re-verification: {verdicts:?}"
    );
    // ADD's own control is untouched and still passes.
    assert!(verdicts["ADD"].is_passed(), "{verdicts:?}");
}
