//! The §5.2 experiment as an integration test: SHA-256 on the synthesized
//! constant-time core takes the same number of cycles for every input
//! length and matches the handwritten-reference core cycle for cycle.

use owl::core::{complete_design, control_union_with, SynthesisSession};
use owl::cores::{crypto_core, sha256};
use owl::smt::TermManager;

#[cfg_attr(debug_assertions, ignore = "synthesizes a core and simulates ~8k cycles; run in release")]
#[test]
fn sha256_is_constant_time_and_correct() {
    let cs = crypto_core::case_study();
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .expect("crypto core synthesizes");
    let union = control_union_with(
        &cs.sketch,
        &cs.spec,
        &cs.alpha,
        &out.solutions,
        &crypto_core::decode_bindings(),
    )
    .expect("union succeeds");
    let generated = complete_design(&cs.sketch, &union);
    let reference = crypto_core::reference();
    let code = sha256::sha256_program().encode();

    let mut cycle_counts = Vec::new();
    for len in [4usize, 16, 32] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 97 + 3) as u8).collect();
        let data = sha256::message_data(&msg);
        let (gen_cycles, gen_sim) = crypto_core::run_program(&generated, &code, &data, 200_000);
        let (ref_cycles, ref_sim) = crypto_core::run_program(&reference, &code, &data, 200_000);
        let expect = sha256::sha256_ref(&msg);
        assert_eq!(sha256::read_digest(&gen_sim), expect, "generated digest, len {len}");
        assert_eq!(sha256::read_digest(&ref_sim), expect, "reference digest, len {len}");
        assert_eq!(gen_cycles, ref_cycles, "cycle counts differ at len {len}");
        cycle_counts.push(gen_cycles);
    }
    assert!(
        cycle_counts.windows(2).all(|w| w[0] == w[1]),
        "cycle count varies with input length: {cycle_counts:?}"
    );
}
