//! The synthesis-cache contract, end to end: a warm run adopts cached
//! per-instruction results only after re-verifying them, and its
//! `SynthesisOutput` is byte-identical to a cold run's at any
//! parallelism; the cache is shared across jobs in a service batch; a
//! changed sketch misses; and a poisoned entry is rejected by
//! verify-on-hit without failing the job.

use owl::cache::{CacheConfig, SynthesisCache};
use owl::core::{FaultPlan, SynthesisOutput, SynthesisSession};
use owl::hdl::{Module, Wire};
use owl::sat::CacheFault;
use owl::service::{JobSpec, ServiceConfig, Shutdown, SynthesisService};
use std::path::PathBuf;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A per-test cache-store path in the system temp directory, fresh on
/// entry.
fn store_path(test: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("owl_cache_{}_{test}.store", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Asserts the byte-identical-reuse contract: solutions, outcomes, work
/// statistics, and certificates all match. (`stats.cache`, like
/// `stats.elapsed` and `stats.replayed`, is provenance — deliberately
/// outside the contract.)
fn assert_outputs_identical(label: &str, a: &SynthesisOutput, b: &SynthesisOutput) {
    assert_eq!(a.solutions.len(), b.solutions.len(), "{label}: solution count");
    for (x, y) in a.solutions.iter().zip(&b.solutions) {
        assert_eq!(x.instr, y.instr, "{label}: solution order");
        assert_eq!(x.holes, y.holes, "{label}: hole values for {}", x.instr);
    }
    assert_eq!(
        format!("{:?}", a.outcomes),
        format!("{:?}", b.outcomes),
        "{label}: per-instruction outcomes"
    );
    assert_eq!(a.stats.solver_calls, b.stats.solver_calls, "{label}: solver calls");
    assert_eq!(a.stats.cex_rounds, b.stats.cex_rounds, "{label}: CEGIS rounds");
    assert_eq!(a.stats.reused, b.stats.reused, "{label}: reuse count");
    assert_eq!(a.stats.escalations, b.stats.escalations, "{label}: escalations");
    match (&a.certificate, &b.certificate) {
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.to_string(), cb.to_string(), "{label}: certificates")
        }
        (None, None) => {}
        _ => panic!("{label}: one run certified, the other did not"),
    }
}

fn clean_reference() -> SynthesisOutput {
    let cs = owl::cores::accumulator::case_study();
    SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run().expect("valid inputs")
}

/// A cold run against an empty store records only misses; warm runs at
/// every parallelism level hit on every instruction and stay
/// byte-identical to the cache-free reference.
#[test]
fn warm_run_is_byte_identical_at_any_parallelism() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let path = store_path("warm");

    let cold = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache_path(&path)
        .run()
        .expect("valid inputs");
    assert_outputs_identical("cold", &reference, &cold);
    assert_eq!(cold.stats.cache.hits, 0, "cold run cannot hit an empty store");
    assert!(cold.stats.cache.misses > 0, "cold run should probe the cache");

    for threads in THREAD_COUNTS {
        let warm = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .cache_path(&path)
            .parallelism(threads)
            .run()
            .expect("valid inputs");
        assert_outputs_identical(&format!("warm x{threads}"), &reference, &warm);
        assert_eq!(
            warm.stats.cache.hits,
            cold.stats.cache.misses,
            "warm x{threads}: every cold miss should be a warm hit"
        );
        assert_eq!(warm.stats.cache.verify_rejected, 0, "warm x{threads}: clean entries verify");
    }
    let _ = std::fs::remove_file(&path);
}

/// A memory budget smaller than one entry forces evictions, and the
/// output stays byte-identical regardless — eviction is a performance
/// event, never a correctness one.
#[test]
fn tiny_budget_evicts_without_changing_output() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let cache = Arc::new(SynthesisCache::in_memory(CacheConfig {
        memory_budget: Some(1),
        ..CacheConfig::default()
    }));

    let first = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache(Arc::clone(&cache))
        .run()
        .expect("valid inputs");
    assert_outputs_identical("evicting first", &reference, &first);
    assert!(cache.stats().evictions > 0, "a 1-byte budget must evict");

    let second = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache(Arc::clone(&cache))
        .run()
        .expect("valid inputs");
    assert_outputs_identical("evicting second", &reference, &second);
}

/// One service instance shares a single store across jobs: with one
/// worker, the first job populates the cache and every later identical
/// job hits, visible in the aggregated [`ServiceMetrics`] counters.
#[test]
fn service_batch_shares_the_cache_across_jobs() {
    let dir = std::env::temp_dir().join(format!("owl_cache_{}_svc", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reference = clean_reference();

    let job = |name: &str| {
        let cs = owl::cores::accumulator::case_study();
        JobSpec::new(name, cs.sketch, cs.spec, cs.alpha)
    };
    let service =
        SynthesisService::start(ServiceConfig::default().workers(1).cache_dir(&dir));
    let handles: Vec<_> =
        (0..3).map(|i| service.submit(job(&format!("share-{i}"))).expect("admitted")).collect();
    for h in handles {
        let out = h.wait().expect("job completes");
        assert_outputs_identical("service job", &reference, &out);
    }
    let metrics = service.shutdown(Shutdown::Drain);
    assert!(metrics.cache_misses > 0, "the first job runs cold");
    assert_eq!(
        metrics.cache_hits,
        2 * metrics.cache_misses,
        "with one worker the two later jobs hit everything the first published: {metrics:?}"
    );
    assert_eq!(metrics.cache_verify_rejected, 0, "clean shared entries verify");

    // A second service instance over the same directory starts warm.
    let service =
        SynthesisService::start(ServiceConfig::default().workers(1).cache_dir(&dir));
    let out = service.submit(job("share-next")).expect("admitted").wait().expect("job completes");
    assert_outputs_identical("second instance", &reference, &out);
    let metrics = service.shutdown(Shutdown::Drain);
    assert!(metrics.cache_hits > 0, "a fresh instance reuses the persisted store: {metrics:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The accumulator sketch with the same holes and semantics but a
/// reordered dispatch chain: structurally distinct conditions, so its
/// fingerprints must not collide with the stock sketch's.
fn edited_sketch() -> owl::oyster::Design {
    let mut m = Module::new("acc_machine");
    let _reset = m.input("reset", 1);
    let _go = m.input("go", 1);
    let _stop = m.input("stop", 1);
    let val = m.input("val", 2);
    let acc = m.register("acc", 8);
    let _state = m.register("state", 2);
    m.output("out", 8);

    let next_state = m.hole("next_state", 2);
    let enc_reset = m.hole("enc_reset", 2);
    let enc_go = m.hole("enc_go", 2);
    let enc_stop = m.hole("enc_stop", 2);

    // Same transition semantics as `owl::cores::accumulator::sketch()`,
    // but the dispatch tests GO before RESET — a one-line sketch edit.
    let zero = Wire::lit(8, 0);
    let plus = acc.clone() + val.zext(8);
    let updated = next_state.eq(enc_go).select(
        plus,
        next_state
            .eq(enc_reset)
            .select(zero, next_state.eq(enc_stop).select(acc.clone(), acc.clone())),
    );
    m.assign("acc", updated);
    m.assign("state", next_state);
    m.assign("out", acc);
    m.finish().expect("edited accumulator sketch is well-formed")
}

/// Editing the sketch invalidates reuse: a store warmed on the stock
/// accumulator yields zero hits for the edited sketch (the conditions'
/// term graphs differ), while the stock sketch still hits.
#[test]
fn edited_sketch_misses_the_warm_store() {
    let cs = owl::cores::accumulator::case_study();
    let path = store_path("edit");

    let cold = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache_path(&path)
        .run()
        .expect("valid inputs");
    assert!(cold.stats.cache.misses > 0, "cold run should probe the cache");

    let edited = SynthesisSession::new(&edited_sketch(), &cs.spec, &cs.alpha)
        .cache_path(&path)
        .run()
        .expect("the edited sketch still implements the spec");
    assert_eq!(edited.stats.cache.hits, 0, "an edited sketch must not reuse stale entries");
    assert_eq!(edited.stats.cache.misses, cold.stats.cache.misses, "every probe misses");

    let warm = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache_path(&path)
        .run()
        .expect("valid inputs");
    assert_eq!(
        warm.stats.cache.hits,
        cold.stats.cache.misses,
        "the stock sketch still hits its own entries"
    );
    let _ = std::fs::remove_file(&path);
}

/// A poisoned entry (bit-flipped hole assignment, injected via the
/// fault plan's cache channel) is caught by verify-on-hit: the entry is
/// rejected and re-solved, the job succeeds, and the output is
/// byte-identical to a cold run's.
#[test]
fn poisoned_entry_is_rejected_and_resolved() {
    let cs = owl::cores::accumulator::case_study();
    let reference = clean_reference();
    let path = store_path("poison");

    let cold = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache_path(&path)
        .run()
        .expect("valid inputs");
    assert!(cold.stats.cache.misses > 0, "cold run should probe the cache");

    let plan = Arc::new(FaultPlan::new().cache_at(0, CacheFault::PoisonHit));
    let cache = Arc::new(SynthesisCache::open(
        &path,
        CacheConfig { faults: Some(plan), ..CacheConfig::default() },
    ));
    let warm = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .cache(cache)
        .run()
        .expect("a poisoned entry must not fail the job");
    assert_outputs_identical("poisoned warm", &reference, &warm);
    assert!(warm.stats.cache.verify_rejected >= 1, "the poisoned hit must be rejected");
    assert!(
        warm.stats.cache.hits >= cold.stats.cache.misses - 1,
        "the untouched entries still hit: {:?}",
        warm.stats.cache
    );
    let _ = std::fs::remove_file(&path);
}
