#!/bin/bash
# Offline test driver companion to .local-build.sh: compiles each crate's
# unit-test harness and the workspace integration tests that do not need
# external dev-deps (proptest/rand/criterion are unavailable offline),
# then runs them. Mirrors `cargo test --release -q` as closely as bare
# rustc allows.
set -e
OUT=${OUT:-/tmp/owl-rlibs}
TOUT=${TOUT:-/tmp/owl-tests}
mkdir -p "$TOUT"
E="--extern owl_trace=$OUT/libowl_trace.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_sat=$OUT/libowl_sat.rlib --extern owl_egraph=$OUT/libowl_egraph.rlib --extern owl_smt=$OUT/libowl_smt.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib --extern owl_cache=$OUT/libowl_cache.rlib --extern owl_core=$OUT/libowl_core.rlib --extern owl_service=$OUT/libowl_service.rlib --extern owl_hdl=$OUT/libowl_hdl.rlib --extern owl_netlist=$OUT/libowl_netlist.rlib --extern owl_cores=$OUT/libowl_cores.rlib --extern owl=$OUT/libowl.rlib"
R="rustc --edition 2021 -O --test -L $OUT --out-dir $TOUT"
cd /root/repo

# Per-crate unit tests.
for c in trace bitvec sat egraph smt oyster ila cache core service hdl netlist cores bench; do
  name=owl_$(echo "$c" | tr - _)
  $R --crate-name ${name}_unit crates/$c/src/lib.rs $E
done
$R --crate-name owl_unit src/lib.rs $E

# Crate-local integration tests.
for t in crates/*/tests/*.rs; do
  name=$(basename "$t" .rs)_$(basename "$(dirname "$(dirname "$t")")")
  $R --crate-name "it_${name//-/_}" "$t" $E
done

# Workspace integration tests (skip the proptest/rand-based suites).
for t in tests/*.rs; do
  base=$(basename "$t" .rs)
  case "$base" in
    properties|eqsat_soundness|cross_layer|oyster_fuzz) continue ;;
  esac
  $R --crate-name "it_${base}" "$t" $E
done

FAIL=0
for bin in "$TOUT"/*; do
  [ -x "$bin" ] || continue
  echo "== $(basename "$bin")"
  "$bin" --test-threads "$(nproc)" -q 2>&1 | tail -2 || FAIL=1
done
if [ "$FAIL" = 0 ]; then echo "ALL TESTS OK"; else echo "TEST FAILURES"; exit 1; fi
