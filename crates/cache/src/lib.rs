//! A verified content-addressed cache of per-instruction synthesis
//! results.
//!
//! The paper's instruction-independence decomposition (§3.3.1) makes
//! each CEGIS sub-problem a self-contained (instruction semantics,
//! sketch holes, config) unit — exactly the granularity at which results
//! can be memoized across runs and across jobs. This crate stores those
//! results in two tiers:
//!
//! - an **in-memory tier** bounded by a byte budget with deterministic
//!   LRU eviction, and
//! - an optional **on-disk tier** — an append-only text store with
//!   CRC-32-guarded records, shared service-wide under single-writer
//!   discipline.
//!
//! The cache is *payload-agnostic*: it maps a 128-bit [`CacheKey`]
//! (derived by the caller from structural term digests — see
//! `TermManager::term_digest`) to an opaque single-line string (the
//! core's task-snapshot encoding). It never interprets the payload, so
//! correctness cannot depend on it: the consumer must **verify on hit**
//! — re-run the instruction's verification query against the decoded
//! hole assignment, and call [`SynthesisCache::invalidate`] +
//! [`SynthesisCache::note_verify_rejected`] when the check fails. A
//! poisoned or stale entry therefore costs one solver call, never a
//! wrong design.
//!
//! Failure philosophy matches the journal reader: every disk problem
//! degrades to a miss, never an error. A damaged line is skipped
//! individually (later records still load), a torn tail is ignored, an
//! unopenable store file just disables the disk tier
//! ([`SynthesisCache::disk_ok`] reports it).
//!
//! Deterministic fault injection rides [`FaultPlan`]'s cache channel
//! (one potential fault per lookup): [`CacheFault::CorruptEntry`] flips
//! a bit in the fetched payload, [`CacheFault::TruncateStore`] tears
//! bytes off the store file, and [`CacheFault::PoisonHit`] marks the hit
//! so the consumer's verify-on-hit path must reject it.

use owl_sat::hash::{crc32, Fnv64};
use owl_sat::{CacheFault, FaultPlan};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic first line of the on-disk store format.
const MAGIC: &str = "owl-cache v1";

/// A 128-bit content address for one per-instruction synthesis result.
///
/// Callers derive the two halves from independent salted fingerprint
/// streams over the same content, so a collision requires both 64-bit
/// streams to collide at once; verify-on-hit absorbs even that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Combines two independent 64-bit fingerprints into one key.
    #[must_use]
    pub fn from_halves(hi: u64, lo: u64) -> Self {
        CacheKey((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The fixed-width hex form used in the store file.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the fixed-width hex form; `None` on malformed input.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

/// Counters describing cache behaviour. Provenance-only: excluded from
/// the byte-identical output contract (like `SynthesisStats::elapsed`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a payload (before verification).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Hits whose payload failed verify-on-hit and was invalidated.
    pub verify_rejected: u64,
    /// Entries evicted from the memory tier under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident in the memory tier.
    pub bytes: u64,
}

impl owl_trace::Report for CacheStats {
    fn report(&self) -> owl_trace::Section {
        owl_trace::Section::new()
            .with("hits", self.hits)
            .with("misses", self.misses)
            .with("verify_rejected", self.verify_rejected)
            .with("evictions", self.evictions)
            .with("bytes", self.bytes)
    }
}

/// Tuning knobs for a [`SynthesisCache`].
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Byte budget for the in-memory tier; `None` means the default
    /// (16 MiB). The budget bounds payload bytes plus a small fixed
    /// per-entry overhead.
    pub memory_budget: Option<usize>,
    /// Deterministic fault injection (cache channel).
    pub faults: Option<Arc<FaultPlan>>,
    /// Observability handle: hit/miss/eviction/verify-rejected counters
    /// land on the `cache` layer. Disabled by default.
    pub tracer: owl_trace::Tracer,
}

const DEFAULT_MEMORY_BUDGET: usize = 16 * 1024 * 1024;
/// Accounting overhead charged per memory-tier entry (key + bookkeeping).
const ENTRY_OVERHEAD: usize = 48;

/// A cache hit: the stored payload plus fault-injection provenance.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The opaque payload stored under the key.
    pub payload: String,
    /// True when a [`CacheFault::PoisonHit`] fired on this lookup: the
    /// consumer must treat the payload as untrusted (it always should)
    /// and is expected to see verification reject it.
    pub poisoned: bool,
}

#[derive(Debug)]
struct MemEntry {
    payload: String,
    last_used: u64,
}

#[derive(Debug)]
struct DiskTier {
    file: File,
    /// Byte offset and length of each live payload within the file.
    index: HashMap<u128, (u64, u32)>,
    /// Our view of the file length (append cursor).
    len: u64,
}

#[derive(Debug)]
struct State {
    mem: HashMap<u128, MemEntry>,
    mem_bytes: usize,
    budget: usize,
    tick: u64,
    disk: Option<DiskTier>,
}

/// The two-tier content-addressed store. Cheap to share: wrap in an
/// [`Arc`] and clone the handle across sessions and service workers;
/// all mutation goes through one internal mutex (single-writer
/// discipline for the append-only store file).
#[derive(Debug)]
pub struct SynthesisCache {
    state: Mutex<State>,
    hits: AtomicU64,
    misses: AtomicU64,
    verify_rejected: AtomicU64,
    evictions: AtomicU64,
    faults: Option<Arc<FaultPlan>>,
    tracer: owl_trace::Tracer,
}

impl SynthesisCache {
    /// A memory-only cache (no persistence).
    #[must_use]
    pub fn in_memory(config: CacheConfig) -> Self {
        Self::build(config, None)
    }

    /// Opens (or creates) a persistent store at `path` and loads its
    /// surviving records into the disk index. Fail-open: if the file
    /// cannot be opened or created, the disk tier is disabled and the
    /// cache runs memory-only ([`Self::disk_ok`] returns `false`).
    #[must_use]
    pub fn open(path: impl AsRef<Path>, config: CacheConfig) -> Self {
        let disk = open_store(path.as_ref());
        Self::build(config, disk)
    }

    fn build(config: CacheConfig, disk: Option<DiskTier>) -> Self {
        SynthesisCache {
            state: Mutex::new(State {
                mem: HashMap::new(),
                mem_bytes: 0,
                budget: config.memory_budget.unwrap_or(DEFAULT_MEMORY_BUDGET),
                tick: 0,
                disk,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            verify_rejected: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            faults: config.faults,
            tracer: config.tracer,
        }
    }

    /// True if the disk tier is attached and healthy.
    pub fn disk_ok(&self) -> bool {
        self.state.lock().unwrap().disk.is_some()
    }

    /// Looks `key` up in the memory tier, then the disk tier (promoting
    /// a disk hit into memory). Any read problem degrades to a miss.
    ///
    /// At most one injected cache fault is consumed per lookup.
    pub fn lookup(&self, key: CacheKey) -> Option<CacheHit> {
        let _span = self.tracer.span("cache", "lookup");
        let fault = self.faults.as_deref().and_then(FaultPlan::next_cache_fault);
        let mut st = self.state.lock().unwrap();
        if let Some(CacheFault::TruncateStore(cut)) = fault {
            tear_store(&mut st, cut);
        }
        st.tick += 1;
        let tick = st.tick;
        let mut payload = if let Some(entry) = st.mem.get_mut(&key.0) {
            entry.last_used = tick;
            Some(entry.payload.clone())
        } else {
            let fetched = read_from_disk(&mut st, key);
            if let Some(ref p) = fetched {
                // Promote: a key re-read from disk is warm traffic.
                insert_mem(&mut st, key, p.clone(), &self.evictions, &self.tracer);
            }
            fetched
        };
        if let (Some(p), Some(CacheFault::CorruptEntry(bit))) = (payload.as_mut(), fault) {
            flip_bit(p, bit);
        }
        drop(st);
        if self.tracer.is_enabled() {
            let name = if payload.is_some() { "hits" } else { "misses" };
            self.tracer.count("cache", name, 1);
        }
        match payload {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let poisoned = matches!(fault, Some(CacheFault::PoisonHit));
                Some(CacheHit { payload, poisoned })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes `payload` under `key` in both tiers. First writer wins:
    /// re-inserting an existing key is a no-op (task results are pure
    /// functions of the key's content, so duplicates carry no news).
    /// Payloads must be single-line; embedded newlines skip the disk
    /// tier (the text store is line-framed).
    pub fn insert(&self, key: CacheKey, payload: &str) {
        let mut st = self.state.lock().unwrap();
        if st.mem.contains_key(&key.0) {
            return;
        }
        let on_disk = st
            .disk
            .as_ref()
            .is_some_and(|d| d.index.contains_key(&key.0));
        if !on_disk && !payload.contains('\n') {
            append_record(&mut st, key, payload);
        }
        insert_mem(&mut st, key, payload.to_string(), &self.evictions, &self.tracer);
        drop(st);
        if self.tracer.is_enabled() {
            self.tracer.count("cache", "inserts", 1);
        }
    }

    /// Drops `key` from both tiers and writes a tombstone so the entry
    /// stays dead across reopens. Called by the consumer when
    /// verify-on-hit rejects a payload.
    pub fn invalidate(&self, key: CacheKey) {
        let mut st = self.state.lock().unwrap();
        if let Some(old) = st.mem.remove(&key.0) {
            st.mem_bytes = st
                .mem_bytes
                .saturating_sub(old.payload.len() + ENTRY_OVERHEAD);
        }
        let mut disk_dead = false;
        if let Some(disk) = st.disk.as_mut() {
            if disk.index.remove(&key.0).is_some() {
                let body = format!("del {}", key.to_hex());
                let line = format!("{body} crc {:08x}\n", crc32(body.as_bytes()));
                if disk.file.write_all(line.as_bytes()).is_err() {
                    disk_dead = true;
                } else {
                    disk.len += line.len() as u64;
                }
            }
        }
        if disk_dead {
            // Fail open: a dead disk tier must never fail the run.
            st.disk = None;
        }
    }

    /// Records that a hit failed verification (the caller should also
    /// [`Self::invalidate`] the key).
    pub fn note_verify_rejected(&self) {
        self.verify_rejected.fetch_add(1, Ordering::Relaxed);
        if self.tracer.is_enabled() {
            self.tracer.count("cache", "verify_rejected", 1);
        }
    }

    /// Store-wide counters.
    pub fn stats(&self) -> CacheStats {
        let bytes = self.state.lock().unwrap().mem_bytes as u64;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            verify_rejected: self.verify_rejected.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes,
        }
    }

    /// Number of live entries across both tiers (disk entries that are
    /// also resident in memory count once).
    pub fn len(&self) -> usize {
        let st = self.state.lock().unwrap();
        let mut n = st.mem.len();
        if let Some(disk) = st.disk.as_ref() {
            n += disk
                .index
                .keys()
                .filter(|k| !st.mem.contains_key(k))
                .count();
        }
        n
    }

    /// True when no entry is live in either tier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Derives a salted [`CacheKey`] from a closure that feeds the same
/// content into both fingerprint streams. The closure is called twice
/// with differently-salted hashers; content must be fed identically.
pub fn key_of(mut feed: impl FnMut(&mut Fnv64)) -> CacheKey {
    let mut hi = Fnv64::with_salt(0x6f77_6c2d_6361_6368); // "owl-cach"
    let mut lo = Fnv64::with_salt(0x652d_6b65_7931_3238); // "e-key128"
    feed(&mut hi);
    feed(&mut lo);
    CacheKey::from_halves(hi.finish(), lo.finish())
}

fn insert_mem(
    st: &mut State,
    key: CacheKey,
    payload: String,
    evictions: &AtomicU64,
    tracer: &owl_trace::Tracer,
) {
    st.tick += 1;
    let tick = st.tick;
    let cost = payload.len() + ENTRY_OVERHEAD;
    if let Some(prev) = st.mem.insert(key.0, MemEntry { payload, last_used: tick }) {
        st.mem_bytes = st.mem_bytes.saturating_sub(prev.payload.len() + ENTRY_OVERHEAD);
    }
    st.mem_bytes += cost;
    // Deterministic LRU: evict the stalest entry (smallest last_used,
    // ties broken by key) until we fit. The entry just inserted is
    // spared so a single oversized payload still caches once.
    while st.mem_bytes > st.budget && st.mem.len() > 1 {
        let victim = st
            .mem
            .iter()
            .filter(|(k, _)| **k != key.0)
            .map(|(k, e)| (e.last_used, *k))
            .min();
        let Some((_, vk)) = victim else { break };
        if let Some(old) = st.mem.remove(&vk) {
            st.mem_bytes = st
                .mem_bytes
                .saturating_sub(old.payload.len() + ENTRY_OVERHEAD);
            evictions.fetch_add(1, Ordering::Relaxed);
            if tracer.is_enabled() {
                tracer.count("cache", "evictions", 1);
            }
        }
    }
}

fn append_record(st: &mut State, key: CacheKey, payload: &str) {
    let mut disk_dead = false;
    if let Some(disk) = st.disk.as_mut() {
        let body = format!("ent {} {payload}", key.to_hex());
        let line = format!("{body} crc {:08x}\n", crc32(body.as_bytes()));
        if disk.file.write_all(line.as_bytes()).is_err() {
            disk_dead = true;
        } else {
            // Payload starts after "ent <32 hex> " within the new line.
            let payload_off = disk.len + 4 + 32 + 1;
            disk.index.insert(key.0, (payload_off, payload.len() as u32));
            disk.len += line.len() as u64;
        }
    }
    if disk_dead {
        // Fail open: a dead disk tier must never fail the synthesis run.
        st.disk = None;
    }
}

fn read_from_disk(st: &mut State, key: CacheKey) -> Option<String> {
    let disk = st.disk.as_mut()?;
    let (off, len) = *disk.index.get(&key.0)?;
    let mut buf = vec![0u8; len as usize];
    let ok = disk
        .file
        .seek(SeekFrom::Start(off))
        .and_then(|_| disk.file.read_exact(&mut buf))
        .is_ok();
    // Appends go to the end regardless of the seek (O_APPEND), but
    // re-seek explicitly so the cursor never surprises anyone.
    let _ = disk.file.seek(SeekFrom::End(0));
    if !ok {
        // Unreadable record (e.g. torn store): drop it and miss.
        disk.index.remove(&key.0);
        return None;
    }
    String::from_utf8(buf).ok().or_else(|| {
        disk.index.remove(&key.0);
        None
    })
}

/// Injected store tear: chop `cut` bytes off the end of the file and
/// drop index entries that no longer fit — the recovery path consumers
/// exercise is "degrade to miss", same as a real torn write.
fn tear_store(st: &mut State, cut: u64) {
    let mut disk_dead = false;
    if let Some(disk) = st.disk.as_mut() {
        let new_len = disk.len.saturating_sub(cut);
        if disk.file.set_len(new_len).is_err() {
            disk_dead = true;
        } else {
            disk.len = new_len;
            disk.index.retain(|_, (off, len)| *off + u64::from(*len) <= new_len);
        }
    }
    if disk_dead {
        st.disk = None;
    }
}

fn flip_bit(payload: &mut String, bit: u64) {
    if payload.is_empty() {
        return;
    }
    let mut bytes = payload.clone().into_bytes();
    let idx = (bit / 8) as usize % bytes.len();
    bytes[idx] ^= 1 << (bit % 8);
    // Keep it a string: if the flip broke UTF-8, overwrite with '?'.
    match String::from_utf8(bytes) {
        Ok(s) => *payload = s,
        Err(e) => {
            let mut bytes = e.into_bytes();
            let idx = (bit / 8) as usize % bytes.len();
            bytes[idx] = b'?';
            *payload = String::from_utf8_lossy(&bytes).into_owned();
        }
    }
}

/// Opens the store file and scans surviving records into an index.
/// Returns `None` (disk tier disabled) only if the file itself cannot
/// be opened or created; damaged *content* never disables the tier.
fn open_store(path: &Path) -> Option<DiskTier> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Best-effort; open() below reports the real failure.
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let mut file = OpenOptions::new()
        .read(true)
        .append(true)
        .create(true)
        .open(path)
        .ok()?;
    let mut text = String::new();
    // A non-UTF-8 store cannot be ours: leave it alone, run memory-only
    // (same as a foreign magic line below — never clobber user data).
    if file.read_to_string(&mut text).is_err() {
        return None;
    }
    if text.is_empty() {
        let header = format!("{MAGIC}\n");
        file.write_all(header.as_bytes()).ok()?;
        return Some(DiskTier {
            file,
            index: HashMap::new(),
            len: header.len() as u64,
        });
    }
    let mut lines = text.split_inclusive('\n');
    let first = lines.next().unwrap_or("");
    if first.trim_end() != MAGIC {
        // Unrecognized format: leave the file alone, run memory-only.
        return None;
    }
    let mut index = HashMap::new();
    let mut offset = first.len() as u64;
    for line in lines {
        let line_len = line.len() as u64;
        // A torn tail has no trailing newline; its CRC check fails the
        // same way any damaged line does — skip it, keep scanning.
        scan_line(line.trim_end_matches('\n'), offset, &mut index);
        offset += line_len;
    }
    // Logical length = physical length we just read; appends continue
    // from here even past a torn (newline-less) tail, which the scan
    // above already discarded. Re-frame the tail with a newline so the
    // next record starts cleanly.
    let mut len = text.len() as u64;
    if !text.ends_with('\n') {
        file.write_all(b"\n").ok()?;
        len += 1;
    }
    Some(DiskTier { file, index, len })
}

/// Parses one record line into the index; damage is skipped silently.
fn scan_line(line: &str, offset: u64, index: &mut HashMap<u128, (u64, u32)>) {
    let Some((body, crc_hex)) = line.rsplit_once(" crc ") else {
        return;
    };
    let Ok(stored) = u32::from_str_radix(crc_hex.trim(), 16) else {
        return;
    };
    if crc32(body.as_bytes()) != stored {
        return;
    }
    if let Some(rest) = body.strip_prefix("ent ") {
        let Some((key_hex, payload)) = rest.split_once(' ') else {
            return;
        };
        let Some(key) = CacheKey::from_hex(key_hex) else {
            return;
        };
        let payload_off = offset + 4 + 32 + 1;
        index.insert(key.0, (payload_off, payload.len() as u32));
    } else if let Some(key_hex) = body.strip_prefix("del ") {
        if let Some(key) = CacheKey::from_hex(key_hex.trim()) {
            index.remove(&key.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_sat::CacheFault;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("owl-cache-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn key(n: u64) -> CacheKey {
        CacheKey::from_halves(n, !n)
    }

    #[test]
    fn key_hex_round_trips() {
        let k = CacheKey::from_halves(0xdead_beef, 0x1234);
        assert_eq!(CacheKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(CacheKey::from_hex("nope"), None);
        assert_eq!(CacheKey::from_hex(&"f".repeat(31)), None);
    }

    #[test]
    fn key_of_streams_are_independent() {
        let a = key_of(|h| h.field("content-a"));
        let b = key_of(|h| h.field("content-b"));
        assert_ne!(a, b);
        // The two 64-bit halves disagree (independent salts).
        assert_ne!((a.0 >> 64) as u64, a.0 as u64);
    }

    #[test]
    fn memory_round_trip_and_miss() {
        let cache = SynthesisCache::in_memory(CacheConfig::default());
        assert!(cache.lookup(key(1)).is_none());
        cache.insert(key(1), "solved esc 0");
        let hit = cache.lookup(key(1)).expect("hit");
        assert_eq!(hit.payload, "solved esc 0");
        assert!(!hit.poisoned);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = SynthesisCache::in_memory(CacheConfig::default());
        cache.insert(key(1), "first");
        cache.insert(key(1), "second");
        assert_eq!(cache.lookup(key(1)).unwrap().payload, "first");
    }

    #[test]
    fn lru_eviction_under_tiny_budget() {
        let cache = SynthesisCache::in_memory(CacheConfig {
            memory_budget: Some(3 * (8 + ENTRY_OVERHEAD)),
            ..CacheConfig::default()
        });
        for n in 0..4 {
            cache.insert(key(n), "12345678");
        }
        // Touch key 0 so key 1 is now the LRU victim of the next insert.
        assert!(cache.lookup(key(0)).is_some() || cache.lookup(key(1)).is_some());
        let evicted_before = cache.stats().evictions;
        assert!(evicted_before >= 1, "tiny budget must evict");
        cache.insert(key(9), "12345678");
        assert!(cache.stats().evictions > evicted_before);
        assert!(cache.stats().bytes <= 3 * (8 + ENTRY_OVERHEAD) as u64);
        // The newest entry is always resident.
        assert!(cache.lookup(key(9)).is_some());
    }

    #[test]
    fn disk_round_trip_across_reopen() {
        let path = temp_path("reopen");
        {
            let cache = SynthesisCache::open(&path, CacheConfig::default());
            assert!(cache.disk_ok());
            cache.insert(key(7), "payload with spaces [ 1 2 3 ]");
            cache.insert(key(8), "other");
        }
        let cache = SynthesisCache::open(&path, CacheConfig::default());
        assert_eq!(cache.len(), 2);
        let hit = cache.lookup(key(7)).expect("persisted");
        assert_eq!(hit.payload, "payload with spaces [ 1 2 3 ]");
        // Promotion: second lookup is served from memory.
        assert!(cache.lookup(key(7)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tombstone_survives_reopen() {
        let path = temp_path("tombstone");
        {
            let cache = SynthesisCache::open(&path, CacheConfig::default());
            cache.insert(key(7), "stale");
            cache.invalidate(key(7));
            assert!(cache.lookup(key(7)).is_none());
        }
        let cache = SynthesisCache::open(&path, CacheConfig::default());
        assert!(cache.lookup(key(7)).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_degrades_to_miss_and_keeps_earlier_records() {
        let path = temp_path("torn");
        {
            let cache = SynthesisCache::open(&path, CacheConfig::default());
            cache.insert(key(1), "intact");
            cache.insert(key(2), "will be torn");
        }
        // Tear mid-way through the last record.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        let cache = SynthesisCache::open(&path, CacheConfig::default());
        assert!(cache.disk_ok());
        assert_eq!(cache.lookup(key(1)).unwrap().payload, "intact");
        assert!(cache.lookup(key(2)).is_none());
        // The store keeps accepting appends after the tear.
        cache.insert(key(3), "fresh after tear");
        drop(cache);
        let cache = SynthesisCache::open(&path, CacheConfig::default());
        assert_eq!(cache.lookup(key(3)).unwrap().payload, "fresh after tear");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_middle_line_is_skipped_individually() {
        let path = temp_path("damaged");
        {
            let cache = SynthesisCache::open(&path, CacheConfig::default());
            cache.insert(key(1), "alpha-one");
            cache.insert(key(2), "payload-two");
            cache.insert(key(3), "gamma-three");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        // Corrupt the middle record's payload byte without touching its
        // CRC (the marker string cannot occur inside hex key/crc fields).
        let damaged = text.replacen("payload-two", "Payload-two", 1);
        std::fs::write(&path, damaged).unwrap();
        let cache = SynthesisCache::open(&path, CacheConfig::default());
        assert!(cache.lookup(key(1)).is_some());
        assert!(cache.lookup(key(2)).is_none(), "bad CRC must be skipped");
        assert!(cache.lookup(key(3)).is_some(), "later records still load");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_disables_disk_tier_without_clobbering() {
        let path = temp_path("foreign");
        std::fs::write(&path, "important user data\n").unwrap();
        let cache = SynthesisCache::open(&path, CacheConfig::default());
        assert!(!cache.disk_ok());
        cache.insert(key(1), "memory only");
        assert!(cache.lookup(key(1)).is_some());
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "important user data\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poison_fault_marks_the_hit() {
        let plan = Arc::new(FaultPlan::new().cache_at(0, CacheFault::PoisonHit));
        let cache = SynthesisCache::in_memory(CacheConfig {
            faults: Some(plan),
            ..CacheConfig::default()
        });
        cache.insert(key(1), "candidate");
        let hit = cache.lookup(key(1)).unwrap();
        assert!(hit.poisoned);
        assert_eq!(hit.payload, "candidate", "poison does not alter bytes");
        // The channel fires once; the next lookup is clean.
        assert!(!cache.lookup(key(1)).unwrap().poisoned);
    }

    #[test]
    fn corrupt_entry_fault_flips_payload_bits() {
        let plan = Arc::new(FaultPlan::new().cache_at(0, CacheFault::CorruptEntry(3)));
        let cache = SynthesisCache::in_memory(CacheConfig {
            faults: Some(plan),
            ..CacheConfig::default()
        });
        cache.insert(key(1), "candidate");
        let hit = cache.lookup(key(1)).unwrap();
        assert_ne!(hit.payload, "candidate");
        // Memory tier itself is unharmed (the fault models read rot).
        assert_eq!(cache.lookup(key(1)).unwrap().payload, "candidate");
    }

    #[test]
    fn truncate_store_fault_tears_the_disk_tier() {
        let path = temp_path("tear-fault");
        let plan = Arc::new(FaultPlan::new().cache_at(0, CacheFault::TruncateStore(64)));
        {
            let cache = SynthesisCache::open(&path, CacheConfig::default());
            cache.insert(key(1), "short");
            cache.insert(key(2), "the last record, torn away by the fault");
        }
        let cache = SynthesisCache::open(
            &path,
            CacheConfig { faults: Some(plan), ..CacheConfig::default() },
        );
        // First lookup consumes the tear; key 2's record no longer fits.
        assert!(cache.lookup(key(2)).is_none());
        assert_eq!(cache.lookup(key(1)).unwrap().payload, "short");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_count_verify_rejections() {
        let cache = SynthesisCache::in_memory(CacheConfig::default());
        cache.insert(key(1), "bad");
        let _ = cache.lookup(key(1));
        cache.note_verify_rejected();
        cache.invalidate(key(1));
        let s = cache.stats();
        assert_eq!(s.verify_rejected, 1);
        assert!(cache.lookup(key(1)).is_none());
    }
}
