//! Shared helpers for the table-regeneration binaries and Criterion
//! benches.
//!
//! The binaries regenerate the paper's evaluation artifacts:
//!
//! - `table1` — sketch sizes and synthesis times for every case-study
//!   variant, per-instruction vs. monolithic (the paper's Table 1);
//! - `table2` — HDL control-logic sizes and netlist gate counts,
//!   reference vs. generated vs. optimized (Table 2);
//! - `consttime` — SHA-256 cycle counts on the constant-time core
//!   (the §5.2 experiment); and
//! - `ablation` — solve time vs. specification size, per-instruction vs.
//!   monolithic (the scalability discussion of §5.3).

use owl_core::{
    complete_design, control_union_with, verify_design, DecodeBinding, SynthesisConfig,
    SynthesisMode, SynthesisSession,
};
use owl_cores::CaseStudy;
use owl_oyster::Design;
use owl_smt::TermManager;
use std::time::{Duration, Instant};

/// Result of synthesizing one case-study variant.
#[derive(Debug)]
pub struct SynthesisRun {
    /// Variant name.
    pub name: String,
    /// Sketch size in Oyster lines.
    pub sketch_lines: usize,
    /// Synthesis wall-clock time, or `None` on timeout/failure.
    pub time: Option<Duration>,
    /// The completed design (when synthesis succeeded).
    pub completed: Option<Design>,
    /// Failure/timeout description, if any.
    pub note: Option<String>,
}

/// Synthesizes a case study end to end (synthesis + union + completion),
/// with an optional wall-clock budget.
#[must_use]
pub fn run_synthesis(
    cs: &CaseStudy,
    mode: SynthesisMode,
    bindings: &[DecodeBinding],
    budget: Option<Duration>,
) -> SynthesisRun {
    let mut mgr = TermManager::new();
    // Certification off: the paper's tables time raw synthesis, and the
    // proof-logging/differential overhead would skew the comparison.
    let config = SynthesisConfig::builder()
        .mode(mode)
        .time_budget(budget)
        .certify(false)
        .build();
    let start = Instant::now();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    match result {
        Ok(out) => {
            let union =
                control_union_with(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions, bindings)
                    .expect("union succeeds after synthesis");
            let completed = complete_design(&cs.sketch, &union);
            SynthesisRun {
                name: cs.name.clone(),
                sketch_lines: cs.sketch.line_count(),
                time: Some(start.elapsed()),
                completed: Some(completed),
                note: None,
            }
        }
        Err(e) => SynthesisRun {
            name: cs.name.clone(),
            sketch_lines: cs.sketch.line_count(),
            time: None,
            completed: None,
            note: Some(e.to_string()),
        },
    }
}

/// Re-verifies a completed design; panics on failure (the tables must
/// only report verified designs).
pub fn assert_verified(cs: &CaseStudy, completed: &Design) {
    let mut mgr = TermManager::new();
    verify_design(&mut mgr, completed, &cs.spec, &cs.alpha, None)
        .unwrap_or_else(|e| panic!("{}: completed design failed verification: {e}", cs.name));
}

/// Formats a duration as seconds with one decimal, or the note/timeout.
#[must_use]
pub fn fmt_time(run: &SynthesisRun) -> String {
    match &run.time {
        Some(t) => format!("{:.1}", t.as_secs_f64()),
        None => match &run.note {
            Some(n) if n.contains("timed out") => "Timeout".to_string(),
            Some(n) => format!("Failed ({n})"),
            None => "-".to_string(),
        },
    }
}

/// All the Table 1 case-study variants, in the paper's row order, paired
/// with their decode bindings and whether the monolithic (†) experiment
/// is also run for them.
#[must_use]
pub fn table1_rows() -> Vec<(CaseStudy, Vec<DecodeBinding>, bool)> {
    use owl_cores::rv32i::Extensions;
    vec![
        (owl_cores::aes::case_study(), vec![], true),
        (owl_cores::rv32i::single_cycle(Extensions::BASE), vec![], true),
        (owl_cores::rv32i::single_cycle(Extensions::ZBKB), vec![], false),
        (owl_cores::rv32i::single_cycle(Extensions::ZBKC), vec![], false),
        (owl_cores::rv32i::two_stage(Extensions::BASE), vec![], false),
        (owl_cores::rv32i::two_stage(Extensions::ZBKB), vec![], false),
        (owl_cores::rv32i::two_stage(Extensions::ZBKC), vec![], false),
        (owl_cores::crypto_core::case_study(), owl_cores::crypto_core::decode_bindings(), false),
    ]
}
