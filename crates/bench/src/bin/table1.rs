//! Regenerates the paper's Table 1: sketch size and control logic
//! synthesis time for every case-study variant, with and without the
//! instruction-independence optimization (†).
//!
//! Usage: `cargo run --release -p owl-bench --bin table1 [timeout-secs]`
//! (default monolithic timeout: 600 seconds; the paper used 3 hours).

use owl_bench::{assert_verified, fmt_time, run_synthesis, table1_rows};
use owl_core::SynthesisMode;
use std::time::Duration;

fn main() {
    let timeout_secs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);
    let budget = Duration::from_secs(timeout_secs);

    println!("Table 1: control logic synthesis results over all case studies.");
    println!("(† = without the instruction-independence optimization; timeout {timeout_secs}s)\n");
    println!("{:<42} {:>12} {:>16}", "Design / Variant", "Sketch Size", "Synth Time (s)");
    println!("{}", "-".repeat(72));

    for (cs, bindings, run_monolithic) in table1_rows() {
        let run = run_synthesis(&cs, SynthesisMode::PerInstruction, &bindings, Some(budget));
        if let Some(completed) = &run.completed {
            assert_verified(&cs, completed);
        }
        println!("{:<42} {:>12} {:>16}", run.name, run.sketch_lines, fmt_time(&run));

        if run_monolithic {
            let mono = run_synthesis(&cs, SynthesisMode::Monolithic, &bindings, Some(budget));
            println!(
                "{:<42} {:>12} {:>16}",
                format!("{} \u{2020}", cs.name),
                mono.sketch_lines,
                fmt_time(&mono)
            );
        }
    }
    println!("\nAll per-instruction results independently re-verified against their specs.");
}
