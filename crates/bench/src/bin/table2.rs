//! Regenerates the paper's Table 2: size of designs with generated
//! control logic compared to a handwritten reference — control-logic HDL
//! lines, then netlist gate counts before and after logic optimization.

use owl_bench::{assert_verified, run_synthesis};
use owl_core::codegen::{line_count, oyster_control_logic, pyrtl_control_logic};
use owl_core::{complete_design, control_union, minimize_solutions, SynthesisMode, SynthesisSession};
use owl_cores::rv32i::{self, Extensions};
use owl_netlist::{lower, optimize};
use owl_smt::TermManager;

fn main() {
    println!("Table 2: designs with generated control logic vs. a handwritten reference.");
    println!("(control-logic lines: reference = handwritten decode statements,");
    println!(" generated = PyRTL-style rendering of the synthesized control)\n");
    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>11} {:>12} {:>12} {:>12}",
        "Variant", "HDL(Ref)", "HDL(Gen)", "Gates(Ref)", "Gates(Gen)", "OptGates(R)", "OptGates(G)", "MinOpt(G)"
    );
    println!("{}", "-".repeat(100));

    for ext in [Extensions::BASE, Extensions::ZBKB, Extensions::ZBKC] {
        let cs = rv32i::single_cycle(ext);

        // Synthesize and keep the raw per-instruction solutions for the
        // Fig. 7-style rendering.
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .expect("synthesis succeeds");
        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions)
            .expect("union succeeds");
        let pyrtl = pyrtl_control_logic(&union, &out.solutions);
        let oyster = oyster_control_logic(&union);
        let generated_lines = line_count(&pyrtl).max(line_count(&oyster));

        let run = run_synthesis(&cs, SynthesisMode::PerInstruction, &[], None);
        let completed = run.completed.expect("synthesis succeeds");
        assert_verified(&cs, &completed);

        // Minimization ablation (§5.3's size objective): merge don't-care
        // hole values, re-verify, and rebuild the design.
        let (minimized, _) = minimize_solutions(&mut mgr, &cs.sketch, &cs.spec, &cs.alpha, &out.solutions)
            .expect("minimization succeeds");
        let min_union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &minimized)
            .expect("minimized union succeeds");
        let min_completed = complete_design(&cs.sketch, &min_union);
        assert_verified(&cs, &min_completed);

        let reference = rv32i::datapath::reference_single_cycle(ext);
        let reference_lines = rv32i::datapath::reference_control_line_count(ext);

        let ref_netlist = lower(&reference).expect("reference lowers");
        let gen_netlist = lower(&completed).expect("generated lowers");
        let min_netlist = lower(&min_completed).expect("minimized lowers");
        let ref_opt = optimize(&ref_netlist);
        let gen_opt = optimize(&gen_netlist);
        let min_opt = optimize(&min_netlist);

        println!(
            "{:<16} {:>9} {:>9} {:>11} {:>11} {:>12} {:>12} {:>12}",
            format!("{ext}"),
            reference_lines,
            generated_lines,
            ref_netlist.stats().total(),
            gen_netlist.stats().total(),
            ref_opt.stats().total(),
            gen_opt.stats().total(),
            min_opt.stats().total(),
        );
    }
    println!("\nGate counts exclude memory macros (register file and RAMs are");
    println!("primitive blocks, as in PyRTL); the optimizer pass plays the role");
    println!("of the paper's Yosys run.");
}
