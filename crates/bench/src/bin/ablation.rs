//! Ablation study (the scalability discussion of §3.3.1 / §5.3): solve
//! time as a function of specification size, per-instruction vs.
//! monolithic.
//!
//! The specification is truncated to its first N instructions and
//! synthesized both ways; the monolithic times grow super-linearly while
//! per-instruction stays near-linear — the structural reason the paper's
//! Table 1 shows a 3-hour timeout for monolithic RV32I.

use owl_core::{SynthesisConfig, SynthesisMode, SynthesisSession};
use owl_cores::rv32i::spec::spec_from_table;
use owl_cores::rv32i::{self, isa::instruction_table, Extensions};
use owl_smt::TermManager;
use std::time::{Duration, Instant};

fn main() {
    let budget: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(120);
    let sketch = rv32i::datapath::single_cycle_sketch(Extensions::BASE);
    let alpha = rv32i::alpha_single_cycle();
    let table = instruction_table(Extensions::BASE);

    println!("Solve time vs. number of instructions (single-cycle RV32I prefix);");
    println!("budget {budget}s per monolithic run.\n");
    println!("{:>8} {:>20} {:>20}", "instrs", "per-instruction (s)", "monolithic (s)");
    println!("{}", "-".repeat(52));

    for n in [1usize, 2, 4, 8, 12, 16, 24, 37] {
        let spec = spec_from_table(format!("rv32i_prefix_{n}"), &table[..n], false);
        let mut times = Vec::new();
        for mode in [SynthesisMode::PerInstruction, SynthesisMode::Monolithic] {
            let mut mgr = TermManager::new();
            let config = SynthesisConfig::builder()
                .mode(mode)
                .time_budget(Duration::from_secs(budget))
                .build();
            let start = Instant::now();
            let result = SynthesisSession::new(&sketch, &spec, &alpha)
                .config(config)
                .run_with(&mut mgr)
                .and_then(|out| out.require_complete());
            times.push(match result {
                Ok(_) => format!("{:.2}", start.elapsed().as_secs_f64()),
                Err(e) if e.is_global_stop() => "timeout".to_string(),
                Err(e) => format!("failed: {e}"),
            });
        }
        println!("{:>8} {:>20} {:>20}", n, times[0], times[1]);
    }
}
