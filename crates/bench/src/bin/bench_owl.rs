//! Emits `BENCH_owl.json`: machine-readable synthesis measurements for
//! the eqsat-simplification evaluation.
//!
//! For each configuration (case study × decomposition mode × simplify
//! on/off) the report records wall-clock time, the number of
//! specification instructions, term-graph node counts before and after
//! equality-saturation simplification, and the CNF variable/clause
//! counts produced by bit-blasting — enough to reproduce the
//! "simplification shrinks the CNF" claim without re-running synthesis.
//!
//! Usage: `cargo run --release -p owl-bench --bin bench_owl [--quick] [--verbose] [timeout-secs]`
//!
//! `--quick` restricts the sweep to the reduced RV32I configuration
//! (single-cycle, base ISA) plus a small monolithic case, for CI smoke
//! runs. `--verbose` streams per-configuration progress to stderr. The
//! default monolithic timeout is 600 seconds.
//!
//! `--trace <path>` runs the four-job RV32I service batch with tracing
//! enabled and writes a Chrome trace-event file (open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>) covering every
//! layer: service scheduling, per-instruction sessions, SMT queries,
//! eqsat saturation, SAT search counters, and cache probes.

use owl_core::{
    complete_design, control_union_with, verify_design, DecodeBinding, Fault, FaultPlan,
    SolverConfig, SynthesisConfig, SynthesisMode, SynthesisOutput, SynthesisSession, VerifyOpts,
    VerifyStats,
};
use owl_cores::CaseStudy;
use owl_service::{scan_journals, JobSpec, ServiceConfig, Shutdown, SynthesisService};
use owl_smt::TermManager;
use owl_trace::{to_json, Report, Section, Tracer};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured synthesis run.
struct Measurement {
    name: String,
    mode: SynthesisMode,
    simplify: bool,
    wall_time_s: f64,
    solved: bool,
    instructions: usize,
    terms_before_simplify: usize,
    terms_after_simplify: usize,
    cnf_vars: usize,
    cnf_clauses: usize,
    solver_calls: usize,
    note: Option<String>,
}

impl Report for Measurement {
    fn report(&self) -> Section {
        let mode = match self.mode {
            SynthesisMode::PerInstruction => "per_instruction",
            SynthesisMode::Monolithic => "monolithic",
        };
        Section::new()
            .with("name", self.name.as_str())
            .with("mode", mode)
            .with("simplify", self.simplify)
            .with("wall_time_s", self.wall_time_s)
            .with("solved", self.solved)
            .with("instructions", self.instructions)
            .with("terms_before_simplify", self.terms_before_simplify)
            .with("terms_after_simplify", self.terms_after_simplify)
            .with("cnf_vars", self.cnf_vars)
            .with("cnf_clauses", self.cnf_clauses)
            .with("solver_calls", self.solver_calls)
            .with("note", self.note.clone())
    }
}

fn measure(
    cs: &CaseStudy,
    mode: SynthesisMode,
    simplify: bool,
    budget: Duration,
    parallelism: usize,
) -> Measurement {
    let mut mgr = TermManager::new();
    // Certification off, as in the table binaries: this measures raw
    // synthesis plus (optionally) the eqsat pre-pass.
    let config = SynthesisConfig::builder()
        .mode(mode)
        .time_budget(budget)
        .certify(false)
        .simplify(simplify)
        .build();
    let start = Instant::now();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .parallelism(parallelism)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    let wall_time_s = start.elapsed().as_secs_f64();
    match result {
        Ok(out) => Measurement {
            name: cs.name.clone(),
            mode,
            simplify,
            wall_time_s,
            solved: true,
            instructions: cs.spec.instrs().len(),
            terms_before_simplify: out.stats.terms_before,
            terms_after_simplify: out.stats.terms_after,
            cnf_vars: out.stats.cnf_vars,
            cnf_clauses: out.stats.cnf_clauses,
            solver_calls: out.stats.solver_calls,
            note: None,
        },
        Err(e) => Measurement {
            name: cs.name.clone(),
            mode,
            simplify,
            wall_time_s,
            solved: false,
            instructions: cs.spec.instrs().len(),
            terms_before_simplify: 0,
            terms_after_simplify: 0,
            cnf_vars: 0,
            cnf_clauses: 0,
            solver_calls: 0,
            note: Some(e.to_string()),
        },
    }
}

/// One point of the thread-scaling curve: the same per-instruction
/// problem at a given worker count.
struct ScalingPoint {
    threads: usize,
    wall_time_s: f64,
    speedup: f64,
    solved: bool,
    /// Whether the run's observable output (hole assignments, solver
    /// call count, CNF sizes) matched the single-threaded reference —
    /// the scheduler's determinism contract, checked on real data.
    identical: bool,
}

impl Report for ScalingPoint {
    fn report(&self) -> Section {
        Section::new()
            .with("threads", self.threads)
            .with("wall_time_s", self.wall_time_s)
            .with("speedup", self.speedup)
            .with("solved", self.solved)
            .with("identical", self.identical)
    }
}

/// Measures the per-instruction scheduler at 1/2/4/8 workers on one
/// case study and cross-checks that every run produced byte-identical
/// results. Speedups are relative to the 1-thread run *on this host*;
/// `host_cpus` in the report says how many cores were available.
fn measure_scaling(cs: &CaseStudy, budget: Duration) -> Vec<ScalingPoint> {
    let run = |threads: usize| {
        let config = SynthesisConfig::builder().time_budget(budget).certify(false).build();
        let mut mgr = TermManager::new();
        let start = Instant::now();
        let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .config(config)
            .parallelism(threads)
            .run_with(&mut mgr)
            .and_then(|out| out.require_complete());
        (start.elapsed().as_secs_f64(), result.ok())
    };
    let (base_time, base_out) = run(1);
    let mut points = vec![ScalingPoint {
        threads: 1,
        wall_time_s: base_time,
        speedup: 1.0,
        solved: base_out.is_some(),
        identical: true,
    }];
    for threads in [2usize, 4, 8] {
        let (time, out) = run(threads);
        let identical = match (&base_out, &out) {
            (Some(a), Some(b)) => {
                a.stats.solver_calls == b.stats.solver_calls
                    && a.stats.cex_rounds == b.stats.cex_rounds
                    && a.stats.cnf_vars == b.stats.cnf_vars
                    && a.stats.cnf_clauses == b.stats.cnf_clauses
                    && a.solutions.len() == b.solutions.len()
                    && a.solutions
                        .iter()
                        .zip(&b.solutions)
                        .all(|(x, y)| x.instr == y.instr && x.holes == y.holes)
            }
            (None, None) => true,
            _ => false,
        };
        points.push(ScalingPoint {
            threads,
            wall_time_s: time,
            speedup: if time > 0.0 { base_time / time } else { 0.0 },
            solved: out.is_some(),
            identical,
        });
    }
    points
}

/// Whether two runs produced the same observable output (the byte-
/// identical contract: hole assignments, work counters, certificates —
/// not wall-clock or replay provenance).
fn same_output(a: &SynthesisOutput, b: &SynthesisOutput) -> bool {
    a.stats.solver_calls == b.stats.solver_calls
        && a.stats.cex_rounds == b.stats.cex_rounds
        && a.stats.cnf_vars == b.stats.cnf_vars
        && a.stats.cnf_clauses == b.stats.cnf_clauses
        && a.solutions.len() == b.solutions.len()
        && a.solutions.iter().zip(&b.solutions).all(|(x, y)| x.instr == y.instr && x.holes == y.holes)
        && format!("{:?}", a.outcomes) == format!("{:?}", b.outcomes)
        && a.certificate.as_ref().map(ToString::to_string)
            == b.certificate.as_ref().map(ToString::to_string)
}

/// The kill-and-resume smoke, run in-process: journal a run, throw away
/// the journal's tail (simulating a crash mid-write), resume, and check
/// the resumed output is byte-identical to an uninterrupted run's.
struct DurabilitySmoke {
    resumed: bool,
    records_replayed: usize,
    identical: bool,
}

impl Report for DurabilitySmoke {
    fn report(&self) -> Section {
        Section::new()
            .with("resumed", self.resumed)
            .with("records_replayed", self.records_replayed)
            .with("identical", self.identical)
    }
}

fn measure_durability() -> DurabilitySmoke {
    let cs = owl_cores::accumulator::case_study();
    let reference = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run().ok();
    let path = std::env::temp_dir().join(format!("bench_owl_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journaled = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .journal_to(&path)
        .run()
        .ok();
    // Simulate the crash: keep only the first ~40% of the journal.
    let mut torn = false;
    if let Ok(bytes) = std::fs::read(&path) {
        let cut = bytes.len() * 2 / 5;
        torn = std::fs::write(&path, &bytes[..cut]).is_ok();
    }
    let resumed = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(&path)
        .parallelism(2)
        .run()
        .ok();
    let _ = std::fs::remove_file(&path);
    let identical = match (&reference, &journaled, &resumed) {
        (Some(a), Some(b), Some(c)) => same_output(a, b) && same_output(a, c),
        _ => false,
    };
    DurabilitySmoke {
        resumed: torn && resumed.is_some(),
        records_replayed: resumed.map_or(0, |o| o.stats.replayed),
        identical,
    }
}

/// `--durable <journal> <dump>`: one resumable synthesis of the reduced
/// RV32I configuration, for the CI kill-and-resume job. Resumes from
/// `<journal>` when it exists (a fresh run otherwise), then writes a
/// canonical dump of the observable output to `<dump>`. The dump
/// excludes wall-clock and replay provenance, so a killed-and-resumed
/// run must diff byte-identical against an uninterrupted one.
fn run_durable(journal: &str, dump: &str) -> ! {
    let cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(journal)
        .parallelism(4)
        .run()
        .unwrap_or_else(|e| panic!("durable synthesis failed: {e}"));
    let mut text = String::new();
    let _ = writeln!(text, "case {}", cs.name);
    text.push_str(&render_output(&out));
    std::fs::write(dump, &text).unwrap_or_else(|e| panic!("writing {dump}: {e}"));
    println!(
        "durable run complete: {} instructions, {} replayed, dump at {dump}",
        out.outcomes.len(),
        out.stats.replayed
    );
    std::process::exit(0);
}

/// Canonical text rendering of a synthesis output: hole assignments
/// (sorted), per-instruction outcomes, work counters, certificate.
/// Excludes wall-clock and replay provenance, so a resumed run renders
/// byte-identical to an uninterrupted one.
fn render_output(out: &SynthesisOutput) -> String {
    let mut text = String::new();
    for s in &out.solutions {
        let mut holes: Vec<_> = s.holes.iter().collect();
        holes.sort_by(|a, b| a.0.cmp(b.0));
        let rendered: Vec<String> = holes.iter().map(|(n, v)| format!("{n}={v}")).collect();
        let _ = writeln!(text, "solution {} {}", s.instr, rendered.join(" "));
    }
    for o in &out.outcomes {
        let _ = writeln!(text, "outcome {o:?}");
    }
    let _ = writeln!(
        text,
        "stats calls={} rounds={} reused={} esc={} cnf={}v/{}c",
        out.stats.solver_calls,
        out.stats.cex_rounds,
        out.stats.reused,
        out.stats.escalations,
        out.stats.cnf_vars,
        out.stats.cnf_clauses,
    );
    if let Some(cert) = &out.certificate {
        let _ = writeln!(text, "certificate {cert}");
    }
    text
}

/// The job batch for `--service`: four copies of the reduced RV32I
/// configuration, each running its session at parallelism 2.
fn service_jobs() -> Vec<JobSpec> {
    (0..4)
        .map(|i| {
            let cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
            JobSpec::new(format!("svc-{i}"), cs.sketch, cs.spec, cs.alpha).parallelism(2)
        })
        .collect()
}

/// `--service <journal-dir> <dump>`: a journaled four-job batch through
/// the synthesis service, for the CI service-chaos job. When
/// `<journal-dir>` holds incomplete journals from a killed run, the
/// whole batch is re-adopted via [`SynthesisService::recover`];
/// otherwise the jobs are submitted fresh. Either way the dump (one
/// section per job, sorted by name) must diff byte-identical against
/// an uninterrupted run's.
fn run_service(dir: &str, dump: &str) -> ! {
    let dir_path = std::path::PathBuf::from(dir);
    let config = ServiceConfig::default().workers(2).queue_capacity(8).journal_dir(&dir_path);
    let jobs = service_jobs();
    let crashed = scan_journals(&dir_path)
        .map(|entries| entries.iter().any(|e| !e.complete))
        .unwrap_or(false);
    let (service, handles) = if crashed {
        SynthesisService::recover(config, jobs)
    } else {
        let service = SynthesisService::start(config);
        let handles = jobs
            .into_iter()
            .map(|j| {
                let name = j.name.clone();
                service.submit(j).unwrap_or_else(|e| panic!("submitting {name}: {e}"))
            })
            .collect();
        (service, handles)
    };
    let mut sections: Vec<(String, String)> = handles
        .into_iter()
        .map(|h| {
            let name = h.name().to_string();
            let out = h.wait().unwrap_or_else(|e| panic!("job {name} failed: {e}"));
            (name.clone(), format!("job {name}\n{}", render_output(&out)))
        })
        .collect();
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    let text: String = sections.into_iter().map(|(_, s)| s).collect();
    std::fs::write(dump, &text).unwrap_or_else(|e| panic!("writing {dump}: {e}"));
    let metrics = service.shutdown(Shutdown::Drain);
    println!(
        "service batch complete: {} jobs, {} recovered, dump at {dump}",
        metrics.completed, metrics.recovered
    );
    std::process::exit(0);
}

/// `--cache <cache-dir> <dump>`: the four-job RV32I service batch
/// against a shared synthesis cache, for the CI warm-cache job. The
/// first invocation populates `<cache-dir>`; a second invocation against
/// the same directory adopts verified warm hits (reported as
/// `cache_hits=` on stdout) and must produce a byte-identical dump.
fn run_cache(dir: &str, dump: &str) -> ! {
    let config = ServiceConfig::default().workers(2).queue_capacity(8).cache_dir(dir);
    let service = SynthesisService::start(config);
    let handles: Vec<_> = service_jobs()
        .into_iter()
        .map(|j| {
            let name = j.name.clone();
            service.submit(j).unwrap_or_else(|e| panic!("submitting {name}: {e}"))
        })
        .collect();
    let mut sections: Vec<(String, String)> = handles
        .into_iter()
        .map(|h| {
            let name = h.name().to_string();
            let out = h.wait().unwrap_or_else(|e| panic!("job {name} failed: {e}"));
            (name.clone(), format!("job {name}\n{}", render_output(&out)))
        })
        .collect();
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    let text: String = sections.into_iter().map(|(_, s)| s).collect();
    std::fs::write(dump, &text).unwrap_or_else(|e| panic!("writing {dump}: {e}"));
    let metrics = service.shutdown(Shutdown::Drain);
    println!(
        "cache batch complete: {} jobs, cache_hits={} cache_misses={} verify_rejected={}, dump at {dump}",
        metrics.completed, metrics.cache_hits, metrics.cache_misses, metrics.cache_verify_rejected
    );
    std::process::exit(0);
}

/// `--trace <path>`: the four-job RV32I service batch with tracing
/// enabled, writing a Chrome trace-event file to `<path>`. The batch
/// runs against a throwaway shared cache so the trace shows cache
/// probes (and, for the later jobs, verified warm hits) alongside
/// service scheduling, session tasks, SMT queries, eqsat saturation,
/// and sampled SAT counters. Open the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
fn run_trace(path: &str) -> ! {
    // Plenty of headroom over the default ring capacity: the batch
    // emits one span per query phase and sampled counters per restart.
    let tracer = Tracer::with_capacity(1 << 20);
    let cache_dir = std::env::temp_dir().join(format!("bench_owl_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = ServiceConfig::default()
        .workers(2)
        .queue_capacity(8)
        .cache_dir(&cache_dir)
        .tracer(tracer.clone());
    let service = SynthesisService::start(config);
    let handles: Vec<_> = service_jobs()
        .into_iter()
        .map(|j| {
            let name = j.name.clone();
            service.submit(j).unwrap_or_else(|e| panic!("submitting {name}: {e}"))
        })
        .collect();
    for h in handles {
        let name = h.name().to_string();
        let _ = h.wait().unwrap_or_else(|e| panic!("job {name} failed: {e}"));
    }
    let metrics = service.shutdown(Shutdown::Drain);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let snapshot = tracer.snapshot();
    let layers: std::collections::BTreeSet<&str> =
        snapshot.spans().map(|s| s.layer).collect();
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}"));
    snapshot.write_chrome_trace(&mut file).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "wrote Chrome trace to {path}: {} spans across layers [{}], {} dropped; jobs completed={}",
        snapshot.spans().count(),
        layers.into_iter().collect::<Vec<_>>().join(", "),
        snapshot.dropped,
        metrics.completed,
    );
    std::process::exit(0);
}

/// Cold-vs-warm synthesis-cache measurements for the report.
struct CacheBench {
    cold_wall_s: f64,
    warm_wall_s: f64,
    hit_rate: f64,
    verify_rejected: u64,
    identical: bool,
}

impl Report for CacheBench {
    fn report(&self) -> Section {
        Section::new()
            .with("cold_wall_s", self.cold_wall_s)
            .with("warm_wall_s", self.warm_wall_s)
            .with("hit_rate", self.hit_rate)
            .with("verify_rejected", self.verify_rejected)
            .with("identical", self.identical)
    }
}

/// Runs the reduced RV32I configuration twice against one fresh cache
/// store: the first run populates it, the second must adopt verified
/// hits and reproduce the cold run's observable output byte for byte.
fn measure_cache() -> CacheBench {
    let cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
    let store = std::env::temp_dir().join(format!("bench_owl_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let run = || {
        let start = Instant::now();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .cache_path(&store)
            .parallelism(2)
            .run()
            .ok();
        (start.elapsed().as_secs_f64(), out)
    };
    let (cold_wall_s, cold) = run();
    let (warm_wall_s, warm) = run();
    let _ = std::fs::remove_file(&store);
    let identical = match (&cold, &warm) {
        (Some(a), Some(b)) => same_output(a, b),
        _ => false,
    };
    let (hit_rate, verify_rejected) = warm.as_ref().map_or((0.0, 0), |o| {
        let c = &o.stats.cache;
        let probes = c.hits + c.misses;
        let rate = if probes > 0 { c.hits as f64 / probes as f64 } else { 0.0 };
        (rate, c.verify_rejected)
    });
    CacheBench { cold_wall_s, warm_wall_s, hit_rate, verify_rejected, identical }
}

/// Incremental-vs-scratch CEGIS measurements for the report: the same
/// problem solved with persistent solver sessions on and off.
struct IncrementalBench {
    on_wall_s: f64,
    off_wall_s: f64,
    speedup: f64,
    clauses_retained: usize,
    blast_cache_hits: usize,
    incremental_rounds: usize,
    /// Whether the two runs produced byte-identical observable output
    /// (solutions, outcomes, work counters, certificate) — the
    /// incremental path's correctness contract, checked on real data.
    identical: bool,
}

impl Report for IncrementalBench {
    fn report(&self) -> Section {
        Section::new()
            .with("on_wall_s", self.on_wall_s)
            .with("off_wall_s", self.off_wall_s)
            .with("speedup", self.speedup)
            .with("clauses_retained", self.clauses_retained)
            .with("blast_cache_hits", self.blast_cache_hits)
            .with("incremental_rounds", self.incremental_rounds)
            .with("identical", self.identical)
    }
}

/// Runs the reduced RV32I configuration with incremental CEGIS on and
/// off. Certification stays on so the identity check covers the
/// rendered certificate, not just the hole assignments.
fn measure_incremental(budget: Duration) -> IncrementalBench {
    let cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
    let run = |incremental: bool| {
        let config =
            SynthesisConfig::builder().time_budget(budget).incremental(incremental).build();
        let start = Instant::now();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .config(config)
            .parallelism(2)
            .run()
            .ok();
        (start.elapsed().as_secs_f64(), out)
    };
    let (on_wall_s, on) = run(true);
    let (off_wall_s, off) = run(false);
    let identical = match (&on, &off) {
        (Some(a), Some(b)) => same_output(a, b),
        _ => false,
    };
    let (clauses_retained, blast_cache_hits, incremental_rounds) = on.as_ref().map_or(
        (0, 0, 0),
        |o| (o.stats.clauses_retained, o.stats.blast_cache_hits, o.stats.incremental_rounds),
    );
    IncrementalBench {
        on_wall_s,
        off_wall_s,
        speedup: if on_wall_s > 0.0 { off_wall_s / on_wall_s } else { 0.0 },
        clauses_retained,
        blast_cache_hits,
        incremental_rounds,
        identical,
    }
}

/// Service-layer measurements for the report.
struct ServiceBench {
    throughput_jobs_s: f64,
    p50_latency_s: f64,
    p99_latency_s: f64,
    shed: u64,
    recovered: u64,
}

impl Report for ServiceBench {
    fn report(&self) -> Section {
        Section::new()
            .with("throughput_jobs_s", self.throughput_jobs_s)
            .with("p50_latency_s", self.p50_latency_s)
            .with("p99_latency_s", self.p99_latency_s)
            .with("shed", self.shed)
            .with("recovered", self.recovered)
    }
}

/// Three service experiments: (1) batch throughput/latency on the
/// accumulator case; (2) a deterministic overload that forces one shed
/// and one rejection; (3) a kill-free recovery drill (abort a journaled
/// batch mid-run, then re-adopt it).
fn measure_service() -> ServiceBench {
    fn accumulator_job(name: &str) -> JobSpec {
        let cs = owl_cores::accumulator::case_study();
        JobSpec::new(name, cs.sketch, cs.spec, cs.alpha)
    }

    // (1) Throughput and latency percentiles over an 8-job batch.
    let service = SynthesisService::start(ServiceConfig::default().workers(2));
    let start = Instant::now();
    let handles: Vec<_> = (0..8)
        .map(|i| service.submit(accumulator_job(&format!("bench-{i}"))).expect("admitted"))
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .map(|h| {
            let _ = h.wait().expect("bench job failed");
            start.elapsed().as_secs_f64()
        })
        .collect();
    let total = start.elapsed().as_secs_f64();
    let _ = service.shutdown(Shutdown::Drain);
    latencies.sort_by(f64::total_cmp);
    let pick = |frac: f64| {
        let idx = ((latencies.len() as f64 - 1.0) * frac).round() as usize;
        latencies[idx]
    };
    let (p50, p99) = (pick(0.50), pick(0.99));
    let throughput = if total > 0.0 { 8.0 / total } else { 0.0 };

    // (2) Deterministic overload: one worker, one queue slot. A slow
    // job occupies the worker, a second fills the queue, a higher-
    // priority third sheds it, and a fourth is rejected.
    let slow = {
        let plan = (0..64).fold(FaultPlan::new(), |p, i| p.at(i, Fault::StallMillis(300)));
        let config = SynthesisConfig::builder().fault_plan(Arc::new(plan)).certify(false).build();
        accumulator_job("svc-slow").config(config)
    };
    let service = SynthesisService::start(ServiceConfig::default().workers(1).queue_capacity(1));
    let running = service.submit(slow).expect("slow job admitted");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = service.submit(accumulator_job("svc-victim")).expect("victim queued");
    let winner = service.submit(accumulator_job("svc-winner").priority(5)).expect("winner sheds");
    let _rejected = service.submit(accumulator_job("svc-reject")).expect_err("queue full");
    let _ = queued.wait().expect_err("victim was shed");
    let _ = winner.wait().expect("winner completes");
    let _ = running.wait();
    let shed = service.shutdown(Shutdown::Drain).shed;

    // (3) Recovery drill: abort a journaled slow batch mid-run, then
    // recover it from the journals.
    let dir = std::env::temp_dir().join(format!("bench_owl_svc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let slow_batch = || -> Vec<JobSpec> {
        (0..2)
            .map(|i| {
                let plan =
                    (1..64).fold(FaultPlan::new(), |p, c| p.at(c, Fault::StallMillis(1000)));
                let config =
                    SynthesisConfig::builder().fault_plan(Arc::new(plan)).certify(false).build();
                accumulator_job(&format!("svc-rec-{i}")).config(config)
            })
            .collect()
    };
    let config = ServiceConfig::default().workers(2).journal_dir(&dir);
    let service = SynthesisService::start(config.clone());
    let _handles: Vec<_> =
        slow_batch().into_iter().map(|j| service.submit(j).expect("admitted")).collect();
    std::thread::sleep(Duration::from_millis(150));
    let _ = service.shutdown(Shutdown::Abort);
    // Recovery respecifies the same jobs minus the stall plan (stalls
    // change wall-clock only, never the fingerprinted inputs).
    let jobs: Vec<JobSpec> = (0..2)
        .map(|i| {
            let config = SynthesisConfig::builder().certify(false).build();
            accumulator_job(&format!("svc-rec-{i}")).config(config)
        })
        .collect();
    let (service, handles) = SynthesisService::recover(config, jobs);
    for h in handles {
        let _ = h.wait().expect("recovered job failed");
    }
    let recovered = service.shutdown(Shutdown::Drain).recovered;
    let _ = std::fs::remove_dir_all(&dir);

    ServiceBench {
        throughput_jobs_s: throughput,
        p50_latency_s: p50,
        p99_latency_s: p99,
        shed,
        recovered,
    }
}

/// The apples-to-apples experiment: verification queries over a fixed
/// completed design are deterministic (one per instruction, independent
/// of any solver feedback), so running them with simplification on and
/// off compares the *same* CNFs. Returns `(on, off)`.
fn measure_verify(
    cs: &CaseStudy,
    bindings: &[DecodeBinding],
    budget: Duration,
) -> Option<(VerifyStats, VerifyStats)> {
    let mut mgr = TermManager::new();
    let config = SynthesisConfig::builder().time_budget(budget).certify(false).build();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .ok()?;
    let union = control_union_with(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions, bindings).ok()?;
    let completed = complete_design(&cs.sketch, &union);
    let run = |simplify: bool| {
        let sconfig = SolverConfig { simplify, ..SolverConfig::default() };
        let mut vmgr = TermManager::new();
        let opts = VerifyOpts::new().with_config(sconfig);
        verify_design(&mut vmgr, &completed, &cs.spec, &cs.alpha, opts).ok()
    };
    Some((run(true)?, run(false)?))
}

/// One verify-comparison entry of the report. The side sections keep
/// the report's historical key names (`terms_before_simplify`, ...)
/// rather than [`VerifyStats`]' own `report()` keys, so downstream
/// consumers of `BENCH_owl.json` see an unchanged schema.
fn verify_section(name: &str, on: &VerifyStats, off: &VerifyStats) -> Section {
    let side = |s: &VerifyStats| {
        Section::new()
            .with("wall_time_s", s.elapsed.as_secs_f64())
            .with("terms_before_simplify", s.terms_before)
            .with("terms_after_simplify", s.terms_after)
            .with("cnf_vars", s.cnf_vars)
            .with("cnf_clauses", s.cnf_clauses)
    };
    Section::new()
        .with("name", name)
        .with("instructions", on.instructions)
        .with("simplify_on", side(on))
        .with("simplify_off", side(off))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--durable") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(journal), Some(dump)) => run_durable(journal, dump),
            _ => {
                eprintln!("usage: bench_owl --durable <journal-path> <dump-path>");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--service") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(dir), Some(dump)) => run_service(dir, dump),
            _ => {
                eprintln!("usage: bench_owl --service <journal-dir> <dump-path>");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--cache") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(dir), Some(dump)) => run_cache(dir, dump),
            _ => {
                eprintln!("usage: bench_owl --cache <cache-dir> <dump-path>");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        match args.get(i + 1) {
            Some(path) => run_trace(path),
            None => {
                eprintln!("usage: bench_owl --trace <chrome-trace-path>");
                std::process::exit(2);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose");
    let timeout_secs: u64 = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find_map(|a| a.parse().ok())
        .unwrap_or(600);
    let budget = Duration::from_secs(timeout_secs);
    // Progress notes stream to stderr only under `--verbose`; the
    // deliverables (the JSON file and the final stdout line) always
    // emit.
    macro_rules! progress {
        ($($arg:tt)*) => {
            if verbose {
                eprintln!($($arg)*);
            }
        };
    }

    // Each entry: case study, decode bindings, run per-instruction?,
    // run monolithic?
    let sweep: Vec<(CaseStudy, Vec<DecodeBinding>, bool, bool)> = if quick {
        vec![
            // The reduced RV32I configuration: single-cycle, base ISA.
            (
                owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE),
                vec![],
                true,
                false,
            ),
            // A small design so the monolithic mode appears in the smoke
            // report without blowing the CI time budget.
            (owl_cores::alu_machine::case_study(), vec![], true, true),
        ]
    } else {
        use owl_cores::rv32i::Extensions;
        vec![
            (owl_cores::aes::case_study(), vec![], true, true),
            (owl_cores::rv32i::single_cycle(Extensions::BASE), vec![], true, true),
            (owl_cores::rv32i::single_cycle(Extensions::ZBKB), vec![], true, false),
            (owl_cores::rv32i::single_cycle(Extensions::ZBKC), vec![], true, false),
            (owl_cores::rv32i::two_stage(Extensions::BASE), vec![], true, false),
            (owl_cores::rv32i::two_stage(Extensions::ZBKB), vec![], true, false),
            (owl_cores::rv32i::two_stage(Extensions::ZBKC), vec![], true, false),
            (
                owl_cores::crypto_core::case_study(),
                owl_cores::crypto_core::decode_bindings(),
                true,
                false,
            ),
            (owl_cores::alu_machine::case_study(), vec![], true, true),
        ]
    };

    let mut runs = Vec::new();
    for (cs, _, per_instr, monolithic) in &sweep {
        let mut modes = Vec::new();
        if *per_instr {
            modes.push(SynthesisMode::PerInstruction);
        }
        if *monolithic {
            modes.push(SynthesisMode::Monolithic);
        }
        for mode in modes {
            for simplify in [true, false] {
                progress!(
                    "bench_owl: {} ({:?}, simplify={simplify}) ...",
                    cs.name, mode
                );
                let m = measure(cs, mode, simplify, budget, 1);
                progress!(
                    "bench_owl:   {:.2}s, cnf {} vars / {} clauses, terms {} -> {}",
                    m.wall_time_s, m.cnf_vars, m.cnf_clauses, m.terms_before_simplify, m.terms_after_simplify
                );
                runs.push(m);
            }
        }
    }

    // Thread-scaling curve for the parallel per-instruction scheduler,
    // on the RV32I single-cycle base configuration (the sweep's largest
    // always-on per-instruction case).
    let scaling_cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
    progress!("bench_owl: {} (thread scaling 1/2/4/8) ...", scaling_cs.name);
    let scaling = measure_scaling(&scaling_cs, budget);
    for p in &scaling {
        progress!(
            "bench_owl:   {} thread(s): {:.2}s, speedup {:.2}x, identical: {}",
            p.threads, p.wall_time_s, p.speedup, p.identical
        );
    }

    // Kill-and-resume durability smoke on the accumulator case study.
    progress!("bench_owl: durability (journal, tear, resume) ...");
    let durability = measure_durability();
    progress!(
        "bench_owl:   resumed: {}, replayed: {}, identical: {}",
        durability.resumed, durability.records_replayed, durability.identical
    );

    // Service-layer smoke: throughput/latency, forced shedding, and a
    // journaled abort-and-recover drill.
    progress!("bench_owl: service (throughput, overload, recovery) ...");
    let service = measure_service();
    progress!(
        "bench_owl:   {:.2} jobs/s, p50 {:.3}s, p99 {:.3}s, shed {}, recovered {}",
        service.throughput_jobs_s,
        service.p50_latency_s,
        service.p99_latency_s,
        service.shed,
        service.recovered
    );

    // Cold-vs-warm cache smoke: second run of the same problem against
    // the same store must hit and stay byte-identical.
    progress!("bench_owl: cache (cold run, warm run, verify-on-hit) ...");
    let cache = measure_cache();
    progress!(
        "bench_owl:   cold {:.2}s, warm {:.2}s, hit rate {:.2}, rejected {}, identical: {}",
        cache.cold_wall_s, cache.warm_wall_s, cache.hit_rate, cache.verify_rejected, cache.identical
    );

    // Incremental-vs-scratch CEGIS: persistent solver sessions must be
    // at least as fast and byte-identical in output.
    progress!("bench_owl: incremental (sessions on vs off) ...");
    let incremental = measure_incremental(budget);
    progress!(
        "bench_owl:   on {:.2}s, off {:.2}s, speedup {:.2}x, retained {}, blast hits {}, identical: {}",
        incremental.on_wall_s,
        incremental.off_wall_s,
        incremental.speedup,
        incremental.clauses_retained,
        incremental.blast_cache_hits,
        incremental.identical
    );

    // Deterministic verification comparison over the completed designs.
    let mut verifies: Vec<(String, VerifyStats, VerifyStats)> = Vec::new();
    for (cs, bindings, _, _) in &sweep {
        progress!("bench_owl: {} (verification, simplify on vs off) ...", cs.name);
        match measure_verify(cs, bindings, budget) {
            Some((on, off)) => {
                progress!(
                    "bench_owl:   cnf vars {} -> {}, clauses {} -> {}",
                    off.cnf_vars, on.cnf_vars, off.cnf_clauses, on.cnf_clauses
                );
                verifies.push((cs.name.clone(), on, off));
            }
            None => progress!("bench_owl:   skipped (synthesis or verification failed)"),
        }
    }

    // The whole report is one `Section` rendered by the shared
    // serializer — same code path every stats struct's `report()` uses.
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let report = Section::new()
        .with("quick", quick)
        .with("timeout_secs", timeout_secs)
        .with("runs", runs.iter().map(Report::report).collect::<Vec<_>>())
        .with("host_cpus", host_cpus)
        .with("thread_scaling_case", scaling_cs.name.as_str())
        .with("thread_scaling", scaling.iter().map(Report::report).collect::<Vec<_>>())
        .with("durability", durability.report())
        .with("service", service.report())
        .with("cache", cache.report())
        .with("incremental", incremental.report())
        .with(
            "verify",
            verifies.iter().map(|(name, on, off)| verify_section(name, on, off)).collect::<Vec<_>>(),
        );
    let json = to_json(&report);

    let path = "BENCH_owl.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} runs)", runs.len());
}
