//! Emits `BENCH_owl.json`: machine-readable synthesis measurements for
//! the eqsat-simplification evaluation.
//!
//! For each configuration (case study × decomposition mode × simplify
//! on/off) the report records wall-clock time, the number of
//! specification instructions, term-graph node counts before and after
//! equality-saturation simplification, and the CNF variable/clause
//! counts produced by bit-blasting — enough to reproduce the
//! "simplification shrinks the CNF" claim without re-running synthesis.
//!
//! Usage: `cargo run --release -p owl-bench --bin bench_owl [--quick] [timeout-secs]`
//!
//! `--quick` restricts the sweep to the reduced RV32I configuration
//! (single-cycle, base ISA) plus a small monolithic case, for CI smoke
//! runs. The default monolithic timeout is 600 seconds.

use owl_core::{
    complete_design, control_union_with, verify_design, DecodeBinding, SolverConfig,
    SynthesisConfig, SynthesisMode, SynthesisOutput, SynthesisSession, VerifyOpts, VerifyStats,
};
use owl_cores::CaseStudy;
use owl_smt::TermManager;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One measured synthesis run.
struct Measurement {
    name: String,
    mode: SynthesisMode,
    simplify: bool,
    wall_time_s: f64,
    solved: bool,
    instructions: usize,
    terms_before_simplify: usize,
    terms_after_simplify: usize,
    cnf_vars: usize,
    cnf_clauses: usize,
    solver_calls: usize,
    note: Option<String>,
}

fn measure(
    cs: &CaseStudy,
    mode: SynthesisMode,
    simplify: bool,
    budget: Duration,
    parallelism: usize,
) -> Measurement {
    let mut mgr = TermManager::new();
    // Certification off, as in the table binaries: this measures raw
    // synthesis plus (optionally) the eqsat pre-pass.
    let config = SynthesisConfig::builder()
        .mode(mode)
        .time_budget(budget)
        .certify(false)
        .simplify(simplify)
        .build();
    let start = Instant::now();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .parallelism(parallelism)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    let wall_time_s = start.elapsed().as_secs_f64();
    match result {
        Ok(out) => Measurement {
            name: cs.name.clone(),
            mode,
            simplify,
            wall_time_s,
            solved: true,
            instructions: cs.spec.instrs().len(),
            terms_before_simplify: out.stats.terms_before,
            terms_after_simplify: out.stats.terms_after,
            cnf_vars: out.stats.cnf_vars,
            cnf_clauses: out.stats.cnf_clauses,
            solver_calls: out.stats.solver_calls,
            note: None,
        },
        Err(e) => Measurement {
            name: cs.name.clone(),
            mode,
            simplify,
            wall_time_s,
            solved: false,
            instructions: cs.spec.instrs().len(),
            terms_before_simplify: 0,
            terms_after_simplify: 0,
            cnf_vars: 0,
            cnf_clauses: 0,
            solver_calls: 0,
            note: Some(e.to_string()),
        },
    }
}

/// One point of the thread-scaling curve: the same per-instruction
/// problem at a given worker count.
struct ScalingPoint {
    threads: usize,
    wall_time_s: f64,
    speedup: f64,
    solved: bool,
    /// Whether the run's observable output (hole assignments, solver
    /// call count, CNF sizes) matched the single-threaded reference —
    /// the scheduler's determinism contract, checked on real data.
    identical: bool,
}

/// Measures the per-instruction scheduler at 1/2/4/8 workers on one
/// case study and cross-checks that every run produced byte-identical
/// results. Speedups are relative to the 1-thread run *on this host*;
/// `host_cpus` in the report says how many cores were available.
fn measure_scaling(cs: &CaseStudy, budget: Duration) -> Vec<ScalingPoint> {
    let run = |threads: usize| {
        let config = SynthesisConfig::builder().time_budget(budget).certify(false).build();
        let mut mgr = TermManager::new();
        let start = Instant::now();
        let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .config(config)
            .parallelism(threads)
            .run_with(&mut mgr)
            .and_then(|out| out.require_complete());
        (start.elapsed().as_secs_f64(), result.ok())
    };
    let (base_time, base_out) = run(1);
    let mut points = vec![ScalingPoint {
        threads: 1,
        wall_time_s: base_time,
        speedup: 1.0,
        solved: base_out.is_some(),
        identical: true,
    }];
    for threads in [2usize, 4, 8] {
        let (time, out) = run(threads);
        let identical = match (&base_out, &out) {
            (Some(a), Some(b)) => {
                a.stats.solver_calls == b.stats.solver_calls
                    && a.stats.cex_rounds == b.stats.cex_rounds
                    && a.stats.cnf_vars == b.stats.cnf_vars
                    && a.stats.cnf_clauses == b.stats.cnf_clauses
                    && a.solutions.len() == b.solutions.len()
                    && a.solutions
                        .iter()
                        .zip(&b.solutions)
                        .all(|(x, y)| x.instr == y.instr && x.holes == y.holes)
            }
            (None, None) => true,
            _ => false,
        };
        points.push(ScalingPoint {
            threads,
            wall_time_s: time,
            speedup: if time > 0.0 { base_time / time } else { 0.0 },
            solved: out.is_some(),
            identical,
        });
    }
    points
}

/// Whether two runs produced the same observable output (the byte-
/// identical contract: hole assignments, work counters, certificates —
/// not wall-clock or replay provenance).
fn same_output(a: &SynthesisOutput, b: &SynthesisOutput) -> bool {
    a.stats.solver_calls == b.stats.solver_calls
        && a.stats.cex_rounds == b.stats.cex_rounds
        && a.stats.cnf_vars == b.stats.cnf_vars
        && a.stats.cnf_clauses == b.stats.cnf_clauses
        && a.solutions.len() == b.solutions.len()
        && a.solutions.iter().zip(&b.solutions).all(|(x, y)| x.instr == y.instr && x.holes == y.holes)
        && format!("{:?}", a.outcomes) == format!("{:?}", b.outcomes)
        && a.certificate.as_ref().map(ToString::to_string)
            == b.certificate.as_ref().map(ToString::to_string)
}

/// The kill-and-resume smoke, run in-process: journal a run, throw away
/// the journal's tail (simulating a crash mid-write), resume, and check
/// the resumed output is byte-identical to an uninterrupted run's.
struct DurabilitySmoke {
    resumed: bool,
    records_replayed: usize,
    identical: bool,
}

fn measure_durability() -> DurabilitySmoke {
    let cs = owl_cores::accumulator::case_study();
    let reference = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run().ok();
    let path = std::env::temp_dir().join(format!("bench_owl_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journaled = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .journal_to(&path)
        .run()
        .ok();
    // Simulate the crash: keep only the first ~40% of the journal.
    let mut torn = false;
    if let Ok(bytes) = std::fs::read(&path) {
        let cut = bytes.len() * 2 / 5;
        torn = std::fs::write(&path, &bytes[..cut]).is_ok();
    }
    let resumed = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(&path)
        .parallelism(2)
        .run()
        .ok();
    let _ = std::fs::remove_file(&path);
    let identical = match (&reference, &journaled, &resumed) {
        (Some(a), Some(b), Some(c)) => same_output(a, b) && same_output(a, c),
        _ => false,
    };
    DurabilitySmoke {
        resumed: torn && resumed.is_some(),
        records_replayed: resumed.map_or(0, |o| o.stats.replayed),
        identical,
    }
}

/// `--durable <journal> <dump>`: one resumable synthesis of the reduced
/// RV32I configuration, for the CI kill-and-resume job. Resumes from
/// `<journal>` when it exists (a fresh run otherwise), then writes a
/// canonical dump of the observable output to `<dump>`. The dump
/// excludes wall-clock and replay provenance, so a killed-and-resumed
/// run must diff byte-identical against an uninterrupted one.
fn run_durable(journal: &str, dump: &str) -> ! {
    let cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .resume(journal)
        .parallelism(4)
        .run()
        .unwrap_or_else(|e| panic!("durable synthesis failed: {e}"));
    let mut text = String::new();
    let _ = writeln!(text, "case {}", cs.name);
    for s in &out.solutions {
        let mut holes: Vec<_> = s.holes.iter().collect();
        holes.sort_by(|a, b| a.0.cmp(b.0));
        let rendered: Vec<String> = holes.iter().map(|(n, v)| format!("{n}={v}")).collect();
        let _ = writeln!(text, "solution {} {}", s.instr, rendered.join(" "));
    }
    for o in &out.outcomes {
        let _ = writeln!(text, "outcome {o:?}");
    }
    let _ = writeln!(
        text,
        "stats calls={} rounds={} reused={} esc={} cnf={}v/{}c",
        out.stats.solver_calls,
        out.stats.cex_rounds,
        out.stats.reused,
        out.stats.escalations,
        out.stats.cnf_vars,
        out.stats.cnf_clauses,
    );
    if let Some(cert) = &out.certificate {
        let _ = writeln!(text, "certificate {cert}");
    }
    std::fs::write(dump, &text).unwrap_or_else(|e| panic!("writing {dump}: {e}"));
    println!(
        "durable run complete: {} instructions, {} replayed, dump at {dump}",
        out.outcomes.len(),
        out.stats.replayed
    );
    std::process::exit(0);
}

/// Minimal JSON string escaping (the report contains no exotic text,
/// but error notes may quote arbitrary messages).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn emit(m: &Measurement, out: &mut String) {
    let mode = match m.mode {
        SynthesisMode::PerInstruction => "per_instruction",
        SynthesisMode::Monolithic => "monolithic",
    };
    let note = match &m.note {
        Some(n) => json_str(n),
        None => "null".to_string(),
    };
    let _ = write!(
        out,
        concat!(
            "    {{\n",
            "      \"name\": {},\n",
            "      \"mode\": \"{}\",\n",
            "      \"simplify\": {},\n",
            "      \"wall_time_s\": {:.6},\n",
            "      \"solved\": {},\n",
            "      \"instructions\": {},\n",
            "      \"terms_before_simplify\": {},\n",
            "      \"terms_after_simplify\": {},\n",
            "      \"cnf_vars\": {},\n",
            "      \"cnf_clauses\": {},\n",
            "      \"solver_calls\": {},\n",
            "      \"note\": {}\n",
            "    }}"
        ),
        json_str(&m.name),
        mode,
        m.simplify,
        m.wall_time_s,
        m.solved,
        m.instructions,
        m.terms_before_simplify,
        m.terms_after_simplify,
        m.cnf_vars,
        m.cnf_clauses,
        m.solver_calls,
        note,
    );
}

/// The apples-to-apples experiment: verification queries over a fixed
/// completed design are deterministic (one per instruction, independent
/// of any solver feedback), so running them with simplification on and
/// off compares the *same* CNFs. Returns `(on, off)`.
fn measure_verify(
    cs: &CaseStudy,
    bindings: &[DecodeBinding],
    budget: Duration,
) -> Option<(VerifyStats, VerifyStats)> {
    let mut mgr = TermManager::new();
    let config = SynthesisConfig::builder().time_budget(budget).certify(false).build();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .config(config)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .ok()?;
    let union = control_union_with(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions, bindings).ok()?;
    let completed = complete_design(&cs.sketch, &union);
    let run = |simplify: bool| {
        let sconfig = SolverConfig { simplify, ..SolverConfig::default() };
        let mut vmgr = TermManager::new();
        let opts = VerifyOpts::new().with_config(sconfig);
        verify_design(&mut vmgr, &completed, &cs.spec, &cs.alpha, opts).ok()
    };
    Some((run(true)?, run(false)?))
}

fn emit_verify(name: &str, on: &VerifyStats, off: &VerifyStats, out: &mut String) {
    let side = |s: &VerifyStats| {
        format!(
            concat!(
                "{{\"wall_time_s\": {:.6}, \"terms_before_simplify\": {}, ",
                "\"terms_after_simplify\": {}, \"cnf_vars\": {}, \"cnf_clauses\": {}}}"
            ),
            s.elapsed.as_secs_f64(),
            s.terms_before,
            s.terms_after,
            s.cnf_vars,
            s.cnf_clauses,
        )
    };
    let _ = write!(
        out,
        concat!(
            "    {{\n",
            "      \"name\": {},\n",
            "      \"instructions\": {},\n",
            "      \"simplify_on\": {},\n",
            "      \"simplify_off\": {}\n",
            "    }}"
        ),
        json_str(name),
        on.instructions,
        side(on),
        side(off),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--durable") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(journal), Some(dump)) => run_durable(journal, dump),
            _ => {
                eprintln!("usage: bench_owl --durable <journal-path> <dump-path>");
                std::process::exit(2);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let timeout_secs: u64 = args
        .iter()
        .filter(|a| *a != "--quick")
        .find_map(|a| a.parse().ok())
        .unwrap_or(600);
    let budget = Duration::from_secs(timeout_secs);

    // Each entry: case study, decode bindings, run per-instruction?,
    // run monolithic?
    let sweep: Vec<(CaseStudy, Vec<DecodeBinding>, bool, bool)> = if quick {
        vec![
            // The reduced RV32I configuration: single-cycle, base ISA.
            (
                owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE),
                vec![],
                true,
                false,
            ),
            // A small design so the monolithic mode appears in the smoke
            // report without blowing the CI time budget.
            (owl_cores::alu_machine::case_study(), vec![], true, true),
        ]
    } else {
        use owl_cores::rv32i::Extensions;
        vec![
            (owl_cores::aes::case_study(), vec![], true, true),
            (owl_cores::rv32i::single_cycle(Extensions::BASE), vec![], true, true),
            (owl_cores::rv32i::single_cycle(Extensions::ZBKB), vec![], true, false),
            (owl_cores::rv32i::single_cycle(Extensions::ZBKC), vec![], true, false),
            (owl_cores::rv32i::two_stage(Extensions::BASE), vec![], true, false),
            (owl_cores::rv32i::two_stage(Extensions::ZBKB), vec![], true, false),
            (owl_cores::rv32i::two_stage(Extensions::ZBKC), vec![], true, false),
            (
                owl_cores::crypto_core::case_study(),
                owl_cores::crypto_core::decode_bindings(),
                true,
                false,
            ),
            (owl_cores::alu_machine::case_study(), vec![], true, true),
        ]
    };

    let mut runs = Vec::new();
    for (cs, _, per_instr, monolithic) in &sweep {
        let mut modes = Vec::new();
        if *per_instr {
            modes.push(SynthesisMode::PerInstruction);
        }
        if *monolithic {
            modes.push(SynthesisMode::Monolithic);
        }
        for mode in modes {
            for simplify in [true, false] {
                eprintln!(
                    "bench_owl: {} ({:?}, simplify={simplify}) ...",
                    cs.name, mode
                );
                let m = measure(cs, mode, simplify, budget, 1);
                eprintln!(
                    "bench_owl:   {:.2}s, cnf {} vars / {} clauses, terms {} -> {}",
                    m.wall_time_s, m.cnf_vars, m.cnf_clauses, m.terms_before_simplify, m.terms_after_simplify
                );
                runs.push(m);
            }
        }
    }

    // Thread-scaling curve for the parallel per-instruction scheduler,
    // on the RV32I single-cycle base configuration (the sweep's largest
    // always-on per-instruction case).
    let scaling_cs = owl_cores::rv32i::single_cycle(owl_cores::rv32i::Extensions::BASE);
    eprintln!("bench_owl: {} (thread scaling 1/2/4/8) ...", scaling_cs.name);
    let scaling = measure_scaling(&scaling_cs, budget);
    for p in &scaling {
        eprintln!(
            "bench_owl:   {} thread(s): {:.2}s, speedup {:.2}x, identical: {}",
            p.threads, p.wall_time_s, p.speedup, p.identical
        );
    }

    // Kill-and-resume durability smoke on the accumulator case study.
    eprintln!("bench_owl: durability (journal, tear, resume) ...");
    let durability = measure_durability();
    eprintln!(
        "bench_owl:   resumed: {}, replayed: {}, identical: {}",
        durability.resumed, durability.records_replayed, durability.identical
    );

    // Deterministic verification comparison over the completed designs.
    let mut verifies: Vec<(String, VerifyStats, VerifyStats)> = Vec::new();
    for (cs, bindings, _, _) in &sweep {
        eprintln!("bench_owl: {} (verification, simplify on vs off) ...", cs.name);
        match measure_verify(cs, bindings, budget) {
            Some((on, off)) => {
                eprintln!(
                    "bench_owl:   cnf vars {} -> {}, clauses {} -> {}",
                    off.cnf_vars, on.cnf_vars, off.cnf_clauses, on.cnf_clauses
                );
                verifies.push((cs.name.clone(), on, off));
            }
            None => eprintln!("bench_owl:   skipped (synthesis or verification failed)"),
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"timeout_secs\": {timeout_secs},");
    json.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        emit(m, &mut json);
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"thread_scaling_case\": {},", json_str(&scaling_cs.name));
    json.push_str("  \"thread_scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        let _ = write!(
            json,
            concat!(
                "    {{\"threads\": {}, \"wall_time_s\": {:.6}, \"speedup\": {:.4}, ",
                "\"solved\": {}, \"identical\": {}}}"
            ),
            p.threads, p.wall_time_s, p.speedup, p.solved, p.identical,
        );
        json.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        concat!(
            "  \"durability\": {{\"resumed\": {}, \"records_replayed\": {}, ",
            "\"identical\": {}}},"
        ),
        durability.resumed, durability.records_replayed, durability.identical,
    );
    json.push_str("  \"verify\": [\n");
    for (i, (name, on, off)) in verifies.iter().enumerate() {
        emit_verify(name, on, off, &mut json);
        json.push_str(if i + 1 < verifies.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_owl.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} runs)", runs.len());
}
