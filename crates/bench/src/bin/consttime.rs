//! Regenerates the §5.2 constant-time experiment: SHA-256 compiled to the
//! bespoke CMOV ISA, simulated on the core with generated control logic
//! and on a handwritten reference, varying the input length.
//!
//! The paper's claims, reproduced here: (1) cycle count is independent of
//! the input length; (2) the generated-control core and the handwritten
//! core spend the same number of cycles and produce the same result.

use owl_bench::{assert_verified, run_synthesis};
use owl_core::SynthesisMode;
use owl_cores::{crypto_core, sha256};

fn main() {
    let cs = crypto_core::case_study();
    let run = run_synthesis(
        &cs,
        SynthesisMode::PerInstruction,
        &crypto_core::decode_bindings(),
        None,
    );
    let generated = run.completed.expect("crypto core synthesizes");
    assert_verified(&cs, &generated);
    let reference = crypto_core::reference();

    let program = sha256::sha256_program();
    let code = program.encode();
    println!(
        "Constant-time SHA-256 on the CMOV core ({} instructions, synthesized in {}s):\n",
        program.len(),
        run.time.map_or_else(|| "-".into(), |t| format!("{:.1}", t.as_secs_f64()))
    );
    println!(
        "{:>6} {:>18} {:>18} {:>10} {:>10}",
        "len", "cycles (generated)", "cycles (reference)", "digest ok", "match"
    );
    println!("{}", "-".repeat(68));

    let mut all_cycles = Vec::new();
    for len in (4..=32).step_by(4) {
        let msg: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        let data = sha256::message_data(&msg);
        let (gen_cycles, gen_sim) = crypto_core::run_program(&generated, &code, &data, 200_000);
        let (ref_cycles, ref_sim) = crypto_core::run_program(&reference, &code, &data, 200_000);
        let expect = sha256::sha256_ref(&msg);
        let ok = sha256::read_digest(&gen_sim) == expect && sha256::read_digest(&ref_sim) == expect;
        println!(
            "{:>6} {:>18} {:>18} {:>10} {:>10}",
            len,
            gen_cycles,
            ref_cycles,
            ok,
            gen_cycles == ref_cycles
        );
        all_cycles.push(gen_cycles);
        all_cycles.push(ref_cycles);
    }
    let constant = all_cycles.windows(2).all(|w| w[0] == w[1]);
    println!(
        "\nCycle count independent of input length and of control implementation: {constant}"
    );
}
