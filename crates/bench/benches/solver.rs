//! Microbenchmarks of the decision-procedure substrate: the CDCL SAT
//! solver on pigeonhole instances and the SMT stack on bitvector
//! equivalence queries.

use criterion::{criterion_group, criterion_main, Criterion};
use owl_sat::{Lit, Solver};
use owl_smt::{check, TermManager};
use std::hint::black_box;

fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let grid: Vec<Vec<_>> =
        (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
    for row in &grid {
        s.add_clause(row.iter().map(|&v| Lit::positive(v)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                s.add_clause([Lit::negative(grid[p1][h]), Lit::negative(grid[p2][h])]);
            }
        }
    }
    s
}

fn sat_benches(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole_7_6", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7, 6);
            black_box(s.solve())
        });
    });
    c.bench_function("sat/pigeonhole_8_8_sat", |b| {
        b.iter(|| {
            let mut s = pigeonhole(8, 8);
            black_box(s.solve())
        });
    });
}

fn smt_benches(c: &mut Criterion) {
    c.bench_function("smt/adder_equivalence_32", |b| {
        b.iter(|| {
            let mut m = TermManager::new();
            let x = m.fresh_var("x", 32);
            let y = m.fresh_var("y", 32);
            // (x + y) - y == x is valid; its negation is UNSAT.
            let s = m.add(x, y);
            let back = m.sub(s, y);
            let bad = m.neq(back, x);
            black_box(check(&mut m, &[bad], None).is_unsat())
        });
    });
    c.bench_function("smt/mul_vs_shift_16", |b| {
        b.iter(|| {
            let mut m = TermManager::new();
            let x = m.fresh_var("x", 16);
            let c8 = m.const_u64(16, 8);
            let c3 = m.const_u64(16, 3);
            let prod = m.mul(x, c8);
            let shifted = m.shl(x, c3);
            let bad = m.neq(prod, shifted);
            black_box(check(&mut m, &[bad], None).is_unsat())
        });
    });
    c.bench_function("smt/array_ackermann_8_reads", |b| {
        b.iter(|| {
            let mut m = TermManager::new();
            let arr = m.fresh_array("mem", 8, 16);
            let addrs: Vec<_> = (0..8).map(|i| m.fresh_var(format!("a{i}"), 8)).collect();
            let reads: Vec<_> = addrs.iter().map(|&a| m.array_select(arr, a)).collect();
            // All addresses equal forces all reads equal.
            let mut assertions = Vec::new();
            for w in addrs.windows(2) {
                assertions.push(m.eq(w[0], w[1]));
            }
            let diff = m.neq(reads[0], reads[7]);
            assertions.push(diff);
            black_box(check(&mut m, &assertions, None).is_unsat())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sat_benches, smt_benches
}
criterion_main!(benches);
