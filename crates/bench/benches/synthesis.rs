//! Criterion benches over the Table 1 synthesis workloads (per-instruction
//! mode). Absolute numbers land in `target/criterion`; the table binaries
//! print the paper-comparable rows.

use criterion::{criterion_group, criterion_main, Criterion};
use owl_core::SynthesisSession;
use owl_cores::rv32i::Extensions;
use owl_cores::CaseStudy;
use owl_smt::TermManager;
use std::hint::black_box;
use std::time::Duration;

fn bench_case(c: &mut Criterion, name: &str, make: impl Fn() -> CaseStudy) {
    let cs = make();
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut mgr = TermManager::new();
            let out = SynthesisSession::new(black_box(&cs.sketch), &cs.spec, &cs.alpha)
                .run_with(&mut mgr)
                .and_then(|out| out.require_complete())
                .expect("synthesis succeeds");
            black_box(out.solutions.len())
        });
    });
}

fn synthesis_benches(c: &mut Criterion) {
    bench_case(c, "synth/accumulator", owl_cores::accumulator::case_study);
    bench_case(c, "synth/alu_machine", owl_cores::alu_machine::case_study);
    bench_case(c, "synth/aes", owl_cores::aes::case_study);
    bench_case(c, "synth/rv32i_single_cycle", || {
        owl_cores::rv32i::single_cycle(Extensions::BASE)
    });
    bench_case(c, "synth/crypto_core", owl_cores::crypto_core::case_study);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(20))
        .warm_up_time(Duration::from_secs(2));
    targets = synthesis_benches
}
criterion_main!(benches);
