//! Scaling: synthesis time vs. specification size, per-instruction vs.
//! monolithic (the structural cause of Table 1's † rows). Small prefixes
//! only, so the bench completes in reasonable time; the `ablation` binary
//! sweeps further.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owl_core::{SynthesisConfig, SynthesisMode, SynthesisSession};
use owl_cores::rv32i::spec::spec_from_table;
use owl_cores::rv32i::{self, isa::instruction_table, Extensions};
use owl_smt::TermManager;
use std::hint::black_box;
use std::time::Duration;

fn scaling_benches(c: &mut Criterion) {
    let sketch = rv32i::datapath::single_cycle_sketch(Extensions::BASE);
    let alpha = rv32i::alpha_single_cycle();
    let table = instruction_table(Extensions::BASE);

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(15));
    for n in [2usize, 4, 8] {
        let spec = spec_from_table(format!("prefix_{n}"), &table[..n], false);
        for (mode, tag) in [
            (SynthesisMode::PerInstruction, "per_instruction"),
            (SynthesisMode::Monolithic, "monolithic"),
        ] {
            group.bench_with_input(BenchmarkId::new(tag, n), &n, |b, _| {
                b.iter(|| {
                    let mut mgr = TermManager::new();
                    let config = SynthesisConfig::builder().mode(mode).build();
                    let out = SynthesisSession::new(&sketch, &spec, &alpha)
                        .config(config)
                        .run_with(&mut mgr)
                        .and_then(|out| out.require_complete())
                        .expect("synthesis succeeds");
                    black_box(out.solutions.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, scaling_benches);
criterion_main!(benches);
