//! Simulation-throughput benches: cycles per second of the Oyster
//! interpreter and the gate-level simulator on case-study designs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use owl_bitvec::BitVec;
use owl_netlist::{lower, GateSim};
use owl_oyster::Interpreter;
use std::collections::HashMap;
use std::hint::black_box;

fn simulation_benches(c: &mut Criterion) {
    // Handwritten reference core: no synthesis needed for this bench.
    let core = owl_cores::crypto_core::reference();
    let program = owl_cores::sha256::sha256_program().encode();

    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(256));
    group.bench_function("crypto_core_interpreter_256_cycles", |b| {
        b.iter(|| {
            let mut sim = Interpreter::new(&core).expect("simulatable");
            for (i, word) in program.iter().take(64).enumerate() {
                sim.poke_mem("i_mem", i as u64, BitVec::from_u64(32, u64::from(*word)))
                    .expect("poke");
            }
            let inputs = HashMap::new();
            for _ in 0..256 {
                black_box(sim.step(&inputs).expect("step"));
            }
        });
    });

    // Gate-level simulation of the accumulator (small enough to lower
    // and simulate quickly).
    let acc = {
        use owl_core::{complete_design, control_union, SynthesisSession};
        use owl_smt::TermManager;
        let cs = owl_cores::accumulator::case_study();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .expect("synthesis succeeds");
        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions)
            .expect("union succeeds");
        complete_design(&cs.sketch, &union)
    };
    let netlist = lower(&acc).expect("lowers");
    group.bench_function("accumulator_gate_sim_256_cycles", |b| {
        b.iter(|| {
            let mut sim = GateSim::new(&netlist);
            let inputs: HashMap<String, BitVec> = [
                ("reset".to_string(), BitVec::from_u64(1, 0)),
                ("go".to_string(), BitVec::from_u64(1, 1)),
                ("stop".to_string(), BitVec::from_u64(1, 0)),
                ("val".to_string(), BitVec::from_u64(2, 3)),
            ]
            .into();
            for _ in 0..256 {
                black_box(sim.step(&inputs));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, simulation_benches);
criterion_main!(benches);
