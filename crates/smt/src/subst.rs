//! Partial evaluation: specializing a term under a concrete environment
//! while leaving unbound variables (synthesis holes) symbolic.
//!
//! This is the workhorse of the CEGIS synthesis step: a counterexample
//! from the verifier becomes an [`Env`], and substituting it into the
//! correctness formula yields a (much smaller) formula over the hole
//! variables alone. Base-array reads are replaced by lookup chains over
//! the environment's association list so the specialized formula contains
//! no uninterpreted arrays.

use crate::eval::Env;
use crate::manager::{BinOp, TermId, TermKind, TermManager, UnOp};
use std::collections::HashMap;

/// Rewrites `term`, replacing every variable bound in `env` with its
/// constant and every base-array read with a lookup over `env`'s contents
/// (defaulting per the array's [`crate::ArrayValue`], or zero if the array
/// is unbound). Unbound variables remain symbolic; all the manager's
/// rewrite rules apply, so fully-concrete subterms fold to constants.
#[must_use]
pub fn substitute(mgr: &mut TermManager, term: TermId, env: &Env) -> TermId {
    let mut memo: HashMap<TermId, TermId> = HashMap::new();
    subst_memo(mgr, term, env, &mut memo)
}

fn subst_memo(
    mgr: &mut TermManager,
    term: TermId,
    env: &Env,
    memo: &mut HashMap<TermId, TermId>,
) -> TermId {
    if let Some(&t) = memo.get(&term) {
        return t;
    }
    let kind = mgr.kind(term).clone();
    let out = match kind {
        TermKind::Const(_) => term,
        TermKind::Var(sym) => match env.var(sym) {
            Some(v) => mgr.bv_const(v.clone()),
            None => term,
        },
        TermKind::Unary(op, a) => {
            let a2 = subst_memo(mgr, a, env, memo);
            match op {
                UnOp::Not => mgr.not(a2),
                UnOp::Neg => mgr.neg(a2),
                UnOp::RedOr => mgr.red_or(a2),
            }
        }
        TermKind::Binary(op, a, b) => {
            let a2 = subst_memo(mgr, a, env, memo);
            let b2 = subst_memo(mgr, b, env, memo);
            apply_binary(mgr, op, a2, b2)
        }
        TermKind::Ite(c, t, e) => {
            let c2 = subst_memo(mgr, c, env, memo);
            let t2 = subst_memo(mgr, t, env, memo);
            let e2 = subst_memo(mgr, e, env, memo);
            mgr.ite(c2, t2, e2)
        }
        TermKind::Extract(a, high, low) => {
            let a2 = subst_memo(mgr, a, env, memo);
            mgr.extract(a2, high, low)
        }
        TermKind::Concat(hi, lo) => {
            let h2 = subst_memo(mgr, hi, env, memo);
            let l2 = subst_memo(mgr, lo, env, memo);
            mgr.concat(h2, l2)
        }
        TermKind::ZExt(a, w) => {
            let a2 = subst_memo(mgr, a, env, memo);
            mgr.zext(a2, w)
        }
        TermKind::SExt(a, w) => {
            let a2 = subst_memo(mgr, a, env, memo);
            mgr.sext(a2, w)
        }
        TermKind::ArraySelect(arr, addr) => {
            let addr2 = subst_memo(mgr, addr, env, memo);
            match env.array(arr) {
                // Encode the environment's association list as an ITE
                // chain: read(a) = ite(a == k_n, v_n, ... default).
                // Later entries shadow earlier ones, so fold oldest-first.
                Some(v) => {
                    let entries = v.entries().to_vec();
                    let mut acc = mgr.bv_const(v.default_value().clone());
                    for (k, d) in entries {
                        let kt = mgr.bv_const(k);
                        let dt = mgr.bv_const(d);
                        let hit = mgr.eq(addr2, kt);
                        acc = mgr.ite(hit, dt, acc);
                    }
                    acc
                }
                // Arrays the environment says nothing about stay symbolic.
                None => mgr.array_select(arr, addr2),
            }
        }
        TermKind::RomSelect(rom, addr) => {
            let addr2 = subst_memo(mgr, addr, env, memo);
            mgr.rom_select(rom, addr2)
        }
    };
    memo.insert(term, out);
    out
}

/// Rewrites `term`, replacing each variable whose [`crate::SymbolId`] is a
/// key of `map` with the mapped term (widths must match). Used by the
/// monolithic synthesis baseline to splice hole expressions into a
/// formula.
///
/// # Panics
///
/// Panics if a replacement term's width differs from the variable's.
#[must_use]
pub fn substitute_terms(
    mgr: &mut TermManager,
    term: TermId,
    map: &HashMap<crate::SymbolId, TermId>,
) -> TermId {
    let mut memo: HashMap<TermId, TermId> = HashMap::new();
    subst_terms_memo(mgr, term, map, &mut memo)
}

fn subst_terms_memo(
    mgr: &mut TermManager,
    term: TermId,
    map: &HashMap<crate::SymbolId, TermId>,
    memo: &mut HashMap<TermId, TermId>,
) -> TermId {
    if let Some(&t) = memo.get(&term) {
        return t;
    }
    let kind = mgr.kind(term).clone();
    let out = match kind {
        TermKind::Const(_) => term,
        TermKind::Var(sym) => match map.get(&sym) {
            Some(&t) => {
                assert_eq!(
                    mgr.width(t),
                    mgr.symbol_width(sym),
                    "substitution width mismatch for {}",
                    mgr.symbol_name(sym)
                );
                t
            }
            None => term,
        },
        TermKind::Unary(op, a) => {
            let a2 = subst_terms_memo(mgr, a, map, memo);
            match op {
                UnOp::Not => mgr.not(a2),
                UnOp::Neg => mgr.neg(a2),
                UnOp::RedOr => mgr.red_or(a2),
            }
        }
        TermKind::Binary(op, a, b) => {
            let a2 = subst_terms_memo(mgr, a, map, memo);
            let b2 = subst_terms_memo(mgr, b, map, memo);
            apply_binary(mgr, op, a2, b2)
        }
        TermKind::Ite(c, t, e) => {
            let c2 = subst_terms_memo(mgr, c, map, memo);
            let t2 = subst_terms_memo(mgr, t, map, memo);
            let e2 = subst_terms_memo(mgr, e, map, memo);
            mgr.ite(c2, t2, e2)
        }
        TermKind::Extract(a, high, low) => {
            let a2 = subst_terms_memo(mgr, a, map, memo);
            mgr.extract(a2, high, low)
        }
        TermKind::Concat(hi, lo) => {
            let h2 = subst_terms_memo(mgr, hi, map, memo);
            let l2 = subst_terms_memo(mgr, lo, map, memo);
            mgr.concat(h2, l2)
        }
        TermKind::ZExt(a, w) => {
            let a2 = subst_terms_memo(mgr, a, map, memo);
            mgr.zext(a2, w)
        }
        TermKind::SExt(a, w) => {
            let a2 = subst_terms_memo(mgr, a, map, memo);
            mgr.sext(a2, w)
        }
        TermKind::ArraySelect(arr, addr) => {
            let addr2 = subst_terms_memo(mgr, addr, map, memo);
            mgr.array_select(arr, addr2)
        }
        TermKind::RomSelect(rom, addr) => {
            let addr2 = subst_terms_memo(mgr, addr, map, memo);
            mgr.rom_select(rom, addr2)
        }
    };
    memo.insert(term, out);
    out
}

pub(crate) fn apply_binary(mgr: &mut TermManager, op: BinOp, a: TermId, b: TermId) -> TermId {
    match op {
        BinOp::And => mgr.and(a, b),
        BinOp::Or => mgr.or(a, b),
        BinOp::Xor => mgr.xor(a, b),
        BinOp::Add => mgr.add(a, b),
        BinOp::Sub => mgr.sub(a, b),
        BinOp::Mul => mgr.mul(a, b),
        BinOp::Shl => mgr.shl(a, b),
        BinOp::Lshr => mgr.lshr(a, b),
        BinOp::Ashr => mgr.ashr(a, b),
        BinOp::Eq => mgr.eq(a, b),
        BinOp::Ult => mgr.ult(a, b),
        BinOp::Ule => mgr.ule(a, b),
        BinOp::Slt => mgr.slt(a, b),
        BinOp::Sle => mgr.sle(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ArrayValue;
    use owl_bitvec::BitVec;

    #[test]
    fn substitution_folds_bound_parts() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let hole = m.fresh_var("hole", 8);
        let TermKind::Var(sx) = *m.kind(x) else { panic!() };
        let sum = m.add(x, hole);
        let mut env = Env::new();
        env.set_var(sx, BitVec::from_u64(8, 5));
        let out = substitute(&mut m, sum, &env);
        // Result is 5 + hole: still symbolic, but x is gone.
        assert!(m.as_const(out).is_none());
        let five = m.const_u64(8, 5);
        assert_eq!(out, m.add(five, hole));
    }

    #[test]
    fn substitution_fully_concrete() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let TermKind::Var(sx) = *m.kind(x) else { panic!() };
        let two = m.const_u64(8, 2);
        let prod = m.mul(x, two);
        let mut env = Env::new();
        env.set_var(sx, BitVec::from_u64(8, 21));
        let out = substitute(&mut m, prod, &env);
        assert_eq!(m.as_const(out).unwrap().to_u64(), Some(42));
    }

    #[test]
    fn array_select_becomes_lookup_chain() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let hole = m.fresh_var("hole", 4);
        let rd = m.array_select(arr, hole);
        let mut env = Env::new();
        let mut mem = ArrayValue::filled(BitVec::from_u64(8, 0));
        mem.write(BitVec::from_u64(4, 2), BitVec::from_u64(8, 0x11));
        mem.write(BitVec::from_u64(4, 5), BitVec::from_u64(8, 0x22));
        env.set_array(arr, mem);
        let out = substitute(&mut m, rd, &env);
        // No array selects remain.
        assert!(!contains_array_select(&m, out));
        // Check semantics by evaluating at specific hole values.
        let TermKind::Var(sh) = *m.kind(hole) else { panic!() };
        for (a, want) in [(2u64, 0x11u64), (5, 0x22), (9, 0)] {
            let mut e2 = Env::new();
            e2.set_var(sh, BitVec::from_u64(4, a));
            assert_eq!(e2.eval(&m, out), BitVec::from_u64(8, want));
        }
    }

    #[test]
    fn concrete_array_select_folds_to_const() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let a2 = m.const_u64(4, 2);
        let rd = m.array_select(arr, a2);
        let mut env = Env::new();
        let mut mem = ArrayValue::filled(BitVec::from_u64(8, 0xAA));
        mem.write(BitVec::from_u64(4, 2), BitVec::from_u64(8, 0x33));
        env.set_array(arr, mem);
        let out = substitute(&mut m, rd, &env);
        assert_eq!(m.as_const(out).unwrap().to_u64(), Some(0x33));
    }

    fn contains_array_select(m: &TermManager, t: TermId) -> bool {
        let mut stack = vec![t];
        let mut seen = std::collections::HashSet::new();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            match *m.kind(t) {
                TermKind::ArraySelect(..) => return true,
                TermKind::Unary(_, a) | TermKind::Extract(a, _, _) => stack.push(a),
                TermKind::ZExt(a, _) | TermKind::SExt(a, _) => stack.push(a),
                TermKind::Binary(_, a, b) | TermKind::Concat(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                TermKind::Ite(c, x, y) => {
                    stack.push(c);
                    stack.push(x);
                    stack.push(y);
                }
                TermKind::RomSelect(_, a) => stack.push(a),
                TermKind::Const(_) | TermKind::Var(_) => {}
            }
        }
        false
    }
}
