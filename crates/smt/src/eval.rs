//! Concrete evaluation of terms under an environment.

use crate::manager::{BinOp, TermId, TermKind, TermManager, UnOp};
use crate::{ArrayId, SymbolId};
use owl_bitvec::BitVec;
use std::collections::HashMap;

/// Concrete contents of a base array: an association list plus a default
/// for addresses that never appear, mirroring the paper's memory model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayValue {
    entries: Vec<(BitVec, BitVec)>,
    default: BitVec,
}

impl ArrayValue {
    /// An array whose every address reads `default`.
    #[must_use]
    pub fn filled(default: BitVec) -> Self {
        ArrayValue { entries: Vec::new(), default }
    }

    /// An array built from `(address, data)` pairs with a default.
    /// Later pairs shadow earlier ones with the same address.
    #[must_use]
    pub fn from_entries(entries: Vec<(BitVec, BitVec)>, default: BitVec) -> Self {
        ArrayValue { entries, default }
    }

    /// Reads the value at `addr`.
    #[must_use]
    pub fn read(&self, addr: &BitVec) -> BitVec {
        self.entries
            .iter()
            .rev()
            .find(|(a, _)| a == addr)
            .map_or_else(|| self.default.clone(), |(_, d)| d.clone())
    }

    /// Writes `data` at `addr` (shadowing earlier entries).
    pub fn write(&mut self, addr: BitVec, data: BitVec) {
        self.entries.push((addr, data));
    }

    /// The `(address, data)` pairs, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[(BitVec, BitVec)] {
        &self.entries
    }

    /// The default value for unmapped addresses.
    #[must_use]
    pub fn default_value(&self) -> &BitVec {
        &self.default
    }
}

/// A concrete assignment to symbolic variables and base arrays.
///
/// Variables absent from the environment evaluate to zero, matching the
/// model-completion convention of the solver facade.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<SymbolId, BitVec>,
    arrays: HashMap<ArrayId, ArrayValue>,
}

impl Env {
    /// An empty environment (everything reads as zero).
    #[must_use]
    pub fn new() -> Self {
        Env::default()
    }

    /// Sets the value of a variable.
    pub fn set_var(&mut self, sym: SymbolId, value: BitVec) {
        self.vars.insert(sym, value);
    }

    /// The value of a variable, if set.
    #[must_use]
    pub fn var(&self, sym: SymbolId) -> Option<&BitVec> {
        self.vars.get(&sym)
    }

    /// True if the variable has a binding.
    #[must_use]
    pub fn has_var(&self, sym: SymbolId) -> bool {
        self.vars.contains_key(&sym)
    }

    /// Sets the contents of a base array.
    pub fn set_array(&mut self, array: ArrayId, value: ArrayValue) {
        self.arrays.insert(array, value);
    }

    /// The contents of a base array, if set.
    #[must_use]
    pub fn array(&self, array: ArrayId) -> Option<&ArrayValue> {
        self.arrays.get(&array)
    }

    /// Iterates over all variable bindings.
    pub fn vars(&self) -> impl Iterator<Item = (SymbolId, &BitVec)> + '_ {
        self.vars.iter().map(|(&s, v)| (s, v))
    }

    /// Iterates over all array bindings.
    pub fn arrays(&self) -> impl Iterator<Item = (ArrayId, &ArrayValue)> + '_ {
        self.arrays.iter().map(|(&a, v)| (a, v))
    }

    /// Evaluates `term` to a concrete value under this environment.
    ///
    /// Unbound variables read as zero; unbound arrays read as all-zero.
    #[must_use]
    pub fn eval(&self, mgr: &TermManager, term: TermId) -> BitVec {
        let mut memo: HashMap<TermId, BitVec> = HashMap::new();
        self.eval_memo(mgr, term, &mut memo)
    }

    fn eval_memo(
        &self,
        mgr: &TermManager,
        term: TermId,
        memo: &mut HashMap<TermId, BitVec>,
    ) -> BitVec {
        if let Some(v) = memo.get(&term) {
            return v.clone();
        }
        let value = match *mgr.kind(term) {
            TermKind::Const(ref c) => c.clone(),
            TermKind::Var(sym) => self
                .vars
                .get(&sym)
                .cloned()
                .unwrap_or_else(|| BitVec::zero(mgr.symbol_width(sym))),
            TermKind::Unary(op, a) => {
                let av = self.eval_memo(mgr, a, memo);
                match op {
                    UnOp::Not => av.not(),
                    UnOp::Neg => av.neg(),
                    UnOp::RedOr => BitVec::from_bool(av.is_true()),
                }
            }
            TermKind::Binary(op, a, b) => {
                let x = self.eval_memo(mgr, a, memo);
                let y = self.eval_memo(mgr, b, memo);
                match op {
                    BinOp::And => x.and(&y),
                    BinOp::Or => x.or(&y),
                    BinOp::Xor => x.xor(&y),
                    BinOp::Add => x.add(&y),
                    BinOp::Sub => x.sub(&y),
                    BinOp::Mul => x.mul(&y),
                    BinOp::Shl => x.shl(&y),
                    BinOp::Lshr => x.lshr(&y),
                    BinOp::Ashr => x.ashr(&y),
                    BinOp::Eq => BitVec::from_bool(x == y),
                    BinOp::Ult => BitVec::from_bool(x.ult(&y)),
                    BinOp::Ule => BitVec::from_bool(x.ule(&y)),
                    BinOp::Slt => BitVec::from_bool(x.slt(&y)),
                    BinOp::Sle => BitVec::from_bool(x.sle(&y)),
                }
            }
            TermKind::Ite(c, t, e) => {
                if self.eval_memo(mgr, c, memo).is_true() {
                    self.eval_memo(mgr, t, memo)
                } else {
                    self.eval_memo(mgr, e, memo)
                }
            }
            TermKind::Extract(a, high, low) => self.eval_memo(mgr, a, memo).extract(high, low),
            TermKind::Concat(hi, lo) => {
                let h = self.eval_memo(mgr, hi, memo);
                let l = self.eval_memo(mgr, lo, memo);
                h.concat(&l)
            }
            TermKind::ZExt(a, w) => self.eval_memo(mgr, a, memo).zext(w),
            TermKind::SExt(a, w) => self.eval_memo(mgr, a, memo).sext(w),
            TermKind::ArraySelect(arr, addr) => {
                let a = self.eval_memo(mgr, addr, memo);
                let (_, dw) = mgr.array_widths(arr);
                self.arrays
                    .get(&arr)
                    .map_or_else(|| BitVec::zero(dw), |v| v.read(&a))
            }
            TermKind::RomSelect(rom, addr) => {
                let a = self.eval_memo(mgr, addr, memo);
                let (_, dw) = mgr.rom_widths(rom);
                let idx = a.to_u64().expect("ROM address fits in u64") as usize;
                mgr.rom_data(rom).get(idx).cloned().unwrap_or_else(|| BitVec::zero(dw))
            }
        };
        memo.insert(term, value.clone());
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TermManager;

    #[test]
    fn eval_arithmetic() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let TermKind::Var(sx) = *m.kind(x) else { panic!() };
        let TermKind::Var(sy) = *m.kind(y) else { panic!() };
        let mut env = Env::new();
        env.set_var(sx, BitVec::from_u64(8, 200));
        env.set_var(sy, BitVec::from_u64(8, 100));
        assert_eq!(env.eval(&m, sum), BitVec::from_u64(8, 44));
    }

    #[test]
    fn eval_unbound_var_is_zero() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let env = Env::new();
        assert_eq!(env.eval(&m, x), BitVec::zero(8));
    }

    #[test]
    fn eval_ite_and_predicates() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let TermKind::Var(sx) = *m.kind(x) else { panic!() };
        let five = m.const_u64(8, 5);
        let ten = m.const_u64(8, 10);
        let twenty = m.const_u64(8, 20);
        let c = m.ult(x, five);
        let sel = m.ite(c, ten, twenty);
        let mut env = Env::new();
        env.set_var(sx, BitVec::from_u64(8, 3));
        assert_eq!(env.eval(&m, sel), BitVec::from_u64(8, 10));
        env.set_var(sx, BitVec::from_u64(8, 9));
        assert_eq!(env.eval(&m, sel), BitVec::from_u64(8, 20));
    }

    #[test]
    fn eval_array_reads() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let addr = m.fresh_var("a", 4);
        let TermKind::Var(sa) = *m.kind(addr) else { panic!() };
        let rd = m.array_select(arr, addr);
        let mut env = Env::new();
        let mut mem = ArrayValue::filled(BitVec::from_u64(8, 0xEE));
        mem.write(BitVec::from_u64(4, 3), BitVec::from_u64(8, 0x42));
        env.set_array(arr, mem);
        env.set_var(sa, BitVec::from_u64(4, 3));
        assert_eq!(env.eval(&m, rd), BitVec::from_u64(8, 0x42));
        env.set_var(sa, BitVec::from_u64(4, 7));
        assert_eq!(env.eval(&m, rd), BitVec::from_u64(8, 0xEE));
    }

    #[test]
    fn array_value_later_writes_shadow() {
        let mut v = ArrayValue::filled(BitVec::zero(8));
        v.write(BitVec::from_u64(4, 1), BitVec::from_u64(8, 10));
        v.write(BitVec::from_u64(4, 1), BitVec::from_u64(8, 20));
        assert_eq!(v.read(&BitVec::from_u64(4, 1)), BitVec::from_u64(8, 20));
    }

    #[test]
    fn eval_rom() {
        let mut m = TermManager::new();
        let r = m.rom("t", 2, 8, vec![BitVec::from_u64(8, 7), BitVec::from_u64(8, 9)]);
        let a = m.fresh_var("a", 2);
        let TermKind::Var(sa) = *m.kind(a) else { panic!() };
        let rd = m.rom_select(r, a);
        let mut env = Env::new();
        env.set_var(sa, BitVec::from_u64(2, 1));
        assert_eq!(env.eval(&m, rd), BitVec::from_u64(8, 9));
        env.set_var(sa, BitVec::from_u64(2, 3));
        assert_eq!(env.eval(&m, rd), BitVec::zero(8));
    }
}
