//! The solver facade: blast assertions, add Ackermann constraints, solve,
//! and package the model.

use crate::blast::Blaster;
use crate::eval::{ArrayValue, Env};
use crate::manager::{TermId, TermManager};
use owl_bitvec::BitVec;
use owl_sat::{Budget, ProofChecker, SolveResult, StopReason};

/// Result of an SMT [`check`] call.
#[derive(Debug)]
pub enum SmtResult {
    /// The conjunction of assertions is satisfiable.
    Sat(Model),
    /// The conjunction of assertions is unsatisfiable.
    Unsat,
    /// The budget was exhausted (or the call was cancelled or
    /// fault-injected) before an answer was found.
    Unknown(StopReason),
}

impl SmtResult {
    /// True for [`SmtResult::Sat`].
    #[must_use]
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True for [`SmtResult::Unsat`].
    #[must_use]
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// True for [`SmtResult::Unknown`].
    #[must_use]
    pub fn is_unknown(&self) -> bool {
        matches!(self, SmtResult::Unknown(_))
    }
}

/// A satisfying assignment: concrete values for the variables and base
/// arrays that appeared in the checked assertions.
///
/// A model is also an evaluation [`Env`]; variables that never appeared
/// in the query read as zero, and array addresses that were never
/// accessed read as the array default (zero).
#[derive(Debug, Clone)]
pub struct Model {
    env: Env,
}

impl Model {
    /// The model as an evaluation environment.
    #[must_use]
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Consumes the model, returning its environment.
    #[must_use]
    pub fn into_env(self) -> Env {
        self.env
    }

    /// Evaluates a term under the model.
    #[must_use]
    pub fn eval(&self, mgr: &TermManager, term: TermId) -> BitVec {
        self.env.eval(mgr, term)
    }
}

/// How a [`check_certified`] answer was (or was not) independently
/// validated.
///
/// The validators are structurally independent of the code paths they
/// certify: SAT models are re-evaluated both against the recorded CNF
/// (by [`ProofChecker::check_model`]) and against the *original term
/// graph* (by [`Env::eval`], which never touches the bit-blaster);
/// UNSAT answers are re-derived by replaying the solver's DRUP trail
/// through the independent proof checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryCert {
    /// The query folded to a constant before reaching the solver; the
    /// term evaluator confirmed the folded value.
    Trivial,
    /// A SAT model satisfied every recorded input clause and every
    /// original (pre-blast) assertion term.
    SatVerified,
    /// An UNSAT answer's proof trail replayed successfully; `steps` is
    /// the number of learned clauses consumed before refutation closed.
    UnsatVerified {
        /// Learned-clause steps replayed by the checker.
        steps: usize,
    },
    /// The query answered `Unknown`: no claim was made, nothing to
    /// certify.
    Unchecked,
    /// Certification failed — the answer cannot be trusted.
    Failed(String),
}

impl QueryCert {
    /// True for [`QueryCert::Failed`].
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, QueryCert::Failed(_))
    }
}

/// Checks the conjunction of 1-bit `assertions` for satisfiability.
///
/// `budget` governs the SAT search. Any of `None` (unlimited),
/// `Some(conflicts)` (a bare conflict budget, the historical interface)
/// or a full [`Budget`] — with a deadline, work limits, a shared
/// [`CancelFlag`](owl_sat::CancelFlag) and an optional fault plan — is
/// accepted. A spent budget is reported as [`SmtResult::Unknown`] with
/// the [`StopReason`], checked once on entry and then cooperatively
/// inside the CDCL loop.
///
/// Constant-true assertions are skipped and a constant-false assertion
/// short-circuits to `Unsat` without invoking the SAT solver — the hot
/// path when the CEGIS verifier's query folds away structurally.
///
/// # Panics
///
/// Panics if any assertion is wider than one bit.
#[must_use]
pub fn check(
    mgr: &TermManager,
    assertions: &[TermId],
    budget: impl Into<Budget>,
) -> SmtResult {
    check_impl(mgr, assertions, &budget.into(), false).0
}

/// Like [`check`], but every definite answer is independently
/// certified before it is returned.
///
/// On `Sat`, the model is checked twice: once against the recorded CNF
/// clauses and once by evaluating every original assertion term under
/// the lifted bitvector assignment, catching bit-blaster bugs. On
/// `Unsat`, the solver's DRUP-style proof log is replayed by the
/// independent [`ProofChecker`]. The answer itself is returned
/// unchanged either way; a [`QueryCert::Failed`] verdict tells the
/// caller the answer cannot be trusted.
#[must_use]
pub fn check_certified(
    mgr: &TermManager,
    assertions: &[TermId],
    budget: impl Into<Budget>,
) -> (SmtResult, QueryCert) {
    check_impl(mgr, assertions, &budget.into(), true)
}

fn check_impl(
    mgr: &TermManager,
    assertions: &[TermId],
    budget: &Budget,
    certify: bool,
) -> (SmtResult, QueryCert) {
    if let Some(reason) = budget.checkpoint() {
        return (SmtResult::Unknown(reason), QueryCert::Unchecked);
    }
    // Constant short-circuits first.
    let mut pending = Vec::with_capacity(assertions.len());
    for &a in assertions {
        assert_eq!(mgr.width(a), 1, "assertions must be 1-bit terms");
        match mgr.as_const(a) {
            Some(c) if c.is_true() => {}
            Some(_) => {
                // Re-derive the fold through the term evaluator.
                let cert = if certify && Env::new().eval(mgr, a).is_true() {
                    QueryCert::Failed("constant fold disagrees with evaluator".into())
                } else {
                    QueryCert::Trivial
                };
                return (SmtResult::Unsat, cert);
            }
            None => pending.push(a),
        }
    }
    if pending.is_empty() {
        return (SmtResult::Sat(Model { env: Env::new() }), QueryCert::Trivial);
    }

    let mut blaster = Blaster::with_certification(mgr, certify);
    for &a in &pending {
        blaster.assert_true(a);
    }
    blaster.finalize_arrays();
    match blaster.solver.solve_budgeted(budget) {
        SolveResult::Unsat => {
            let cert = if certify {
                match blaster.solver.certify_unsat() {
                    Ok(steps) => QueryCert::UnsatVerified { steps },
                    Err(e) => QueryCert::Failed(format!("UNSAT proof rejected: {e}")),
                }
            } else {
                QueryCert::Unchecked
            };
            (SmtResult::Unsat, cert)
        }
        SolveResult::Unknown => (
            SmtResult::Unknown(
                blaster.solver.stop_reason().unwrap_or(StopReason::ConflictLimit),
            ),
            QueryCert::Unchecked,
        ),
        SolveResult::Sat => {
            let mut env = Env::new();
            for (&sym, bits) in &blaster.var_bits {
                env.set_var(sym, blaster.read_bits(bits));
            }
            for (&arr, reads) in &blaster.selects {
                let (_, dw) = mgr.array_widths(arr);
                let mut value = ArrayValue::filled(BitVec::zero(dw));
                for (addr_bits, data_bits) in reads {
                    value.write(blaster.read_bits(addr_bits), blaster.read_bits(data_bits));
                }
                env.set_array(arr, value);
            }
            let cert = if certify {
                certify_sat_model(mgr, &pending, &blaster, &env)
            } else {
                QueryCert::Unchecked
            };
            (SmtResult::Sat(Model { env }), cert)
        }
    }
}

/// Certifies a SAT answer at both levels: the recorded CNF clauses under
/// the SAT assignment, and the original assertion terms under the lifted
/// bitvector model.
fn certify_sat_model(
    mgr: &TermManager,
    pending: &[TermId],
    blaster: &Blaster<'_>,
    env: &Env,
) -> QueryCert {
    if let Err(e) = ProofChecker::check_model(blaster.solver.proof(), |v| {
        blaster.solver.value(v)
    }) {
        return QueryCert::Failed(format!("SAT model rejected at clause level: {e}"));
    }
    for (i, &a) in pending.iter().enumerate() {
        if !env.eval(mgr, a).is_true() {
            return QueryCert::Failed(format!(
                "SAT model falsifies original assertion {i} at term level"
            ));
        }
    }
    QueryCert::SatVerified
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TermKind;

    fn sat_model(mgr: &TermManager, assertions: &[TermId]) -> Model {
        match check(mgr, assertions, None) {
            SmtResult::Sat(m) => m,
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_sat_with_model() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c42 = m.const_u64(8, 42);
        let a = m.eq(x, c42);
        let model = sat_model(&m, &[a]);
        assert_eq!(model.eval(&m, x).to_u64(), Some(42));
    }

    #[test]
    fn addition_constraint() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let c7 = m.const_u64(8, 7);
        let a1 = m.eq(sum, c100);
        let a2 = m.eq(x, c7);
        let model = sat_model(&m, &[a1, a2]);
        assert_eq!(model.eval(&m, y).to_u64(), Some(93));
    }

    #[test]
    fn unsat_arithmetic_identity() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        // (x + y) - y != x is unsatisfiable.
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        assert!(check(&m, &[neq], None).is_unsat());
    }

    #[test]
    fn mul_matches_shift_for_powers_of_two() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let four = m.const_u64(8, 4);
        let two = m.const_u64(8, 2);
        let prod = m.mul(x, four);
        let shifted = m.shl(x, two);
        let neq = m.neq(prod, shifted);
        assert!(check(&m, &[neq], None).is_unsat());
    }

    #[test]
    fn shift_semantics_match_bitvec() {
        // For every op, check agreement with BitVec on a symbolic query:
        // find x, n with x >> n != lshr reference is UNSAT by construction;
        // instead check a SAT instance and compare to the BitVec result.
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let n = m.fresh_var("n", 8);
        let c_x = m.const_u64(8, 0x96);
        let c_n = m.const_u64(8, 3);
        let e1 = m.eq(x, c_x);
        let e2 = m.eq(n, c_n);
        let shr = m.ashr(x, n);
        let model = sat_model(&m, &[e1, e2]);
        let got = model.eval(&m, shr);
        assert_eq!(got, BitVec::from_u64(8, 0x96).ashr_amount(3));
    }

    #[test]
    fn signed_comparison_blasting() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 4);
        let zero = m.const_u64(4, 0);
        let lt = m.slt(x, zero); // x < 0 signed means MSB set
        let seven = m.const_u64(4, 7);
        let gt = m.ugt(x, seven); // unsigned > 7 also means MSB set
        let differ = m.neq(lt, gt);
        assert!(check(&m, &[differ], None).is_unsat());
    }

    #[test]
    fn array_ackermann_consistency() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let a1 = m.fresh_var("a1", 4);
        let a2 = m.fresh_var("a2", 4);
        let r1 = m.array_select(arr, a1);
        let r2 = m.array_select(arr, a2);
        // a1 == a2 but reads differ: must be UNSAT.
        let same = m.eq(a1, a2);
        let diff = m.neq(r1, r2);
        assert!(check(&m, &[same, diff], None).is_unsat());
        // Different addresses: reads may differ.
        let distinct = m.neq(a1, a2);
        let res = check(&m, &[distinct, diff], None);
        assert!(res.is_sat());
        if let SmtResult::Sat(model) = res {
            // The model's array env reproduces the read values.
            let va1 = model.eval(&m, a1);
            let va2 = model.eval(&m, a2);
            assert_ne!(va1, va2);
            let arr_val = model.env().array(arr).expect("array in model");
            assert_eq!(arr_val.read(&va1), model.eval(&m, r1));
            assert_eq!(arr_val.read(&va2), model.eval(&m, r2));
        }
    }

    #[test]
    fn rom_select_symbolic() {
        let mut m = TermManager::new();
        let table: Vec<BitVec> = (0..8).map(|i| BitVec::from_u64(8, i * 11)).collect();
        let r = m.rom("t", 3, 8, table);
        let a = m.fresh_var("a", 3);
        let rd = m.rom_select(r, a);
        let c44 = m.const_u64(8, 44);
        let hit = m.eq(rd, c44);
        let model = sat_model(&m, &[hit]);
        assert_eq!(model.eval(&m, a).to_u64(), Some(4));
    }

    #[test]
    fn const_short_circuits() {
        let mut m = TermManager::new();
        let t = m.tru();
        let f = m.fls();
        assert!(check(&m, &[t], None).is_sat());
        assert!(check(&m, &[t, f], None).is_unsat());
        assert!(check(&m, &[], None).is_sat());
    }

    #[test]
    fn concat_extract_round_trip_symbolic() {
        let mut m = TermManager::new();
        let hi = m.fresh_var("hi", 8);
        let lo = m.fresh_var("lo", 8);
        let c = m.concat(hi, lo);
        let hi2 = m.extract(c, 15, 8);
        let lo2 = m.extract(c, 7, 0);
        let bad1 = m.neq(hi, hi2);
        let bad2 = m.neq(lo, lo2);
        let bad = m.or(bad1, bad2);
        assert!(check(&m, &[bad], None).is_unsat());
    }

    #[test]
    fn sext_blasting_consistent() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 4);
        let se = m.sext(x, 8);
        // Reference construction: concat(replicate(msb), x).
        let msb = m.extract(x, 3, 3);
        let mm = m.concat(msb, msb);
        let mmmm = m.concat(mm, mm);
        let ref_se = m.concat(mmmm, x);
        let bad = m.neq(se, ref_se);
        assert!(check(&m, &[bad], None).is_unsat());
    }

    #[test]
    fn model_defaults_unqueried_vars_to_zero() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        let model = sat_model(&m, &[a]);
        // y never appeared in the query.
        assert_eq!(model.eval(&m, y), BitVec::zero(8));
        let TermKind::Var(_) = *m.kind(y) else { panic!() };
    }

    #[test]
    fn rol_symbolic_matches_concrete() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let n = m.fresh_var("n", 8);
        let r = m.rol(x, n);
        let cx = m.const_u64(8, 0b1001_0110);
        let cn = m.const_u64(8, 5);
        let e1 = m.eq(x, cx);
        let e2 = m.eq(n, cn);
        let model = sat_model(&m, &[e1, e2]);
        assert_eq!(model.eval(&m, r), BitVec::from_u64(8, 0b1001_0110).rol_amount(5));
    }

    #[test]
    fn budget_exhaustion_gives_unknown() {
        let mut m = TermManager::new();
        // A hard instance: multiplication inversion.
        let x = m.fresh_var("x", 16);
        let y = m.fresh_var("y", 16);
        let prod = m.mul(x, y);
        let c = m.const_u64(16, 0x7FFF);
        let two = m.const_u64(16, 2);
        let a1 = m.eq(prod, c);
        let a2 = m.uge(x, two);
        let a3 = m.uge(y, two);
        match check(&m, &[a1, a2, a3], Some(1)) {
            SmtResult::Unknown(_) | SmtResult::Sat(_) | SmtResult::Unsat => {}
        }
    }

    #[test]
    fn deadline_budget_reported_with_reason() {
        use std::time::Instant;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        // An already-expired deadline is observed at entry.
        let budget = Budget::unlimited().with_deadline(Instant::now());
        match check(&m, &[a], &budget) {
            SmtResult::Unknown(StopReason::Deadline) => {}
            other => panic!("expected Unknown(Deadline), got {other:?}"),
        }
    }

    #[test]
    fn cancelled_budget_reported_with_reason() {
        use owl_sat::CancelFlag;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        let cancel = CancelFlag::new();
        cancel.cancel();
        let budget = Budget::unlimited().with_cancel(cancel);
        match check(&m, &[a], &budget) {
            SmtResult::Unknown(StopReason::Cancelled) => {}
            other => panic!("expected Unknown(Cancelled), got {other:?}"),
        }
    }

    #[test]
    fn certified_sat_verifies_model_at_term_level() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let a = m.eq(sum, c100);
        let (res, cert) = check_certified(&m, &[a], None);
        assert!(res.is_sat());
        assert_eq!(cert, QueryCert::SatVerified);
    }

    #[test]
    fn certified_unsat_replays_proof() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        let (res, cert) = check_certified(&m, &[neq], None);
        assert!(res.is_unsat());
        assert!(matches!(cert, QueryCert::UnsatVerified { .. }), "got {cert:?}");
    }

    #[test]
    fn certified_unsat_with_arrays_replays_proof() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let a1 = m.fresh_var("a1", 4);
        let a2 = m.fresh_var("a2", 4);
        let r1 = m.array_select(arr, a1);
        let r2 = m.array_select(arr, a2);
        let same = m.eq(a1, a2);
        let diff = m.neq(r1, r2);
        // Ackermann constraints participate in the recorded proof.
        let (res, cert) = check_certified(&m, &[same, diff], None);
        assert!(res.is_unsat());
        assert!(matches!(cert, QueryCert::UnsatVerified { .. }), "got {cert:?}");
    }

    #[test]
    fn certified_constant_folds_are_trivial() {
        let mut m = TermManager::new();
        let t = m.tru();
        let f = m.fls();
        let (res, cert) = check_certified(&m, &[t], None);
        assert!(res.is_sat());
        assert_eq!(cert, QueryCert::Trivial);
        let (res, cert) = check_certified(&m, &[t, f], None);
        assert!(res.is_unsat());
        assert_eq!(cert, QueryCert::Trivial);
    }

    #[test]
    fn certified_unknown_is_unchecked() {
        use std::time::Instant;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        let budget = Budget::unlimited().with_deadline(Instant::now());
        let (res, cert) = check_certified(&m, &[a], &budget);
        assert!(res.is_unknown());
        assert_eq!(cert, QueryCert::Unchecked);
    }

    #[test]
    fn corrupt_proof_fault_flips_certification_not_the_answer() {
        use owl_sat::{Fault, FaultPlan};
        use std::sync::Arc;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        let plan = Arc::new(FaultPlan::new().at(0, Fault::CorruptProof));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let (res, cert) = check_certified(&m, &[neq], &budget);
        // The answer is still correct; only the certification fails.
        assert!(res.is_unsat());
        assert!(cert.is_failure(), "corrupted trail must fail certification, got {cert:?}");
    }

    #[test]
    fn fault_plan_counts_only_real_solver_calls() {
        use owl_sat::{Fault, FaultPlan};
        use std::sync::Arc;
        let mut m = TermManager::new();
        let plan = Arc::new(FaultPlan::new().at(0, Fault::ForceUnknown));
        let budget = Budget::unlimited().with_fault_plan(plan.clone());
        // A constant-folding query never reaches the SAT solver, so it
        // does not consume a fault index.
        let t = m.tru();
        assert!(check(&m, &[t], &budget).is_sat());
        assert_eq!(plan.calls_observed(), 0);
        // The first real solve is call 0 and gets the fault.
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        match check(&m, &[a], &budget) {
            SmtResult::Unknown(StopReason::FaultInjected) => {}
            other => panic!("expected Unknown(FaultInjected), got {other:?}"),
        }
        assert!(check(&m, &[a], &budget).is_sat());
    }
}
