//! The solver facade: blast assertions, add Ackermann constraints, solve,
//! and package the model.

use crate::blast::{BlastState, Blaster};
use crate::eval::{ArrayValue, Env};
use crate::manager::{TermId, TermManager};
use crate::simplify::{count_nodes, simplify_terms};
use owl_bitvec::BitVec;
use owl_egraph::SaturationLimits;
use owl_sat::{Budget, ProofChecker, SolveResult, Solver, StopReason};
use std::collections::HashMap;

/// Result of an SMT [`solve`] call.
#[derive(Debug)]
pub enum SmtResult {
    /// The conjunction of assertions is satisfiable.
    Sat(Model),
    /// The conjunction of assertions is unsatisfiable.
    Unsat,
    /// The budget was exhausted (or the call was cancelled or
    /// fault-injected) before an answer was found.
    Unknown(StopReason),
}

impl SmtResult {
    /// True for [`SmtResult::Sat`].
    #[must_use]
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True for [`SmtResult::Unsat`].
    #[must_use]
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// True for [`SmtResult::Unknown`].
    #[must_use]
    pub fn is_unknown(&self) -> bool {
        matches!(self, SmtResult::Unknown(_))
    }
}

/// A satisfying assignment: concrete values for the variables and base
/// arrays that appeared in the checked assertions.
///
/// A model is also an evaluation [`Env`]; variables that never appeared
/// in the query read as zero, and array addresses that were never
/// accessed read as the array default (zero).
#[derive(Debug, Clone)]
pub struct Model {
    env: Env,
}

impl Model {
    /// The model as an evaluation environment.
    #[must_use]
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Consumes the model, returning its environment.
    #[must_use]
    pub fn into_env(self) -> Env {
        self.env
    }

    /// Evaluates a term under the model.
    #[must_use]
    pub fn eval(&self, mgr: &TermManager, term: TermId) -> BitVec {
        self.env.eval(mgr, term)
    }
}

/// How a certified answer ([`CheckOpts::certified`]) was (or was not)
/// independently validated.
///
/// The validators are structurally independent of the code paths they
/// certify: SAT models are re-evaluated both against the recorded CNF
/// (by [`ProofChecker::check_model`]) and against the *original term
/// graph* (by [`Env::eval`], which never touches the bit-blaster);
/// UNSAT answers are re-derived by replaying the solver's DRUP trail
/// through the independent proof checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryCert {
    /// The query folded to a constant before reaching the solver; the
    /// term evaluator confirmed the folded value.
    Trivial,
    /// A SAT model satisfied every recorded input clause and every
    /// original (pre-blast) assertion term.
    SatVerified,
    /// An UNSAT answer's proof trail replayed successfully; `steps` is
    /// the number of learned clauses consumed before refutation closed.
    UnsatVerified {
        /// Learned-clause steps replayed by the checker.
        steps: usize,
    },
    /// The query answered `Unknown`: no claim was made, nothing to
    /// certify.
    Unchecked,
    /// Certification failed — the answer cannot be trusted.
    Failed(String),
}

impl QueryCert {
    /// True for [`QueryCert::Failed`].
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, QueryCert::Failed(_))
    }
}

/// Per-query solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Run equality-saturation simplification on the assertion term
    /// graph before bit-blasting (default: on).
    pub simplify: bool,
    /// Independently certify every definite answer, as in
    /// [`CheckOpts::certified`] (default: off).
    pub certify: bool,
    /// Let a [`SolveSession`] retain its solver, learned clauses, and
    /// blasted CNF between queries (default: on). Off, each session call
    /// rebuilds everything from scratch — same answers and models, paid
    /// in full every round. One-shot [`solve`] ignores this flag.
    pub incremental: bool,
    /// Structural caps for the simplification pass. The defaults are
    /// tighter than [`SaturationLimits::default`] because simplification
    /// sits on the per-query hot path.
    pub simplify_limits: SaturationLimits,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            simplify: true,
            certify: false,
            incremental: true,
            simplify_limits: SaturationLimits { max_iters: 4, max_nodes: 30_000 },
        }
    }
}

/// Per-query size statistics, for benchmarking and logging.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Distinct term-graph nodes reachable from the non-constant
    /// assertions before simplification. A [`SolveSession`] reports the
    /// sum of per-round counts, so the same shared node may be counted
    /// once per round that reaches it.
    pub terms_before: usize,
    /// Distinct nodes after simplification (equals `terms_before` when
    /// simplification is off or skipped). Never exceeds `terms_before`:
    /// `simplify_terms` falls back to the originals rather than grow
    /// the shared DAG, per assertion set in one-shot [`solve`] and per
    /// round in a [`SolveSession`].
    pub terms_after: usize,
    /// Equality-saturation iterations spent on this query.
    pub eqsat_iters: usize,
    /// True when saturation reached a fixpoint.
    pub eqsat_saturated: bool,
    /// CNF variables created by bit-blasting (0 when the query never
    /// reached the solver).
    pub cnf_vars: usize,
    /// CNF clauses created by bit-blasting.
    pub cnf_clauses: usize,
    /// Learned clauses carried over from earlier solves of the same
    /// [`SolveSession`] into this query's search (0 for one-shot
    /// [`solve`] and for non-incremental sessions).
    pub clauses_retained: u64,
    /// Assertions whose bit-blasting was reused from the session's
    /// retained CNF instead of being re-blasted.
    pub blast_cache_hits: u64,
    /// 1 when this query ran incrementally on top of an earlier one
    /// (a warm [`SolveSession`] round), else 0 — a counter, so that
    /// summing over a query log counts the rounds that benefited.
    pub incremental_rounds: u64,
}

impl owl_trace::Report for QueryStats {
    fn report(&self) -> owl_trace::Section {
        owl_trace::Section::new()
            .with("terms_before", self.terms_before)
            .with("terms_after", self.terms_after)
            .with("eqsat_iters", self.eqsat_iters)
            .with("eqsat_saturated", self.eqsat_saturated)
            .with("cnf_vars", self.cnf_vars)
            .with("cnf_clauses", self.cnf_clauses)
            .with("clauses_retained", self.clauses_retained)
            .with("blast_cache_hits", self.blast_cache_hits)
            .with("incremental_rounds", self.incremental_rounds)
    }
}

/// Everything [`solve`] produces for one query.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The satisfiability answer.
    pub result: SmtResult,
    /// The certification verdict ([`QueryCert::Unchecked`] when
    /// certification was off).
    pub cert: QueryCert,
    /// Size statistics for the query.
    pub stats: QueryStats,
}

/// Options for one [`solve`] call: the resource [`Budget`] plus the
/// per-query [`SolverConfig`] (simplification, certification, limits).
///
/// Everything historical converts into it, so call sites stay terse:
/// `None`/`Some(conflicts)` (the bare conflict budget), a [`Budget`]
/// (owned or by reference), or a full `CheckOpts` built with the
/// `with_*` methods.
#[derive(Debug, Clone, Default)]
pub struct CheckOpts {
    /// The resource envelope for the query (deadline, work limits,
    /// cancellation flag, fault plan).
    pub budget: Budget,
    /// Per-query solver configuration.
    pub config: SolverConfig,
}

impl CheckOpts {
    /// Unlimited budget, default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the resource budget.
    #[must_use]
    pub fn with_budget(mut self, budget: impl Into<Budget>) -> Self {
        self.budget = budget.into();
        self
    }

    /// Replaces the whole solver configuration.
    #[must_use]
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggles independent certification of every definite answer
    /// (historically the separate `check_certified` entry point).
    #[must_use]
    pub fn certified(mut self, certify: bool) -> Self {
        self.config.certify = certify;
        self
    }

    /// Toggles equality-saturation simplification before bit-blasting.
    #[must_use]
    pub fn simplified(mut self, simplify: bool) -> Self {
        self.config.simplify = simplify;
        self
    }
}

/// A bare conflict budget (`None` = unlimited) is still accepted
/// everywhere: `solve(mgr, &assertions, None)` keeps working.
impl From<Option<u64>> for CheckOpts {
    fn from(conflicts: Option<u64>) -> Self {
        CheckOpts::new().with_budget(conflicts)
    }
}

impl From<Budget> for CheckOpts {
    fn from(budget: Budget) -> Self {
        CheckOpts::new().with_budget(budget)
    }
}

impl From<&Budget> for CheckOpts {
    fn from(budget: &Budget) -> Self {
        CheckOpts::new().with_budget(budget)
    }
}

/// Checks the conjunction of 1-bit `assertions` for satisfiability —
/// the single solver entry point.
///
/// `opts` is anything that converts into [`CheckOpts`]: `None`
/// (unlimited), `Some(conflicts)` (a bare conflict budget, the
/// historical interface), a full [`Budget`] — with a deadline, work
/// limits, a shared [`CancelFlag`](owl_sat::CancelFlag) and an optional
/// fault plan — or an explicit `CheckOpts` carrying a [`SolverConfig`]
/// (certification and simplification as flags). A spent budget is
/// reported as [`SmtResult::Unknown`] with the [`StopReason`], checked
/// once on entry and then cooperatively inside the CDCL loop.
///
/// Constant-true assertions are skipped and a constant-false assertion
/// short-circuits to `Unsat` without invoking the SAT solver — the hot
/// path when the CEGIS verifier's query folds away structurally. The
/// remaining assertions are simplified by bounded equality saturation
/// (see [`SolverConfig::simplify`]) before bit-blasting; `mgr` is
/// mutable so the simplified terms hash-cons into the same graph.
/// Simplification runs under the same budget as the solve (so one
/// deadline covers the whole query) but with fault injection stripped
/// ([`Budget::without_faults`]): fault-plan indices keep counting real
/// SAT solver calls only, and a partially-saturated e-graph is still
/// extracted when the deadline fires mid-simplification.
///
/// With `CheckOpts::certified(true)`, every definite answer is
/// independently certified before it is returned. On `Sat`, the model
/// is checked twice: once against the recorded CNF clauses and once by
/// evaluating every original assertion term under the lifted bitvector
/// assignment, catching bit-blaster bugs — and, because the CNF is
/// built from the *simplified* terms while certification evaluates the
/// *original pre-rewrite* terms, also catching unsound rewrites. On
/// `Unsat`, the solver's DRUP-style proof log is replayed by the
/// independent [`ProofChecker`]. The answer itself is returned
/// unchanged either way; a [`QueryCert::Failed`] verdict tells the
/// caller the answer cannot be trusted.
///
/// # Panics
///
/// Panics if any assertion is wider than one bit.
#[must_use]
pub fn solve(
    mgr: &mut TermManager,
    assertions: &[TermId],
    opts: impl Into<CheckOpts>,
) -> CheckOutcome {
    let opts = opts.into();
    solve_impl(mgr, assertions, &opts.budget, &opts.config)
}

fn solve_impl(
    mgr: &mut TermManager,
    assertions: &[TermId],
    budget: &Budget,
    config: &SolverConfig,
) -> CheckOutcome {
    let certify = config.certify;
    let tracer = budget.tracer().clone();
    let _query_span = tracer.span("smt", "query");
    let mut stats = QueryStats::default();
    let done = |result: SmtResult, cert: QueryCert, stats: QueryStats| CheckOutcome {
        result,
        cert,
        stats,
    };
    if let Some(reason) = budget.checkpoint() {
        return done(SmtResult::Unknown(reason), QueryCert::Unchecked, stats);
    }
    // Constant short-circuits first.
    let mut pending = Vec::with_capacity(assertions.len());
    for &a in assertions {
        assert_eq!(mgr.width(a), 1, "assertions must be 1-bit terms");
        match mgr.as_const(a) {
            Some(c) if c.is_true() => {}
            Some(_) => {
                // Re-derive the fold through the term evaluator.
                let cert = if certify && Env::new().eval(mgr, a).is_true() {
                    QueryCert::Failed("constant fold disagrees with evaluator".into())
                } else {
                    QueryCert::Trivial
                };
                return done(SmtResult::Unsat, cert, stats);
            }
            None => pending.push(a),
        }
    }
    if pending.is_empty() {
        return done(SmtResult::Sat(Model { env: Env::new() }), QueryCert::Trivial, stats);
    }
    stats.terms_before = count_nodes(mgr, &pending);
    stats.terms_after = stats.terms_before;

    // Equality-saturation simplification. `pending` keeps the original
    // terms — certification always runs against those — while `solved`
    // is what actually gets blasted.
    let mut solved = pending.clone();
    if config.simplify {
        let (simplified, sstats) = {
            let _span = tracer.span("smt", "simplify");
            simplify_terms(mgr, &pending, &budget.without_faults(), &config.simplify_limits)
        };
        stats.terms_after = sstats.nodes_after;
        stats.eqsat_iters = sstats.iterations;
        stats.eqsat_saturated = sstats.saturated;
        solved = simplified;
        // The rewrite may have exposed new constants.
        for (i, &s) in solved.iter().enumerate() {
            let Some(c) = mgr.as_const(s) else { continue };
            if !c.is_true() {
                // Simplified to false ⇒ the conjunction is UNSAT.
                // Point-check the claim against the untouched original
                // term under the all-zero environment.
                let cert = if certify && Env::new().eval(mgr, pending[i]).is_true() {
                    QueryCert::Failed("eqsat simplification disagrees with evaluator".into())
                } else if certify {
                    QueryCert::Trivial
                } else {
                    QueryCert::Unchecked
                };
                return done(SmtResult::Unsat, cert, stats);
            }
        }
        // Drop assertions that simplified to constant true; keep the
        // originals paired with the survivors so certification stays
        // aligned.
        let keep: Vec<(TermId, TermId)> = pending
            .iter()
            .zip(&solved)
            .filter(|&(_, s)| mgr.as_const(*s).is_none())
            .map(|(&o, &s)| (o, s))
            .collect();
        if keep.is_empty() {
            // Everything simplified to true: satisfiable by any
            // assignment; spot-check the originals on the zero point.
            let cert = if certify {
                if pending.iter().all(|&a| Env::new().eval(mgr, a).is_true()) {
                    QueryCert::Trivial
                } else {
                    QueryCert::Failed("eqsat simplification disagrees with evaluator".into())
                }
            } else {
                QueryCert::Unchecked
            };
            return done(SmtResult::Sat(Model { env: Env::new() }), cert, stats);
        }
        pending = keep.iter().map(|&(o, _)| o).collect();
        solved = keep.iter().map(|&(_, s)| s).collect();
    }

    let mgr = &*mgr;
    let mut blaster = Blaster::with_certification(mgr, certify);
    {
        let _span = tracer.span("smt", "blast");
        for &a in &solved {
            blaster.assert_true(a);
        }
        blaster.finalize_arrays();
    }
    stats.cnf_vars = blaster.solver.num_vars();
    stats.cnf_clauses = blaster.solver.num_clauses();
    if tracer.is_enabled() {
        tracer.count("smt", "queries", 1);
        tracer.count("smt", "cnf_vars", stats.cnf_vars as u64);
        tracer.count("smt", "cnf_clauses", stats.cnf_clauses as u64);
    }
    match blaster.solver.solve(budget) {
        SolveResult::Unsat => {
            let cert = if certify {
                match blaster.solver.certify_unsat() {
                    Ok(steps) => QueryCert::UnsatVerified { steps },
                    Err(e) => QueryCert::Failed(format!("UNSAT proof rejected: {e}")),
                }
            } else {
                QueryCert::Unchecked
            };
            done(SmtResult::Unsat, cert, stats)
        }
        SolveResult::Unknown => done(
            SmtResult::Unknown(
                blaster.solver.stop_reason().unwrap_or(StopReason::ConflictLimit),
            ),
            QueryCert::Unchecked,
            stats,
        ),
        SolveResult::Sat => {
            let mut env = Env::new();
            for (&sym, bits) in &blaster.var_bits {
                env.set_var(sym, blaster.read_bits(bits));
            }
            for (&arr, reads) in &blaster.selects {
                let (_, dw) = mgr.array_widths(arr);
                let mut value = ArrayValue::filled(BitVec::zero(dw));
                for (addr_bits, data_bits) in reads {
                    value.write(blaster.read_bits(addr_bits), blaster.read_bits(data_bits));
                }
                env.set_array(arr, value);
            }
            // Certification evaluates the ORIGINAL pre-rewrite terms:
            // since the simplified terms are pointwise equivalent, any
            // model of the simplified CNF must satisfy them, so a
            // mismatch exposes an unsound rewrite (or blaster bug).
            let cert = if certify {
                certify_sat_model(mgr, &pending, &blaster.solver, &env)
            } else {
                QueryCert::Unchecked
            };
            done(SmtResult::Sat(Model { env }), cert, stats)
        }
    }
}

/// Certifies a SAT answer at both levels: the recorded CNF clauses under
/// the SAT assignment, and the original assertion terms under the lifted
/// bitvector model.
fn certify_sat_model(
    mgr: &TermManager,
    pending: &[TermId],
    solver: &Solver,
    env: &Env,
) -> QueryCert {
    if let Err(e) = ProofChecker::check_model(solver.proof(), |v| solver.value(v)) {
        return QueryCert::Failed(format!("SAT model rejected at clause level: {e}"));
    }
    for (i, &a) in pending.iter().enumerate() {
        if !env.eval(mgr, a).is_true() {
            return QueryCert::Failed(format!(
                "SAT model falsifies original assertion {i} at term level"
            ));
        }
    }
    QueryCert::SatVerified
}

/// Salt for the session's structural-digest memo of asserted roots.
const SESSION_MEMO_SALT: u64 = 0x0e15_e551_04d1_6e57;

/// One assertion the session has accepted, with everything needed to
/// replay or re-certify it later.
struct AssertedRoot {
    /// The term as the caller asserted it (certification target).
    original: TermId,
    /// What actually gets blasted (simplified; equals `original` when
    /// simplification is off).
    solved: TermId,
    /// False when `solved` folded to constant true and never reached the
    /// blaster.
    blasted: bool,
    eqsat_iters: usize,
    eqsat_saturated: bool,
}

/// A persistent, monotone query session: assert terms, solve, assert
/// more, solve again — the CEGIS shape, where every round conjoins one
/// new counterexample constraint onto everything before it.
///
/// Each [`SolveSession::solve`] call takes the **full cumulative**
/// assertion list; a structural digest memo identifies the terms already
/// asserted, so only the new ones are simplified, blasted, and appended
/// to the retained CNF. The underlying SAT solver keeps its learned
/// clauses, variable activities, and saved phases across calls
/// ([`owl_sat::Solver::reset_search`]), which is where the incremental
/// speedup comes from.
///
/// # Determinism: incremental and scratch answer identically
///
/// With [`SolverConfig::incremental`] off, every call rebuilds a fresh
/// solver — but it replays the *recorded batch structure* (assert batch,
/// Ackermann-finalize, assert next batch, …) rather than blasting one
/// flat query, so the CNF, variable numbering, and clause order are
/// byte-identical to what the warm session accumulated. Both modes pin
/// the SAT search to canonical decisions
/// ([`owl_sat::Solver::set_canonical_decisions`]), which returns the
/// lexicographically-least model regardless of learned clauses or
/// activity state. Net effect: answers, models, certificates, and CNF
/// size statistics are identical between the two modes; only wall-clock
/// time and the reuse counters ([`QueryStats::clauses_retained`],
/// [`QueryStats::blast_cache_hits`], [`QueryStats::incremental_rounds`])
/// differ.
///
/// Fault-plan indices also line up: a session call makes at most one
/// real SAT solver call in either mode, and constant short-circuits
/// consume no fault index on either path, matching one-shot [`solve`].
///
/// # Certification
///
/// With [`SolverConfig::certify`], the semantics of one-shot [`solve`]
/// carry over unchanged: Sat models are checked against the recorded CNF
/// **and** by evaluating every original (pre-rewrite) assertion ever
/// accepted; Unsat answers are re-derived by replaying the proof-log
/// *segment* that ends at this solve ([`owl_sat::Solver::certify_unsat_segment`]),
/// so clauses asserted in earlier rounds participate but the verdict is
/// still independently checked per round.
pub struct SolveSession {
    config: SolverConfig,
    /// Retained solver + blaster state (incremental mode only).
    state: Option<BlastState>,
    /// How many leading entries of `batches` the retained state has
    /// already blasted.
    blasted_batches: usize,
    /// Structural digest → asserted roots with that digest (the vec
    /// absorbs hash collisions: membership is by term id).
    seen: HashMap<u64, Vec<TermId>>,
    /// Accepted assertions in arrival order, grouped by the call that
    /// introduced them. The grouping is semantic: scratch-mode replay
    /// finalizes arrays after each batch exactly like the incremental
    /// path did, keeping the CNFs identical.
    batches: Vec<Vec<AssertedRoot>>,
    /// Calls that reached the SAT solver.
    rounds: u64,
    /// A constant-false assertion refutes the session for good (it is
    /// monotone): `(original term, discovered by simplification?)`.
    refuted: Option<(TermId, bool)>,
    /// Per-batch shared-DAG node counts of the original (resp. solved)
    /// roots, summed at fold time. Each batch's pair is bounded by the
    /// guard in `simplify_terms`, so the sums keep `terms_after <=
    /// terms_before` for every report this session ever emits.
    terms_before_total: usize,
    terms_after_total: usize,
}

impl SolveSession {
    /// A fresh session with the given per-query configuration (fixed for
    /// the session's lifetime).
    #[must_use]
    pub fn new(config: SolverConfig) -> Self {
        SolveSession {
            config,
            state: None,
            blasted_batches: 0,
            seen: HashMap::new(),
            batches: Vec::new(),
            rounds: 0,
            refuted: None,
            terms_before_total: 0,
            terms_after_total: 0,
        }
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Checks the conjunction of 1-bit `assertions` for satisfiability.
    ///
    /// `assertions` must be the full cumulative list (a superset of every
    /// earlier call's list — the session is monotone and never retracts);
    /// terms already asserted are recognized by structural digest and
    /// skipped. `budget` is anything that converts into a [`Budget`],
    /// as in [`solve`].
    ///
    /// # Panics
    ///
    /// Panics if any assertion is wider than one bit.
    #[must_use]
    pub fn solve(
        &mut self,
        mgr: &mut TermManager,
        assertions: &[TermId],
        budget: impl Into<Budget>,
    ) -> CheckOutcome {
        let budget = budget.into();
        self.solve_impl(mgr, assertions, &budget)
    }

    fn solve_impl(
        &mut self,
        mgr: &mut TermManager,
        assertions: &[TermId],
        budget: &Budget,
    ) -> CheckOutcome {
        let certify = self.config.certify;
        let incremental = self.config.incremental;
        let tracer = budget.tracer().clone();
        let _query_span = tracer.span("smt", "query");
        let mut stats = QueryStats::default();
        let done = |result: SmtResult, cert: QueryCert, stats: QueryStats| CheckOutcome {
            result,
            cert,
            stats,
        };
        if let Some(reason) = budget.checkpoint() {
            return done(SmtResult::Unknown(reason), QueryCert::Unchecked, stats);
        }

        // Fold new assertions into the cumulative record. Everything here
        // is mode-independent: batch membership, simplification results,
        // and refutation state evolve identically whether or not solver
        // state is retained.
        let mut hits: u64 = 0;
        let mut fresh: Vec<AssertedRoot> = Vec::new();
        let mut to_simplify: Vec<usize> = Vec::new();
        for &a in assertions {
            assert_eq!(mgr.width(a), 1, "assertions must be 1-bit terms");
            if self.refuted.is_some() {
                break;
            }
            let digest = mgr.term_digest(&[a], SESSION_MEMO_SALT);
            let entry = self.seen.entry(digest).or_default();
            if entry.contains(&a) {
                hits += 1;
                continue;
            }
            entry.push(a);
            match mgr.as_const(a) {
                Some(c) if c.is_true() => fresh.push(AssertedRoot {
                    original: a,
                    solved: a,
                    blasted: false,
                    eqsat_iters: 0,
                    eqsat_saturated: true,
                }),
                Some(_) => self.refuted = Some((a, false)),
                None => {
                    to_simplify.push(fresh.len());
                    fresh.push(AssertedRoot {
                        original: a,
                        solved: a,
                        blasted: true,
                        eqsat_iters: 0,
                        eqsat_saturated: false,
                    });
                }
            }
        }
        // Simplify the batch's fresh roots as one set, exactly like
        // one-shot `solve` does for its whole assertion list: the
        // all-or-nothing fallback guard in `simplify_terms` then bounds
        // the batch's *shared-DAG* node count, not just each root's.
        if self.config.simplify && !to_simplify.is_empty() && self.refuted.is_none() {
            let roots: Vec<TermId> = to_simplify.iter().map(|&i| fresh[i].original).collect();
            let (simplified, sstats) = {
                let _span = tracer.span("smt", "simplify");
                simplify_terms(mgr, &roots, &budget.without_faults(), &self.config.simplify_limits)
            };
            for (&i, &s) in to_simplify.iter().zip(&simplified) {
                let r = &mut fresh[i];
                r.solved = s;
                r.eqsat_saturated = sstats.saturated;
                match mgr.as_const(s) {
                    Some(c) if !c.is_true() => {
                        self.refuted = Some((r.original, true));
                        break;
                    }
                    as_const => r.blasted = as_const.is_none(),
                }
            }
            if let Some(&first) = to_simplify.first() {
                fresh[first].eqsat_iters = sstats.iterations;
            }
        }
        if !fresh.is_empty() {
            // Cache this batch's union node counts now: the cumulative
            // report sums per-batch counts, so a call's accounting cost
            // stays proportional to what it added, and the guarded
            // per-batch bound makes the sums monotone by construction.
            let batch_orig: Vec<TermId> = fresh
                .iter()
                .filter(|r| mgr.as_const(r.original).is_none())
                .map(|r| r.original)
                .collect();
            let batch_solved: Vec<TermId> = fresh
                .iter()
                .filter(|r| mgr.as_const(r.original).is_none())
                .map(|r| r.solved)
                .collect();
            self.terms_before_total += count_nodes(mgr, &batch_orig);
            self.terms_after_total += count_nodes(mgr, &batch_solved);
            self.batches.push(fresh);
        }

        // A refuted session stays refuted: the conjunction only grows.
        // Like the constant path of one-shot `solve`, this consumes no
        // fault-plan index.
        if let Some((original, via_simplify)) = self.refuted {
            let cert = if certify {
                if Env::new().eval(mgr, original).is_true() {
                    let what =
                        if via_simplify { "eqsat simplification" } else { "constant fold" };
                    QueryCert::Failed(format!("{what} disagrees with evaluator"))
                } else {
                    QueryCert::Trivial
                }
            } else if via_simplify {
                QueryCert::Unchecked
            } else {
                QueryCert::Trivial
            };
            return done(SmtResult::Unsat, cert, stats);
        }

        // Cumulative term statistics: per-batch shared-DAG counts summed
        // over batches, cached at fold time. Both modes fold identically,
        // so the numbers are mode-independent, and the per-batch guard in
        // `simplify_terms` keeps `terms_after <= terms_before`.
        let originals: Vec<TermId> =
            self.batches.iter().flatten().map(|r| r.original).collect();
        let mut counted_orig = Vec::new();
        let mut any_blasted = false;
        let mut saturated = self.config.simplify;
        for r in self.batches.iter().flatten() {
            any_blasted |= r.blasted;
            if mgr.as_const(r.original).is_some() {
                continue;
            }
            counted_orig.push(r.original);
            stats.eqsat_iters += r.eqsat_iters;
            saturated &= r.eqsat_saturated;
        }
        stats.terms_before = self.terms_before_total;
        stats.terms_after = self.terms_after_total;
        stats.eqsat_saturated = saturated && !counted_orig.is_empty();

        if !any_blasted {
            // Nothing survived to the blaster: satisfiable by any
            // assignment; spot-check the originals on the zero point.
            let cert = if counted_orig.is_empty() {
                QueryCert::Trivial
            } else if certify {
                if counted_orig.iter().all(|&a| Env::new().eval(mgr, a).is_true()) {
                    QueryCert::Trivial
                } else {
                    QueryCert::Failed("eqsat simplification disagrees with evaluator".into())
                }
            } else {
                QueryCert::Unchecked
            };
            return done(SmtResult::Sat(Model { env: Env::new() }), cert, stats);
        }

        // Blast. Warm state appends only the batches it has not seen;
        // a cold start (first call, or incremental off) replays every
        // batch in order, finalizing arrays after each, so both paths
        // build the same CNF in the same variable order.
        let mgr = &*mgr;
        let mut st = match (incremental, self.state.take()) {
            (true, Some(mut st)) => {
                st.solver.reset_search();
                st
            }
            _ => {
                self.blasted_batches = 0;
                let mut st = BlastState::new(certify);
                // Canonical decisions pin the model to the lex-least
                // satisfying assignment, independent of retained search
                // state — the keystone of warm/cold identity.
                st.solver.set_canonical_decisions(true);
                st
            }
        };
        {
            let _span = tracer.span("smt", "blast");
            let mut blaster = Blaster::resume(mgr, st);
            for batch in &self.batches[self.blasted_batches..] {
                for root in batch {
                    if root.blasted {
                        blaster.assert_true(root.solved);
                    }
                }
                blaster.finalize_arrays_incremental();
            }
            st = blaster.suspend();
        }
        self.blasted_batches = self.batches.len();

        // CNF sizes come from the blaster's own generation counters, not
        // the solver's clause database: the solver may drop or shrink
        // clauses using retained knowledge, which must not show up in
        // mode-independent statistics.
        stats.cnf_vars = st.gen_vars as usize;
        stats.cnf_clauses = st.gen_clauses as usize;
        stats.blast_cache_hits = if incremental { hits } else { 0 };
        self.rounds += 1;
        stats.incremental_rounds = u64::from(incremental && self.rounds >= 2);
        if tracer.is_enabled() {
            tracer.count("smt", "queries", 1);
            tracer.count("smt", "cnf_vars", stats.cnf_vars as u64);
            tracer.count("smt", "cnf_clauses", stats.cnf_clauses as u64);
            tracer.count("smt", "blast_cache_hits", stats.blast_cache_hits);
        }

        let retained_before = st.solver.stats().clauses_retained;
        let result = st.solver.solve(budget);
        stats.clauses_retained = st.solver.stats().clauses_retained - retained_before;

        let (result, cert) = match result {
            SolveResult::Unsat => {
                let cert = if certify {
                    let last = st.solver.proof().segments.len().saturating_sub(1);
                    match st.solver.certify_unsat_segment(last) {
                        Ok(steps) => QueryCert::UnsatVerified { steps },
                        Err(e) => QueryCert::Failed(format!("UNSAT proof rejected: {e}")),
                    }
                } else {
                    QueryCert::Unchecked
                };
                (SmtResult::Unsat, cert)
            }
            SolveResult::Unknown => (
                SmtResult::Unknown(
                    st.solver.stop_reason().unwrap_or(StopReason::ConflictLimit),
                ),
                QueryCert::Unchecked,
            ),
            SolveResult::Sat => {
                let mut env = Env::new();
                for (&sym, bits) in &st.var_bits {
                    env.set_var(sym, st.read_bits(bits));
                }
                for (&arr, reads) in &st.selects {
                    let (_, dw) = mgr.array_widths(arr);
                    let mut value = ArrayValue::filled(BitVec::zero(dw));
                    for (addr_bits, data_bits) in reads {
                        value.write(st.read_bits(addr_bits), st.read_bits(data_bits));
                    }
                    env.set_array(arr, value);
                }
                let cert = if certify {
                    certify_sat_model(mgr, &originals, &st.solver, &env)
                } else {
                    QueryCert::Unchecked
                };
                (SmtResult::Sat(Model { env }), cert)
            }
        };
        if incremental {
            self.state = Some(st);
        }
        done(result, cert, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TermKind;

    fn sat_model(mgr: &mut TermManager, assertions: &[TermId]) -> Model {
        match solve(mgr, assertions, None).result {
            SmtResult::Sat(m) => m,
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_sat_with_model() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c42 = m.const_u64(8, 42);
        let a = m.eq(x, c42);
        let model = sat_model(&mut m, &[a]);
        assert_eq!(model.eval(&m, x).to_u64(), Some(42));
    }

    #[test]
    fn addition_constraint() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let c7 = m.const_u64(8, 7);
        let a1 = m.eq(sum, c100);
        let a2 = m.eq(x, c7);
        let model = sat_model(&mut m, &[a1, a2]);
        assert_eq!(model.eval(&m, y).to_u64(), Some(93));
    }

    #[test]
    fn unsat_arithmetic_identity() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        // (x + y) - y != x is unsatisfiable.
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        assert!(solve(&mut m, &[neq], None).result.is_unsat());
    }

    #[test]
    fn mul_matches_shift_for_powers_of_two() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let four = m.const_u64(8, 4);
        let two = m.const_u64(8, 2);
        let prod = m.mul(x, four);
        let shifted = m.shl(x, two);
        let neq = m.neq(prod, shifted);
        assert!(solve(&mut m, &[neq], None).result.is_unsat());
    }

    #[test]
    fn shift_semantics_match_bitvec() {
        // For every op, check agreement with BitVec on a symbolic query:
        // find x, n with x >> n != lshr reference is UNSAT by construction;
        // instead check a SAT instance and compare to the BitVec result.
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let n = m.fresh_var("n", 8);
        let c_x = m.const_u64(8, 0x96);
        let c_n = m.const_u64(8, 3);
        let e1 = m.eq(x, c_x);
        let e2 = m.eq(n, c_n);
        let shr = m.ashr(x, n);
        let model = sat_model(&mut m, &[e1, e2]);
        let got = model.eval(&m, shr);
        assert_eq!(got, BitVec::from_u64(8, 0x96).ashr_amount(3));
    }

    #[test]
    fn signed_comparison_blasting() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 4);
        let zero = m.const_u64(4, 0);
        let lt = m.slt(x, zero); // x < 0 signed means MSB set
        let seven = m.const_u64(4, 7);
        let gt = m.ugt(x, seven); // unsigned > 7 also means MSB set
        let differ = m.neq(lt, gt);
        assert!(solve(&mut m, &[differ], None).result.is_unsat());
    }

    #[test]
    fn array_ackermann_consistency() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let a1 = m.fresh_var("a1", 4);
        let a2 = m.fresh_var("a2", 4);
        let r1 = m.array_select(arr, a1);
        let r2 = m.array_select(arr, a2);
        // a1 == a2 but reads differ: must be UNSAT.
        let same = m.eq(a1, a2);
        let diff = m.neq(r1, r2);
        assert!(solve(&mut m, &[same, diff], None).result.is_unsat());
        // Different addresses: reads may differ.
        let distinct = m.neq(a1, a2);
        let res = solve(&mut m, &[distinct, diff], None).result;
        assert!(res.is_sat());
        if let SmtResult::Sat(model) = res {
            // The model's array env reproduces the read values.
            let va1 = model.eval(&m, a1);
            let va2 = model.eval(&m, a2);
            assert_ne!(va1, va2);
            let arr_val = model.env().array(arr).expect("array in model");
            assert_eq!(arr_val.read(&va1), model.eval(&m, r1));
            assert_eq!(arr_val.read(&va2), model.eval(&m, r2));
        }
    }

    #[test]
    fn rom_select_symbolic() {
        let mut m = TermManager::new();
        let table: Vec<BitVec> = (0..8).map(|i| BitVec::from_u64(8, i * 11)).collect();
        let r = m.rom("t", 3, 8, table);
        let a = m.fresh_var("a", 3);
        let rd = m.rom_select(r, a);
        let c44 = m.const_u64(8, 44);
        let hit = m.eq(rd, c44);
        let model = sat_model(&mut m, &[hit]);
        assert_eq!(model.eval(&m, a).to_u64(), Some(4));
    }

    #[test]
    fn const_short_circuits() {
        let mut m = TermManager::new();
        let t = m.tru();
        let f = m.fls();
        assert!(solve(&mut m, &[t], None).result.is_sat());
        assert!(solve(&mut m, &[t, f], None).result.is_unsat());
        assert!(solve(&mut m, &[], None).result.is_sat());
    }

    #[test]
    fn concat_extract_round_trip_symbolic() {
        let mut m = TermManager::new();
        let hi = m.fresh_var("hi", 8);
        let lo = m.fresh_var("lo", 8);
        let c = m.concat(hi, lo);
        let hi2 = m.extract(c, 15, 8);
        let lo2 = m.extract(c, 7, 0);
        let bad1 = m.neq(hi, hi2);
        let bad2 = m.neq(lo, lo2);
        let bad = m.or(bad1, bad2);
        assert!(solve(&mut m, &[bad], None).result.is_unsat());
    }

    #[test]
    fn sext_blasting_consistent() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 4);
        let se = m.sext(x, 8);
        // Reference construction: concat(replicate(msb), x).
        let msb = m.extract(x, 3, 3);
        let mm = m.concat(msb, msb);
        let mmmm = m.concat(mm, mm);
        let ref_se = m.concat(mmmm, x);
        let bad = m.neq(se, ref_se);
        assert!(solve(&mut m, &[bad], None).result.is_unsat());
    }

    #[test]
    fn model_defaults_unqueried_vars_to_zero() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        let model = sat_model(&mut m, &[a]);
        // y never appeared in the query.
        assert_eq!(model.eval(&m, y), BitVec::zero(8));
        let TermKind::Var(_) = *m.kind(y) else { panic!() };
    }

    #[test]
    fn rol_symbolic_matches_concrete() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let n = m.fresh_var("n", 8);
        let r = m.rol(x, n);
        let cx = m.const_u64(8, 0b1001_0110);
        let cn = m.const_u64(8, 5);
        let e1 = m.eq(x, cx);
        let e2 = m.eq(n, cn);
        let model = sat_model(&mut m, &[e1, e2]);
        assert_eq!(model.eval(&m, r), BitVec::from_u64(8, 0b1001_0110).rol_amount(5));
    }

    #[test]
    fn budget_exhaustion_gives_unknown() {
        let mut m = TermManager::new();
        // A hard instance: multiplication inversion.
        let x = m.fresh_var("x", 16);
        let y = m.fresh_var("y", 16);
        let prod = m.mul(x, y);
        let c = m.const_u64(16, 0x7FFF);
        let two = m.const_u64(16, 2);
        let a1 = m.eq(prod, c);
        let a2 = m.uge(x, two);
        let a3 = m.uge(y, two);
        match solve(&mut m, &[a1, a2, a3], Some(1)).result {
            SmtResult::Unknown(_) | SmtResult::Sat(_) | SmtResult::Unsat => {}
        }
    }

    #[test]
    fn deadline_budget_reported_with_reason() {
        use std::time::Instant;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        // An already-expired deadline is observed at entry.
        let budget = Budget::unlimited().with_deadline(Instant::now());
        match solve(&mut m, &[a], &budget).result {
            SmtResult::Unknown(StopReason::Deadline) => {}
            other => panic!("expected Unknown(Deadline), got {other:?}"),
        }
    }

    #[test]
    fn cancelled_budget_reported_with_reason() {
        use owl_sat::CancelFlag;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        let cancel = CancelFlag::new();
        cancel.cancel();
        let budget = Budget::unlimited().with_cancel(cancel);
        match solve(&mut m, &[a], &budget).result {
            SmtResult::Unknown(StopReason::Cancelled) => {}
            other => panic!("expected Unknown(Cancelled), got {other:?}"),
        }
    }

    #[test]
    fn certified_sat_verifies_model_at_term_level() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let a = m.eq(sum, c100);
        let out = solve(&mut m, &[a], CheckOpts::new().certified(true));
        let (res, cert) = (out.result, out.cert);
        assert!(res.is_sat());
        assert_eq!(cert, QueryCert::SatVerified);
    }

    #[test]
    fn certified_unsat_replays_proof() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        let out = solve(&mut m, &[neq], CheckOpts::new().certified(true));
        let (res, cert) = (out.result, out.cert);
        assert!(res.is_unsat());
        assert!(matches!(cert, QueryCert::UnsatVerified { .. }), "got {cert:?}");
    }

    #[test]
    fn certified_unsat_with_arrays_replays_proof() {
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let a1 = m.fresh_var("a1", 4);
        let a2 = m.fresh_var("a2", 4);
        let r1 = m.array_select(arr, a1);
        let r2 = m.array_select(arr, a2);
        let same = m.eq(a1, a2);
        let diff = m.neq(r1, r2);
        // Ackermann constraints participate in the recorded proof.
        let out = solve(&mut m, &[same, diff], CheckOpts::new().certified(true));
        let (res, cert) = (out.result, out.cert);
        assert!(res.is_unsat());
        assert!(matches!(cert, QueryCert::UnsatVerified { .. }), "got {cert:?}");
    }

    #[test]
    fn certified_constant_folds_are_trivial() {
        let mut m = TermManager::new();
        let t = m.tru();
        let f = m.fls();
        let out = solve(&mut m, &[t], CheckOpts::new().certified(true));
        let (res, cert) = (out.result, out.cert);
        assert!(res.is_sat());
        assert_eq!(cert, QueryCert::Trivial);
        let out = solve(&mut m, &[t, f], CheckOpts::new().certified(true));
        let (res, cert) = (out.result, out.cert);
        assert!(res.is_unsat());
        assert_eq!(cert, QueryCert::Trivial);
    }

    #[test]
    fn certified_unknown_is_unchecked() {
        use std::time::Instant;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        let budget = Budget::unlimited().with_deadline(Instant::now());
        let out = solve(&mut m, &[a], CheckOpts::from(&budget).certified(true));
        let (res, cert) = (out.result, out.cert);
        assert!(res.is_unknown());
        assert_eq!(cert, QueryCert::Unchecked);
    }

    #[test]
    fn corrupt_proof_fault_flips_certification_not_the_answer() {
        use owl_sat::{Fault, FaultPlan};
        use std::sync::Arc;
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        let plan = Arc::new(FaultPlan::new().at(0, Fault::CorruptProof));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let out = solve(&mut m, &[neq], CheckOpts::from(&budget).certified(true));
        let (res, cert) = (out.result, out.cert);
        // The answer is still correct; only the certification fails.
        assert!(res.is_unsat());
        assert!(cert.is_failure(), "corrupted trail must fail certification, got {cert:?}");
    }

    #[test]
    fn simplification_shrinks_cnf_and_preserves_answers() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        // x & (x | y) absorbs to x, so the whole query collapses to
        // x == y before blasting.
        let xy = m.or(x, y);
        let absorbed = m.and(x, xy);
        let a = m.eq(absorbed, y);
        let on = solve(&mut m, &[a], CheckOpts::new());
        let off = solve(&mut m, &[a], CheckOpts::new().simplified(false));
        assert!(on.result.is_sat(), "got {:?}", on.result);
        assert!(off.result.is_sat(), "got {:?}", off.result);
        assert!(
            on.stats.cnf_vars < off.stats.cnf_vars,
            "simplify on: {} vars, off: {} vars",
            on.stats.cnf_vars,
            off.stats.cnf_vars
        );
        assert!(on.stats.cnf_clauses < off.stats.cnf_clauses);
        assert!(on.stats.terms_after < on.stats.terms_before);
    }

    #[test]
    fn tautology_simplifies_to_sat_without_solving() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let xy = m.or(x, y);
        let absorbed = m.and(x, xy);
        // x & (x | y) == x holds for all assignments.
        let a = m.eq(absorbed, x);
        let out = solve(&mut m, &[a], CheckOpts::new().certified(true));
        assert!(out.result.is_sat());
        assert_eq!(out.cert, QueryCert::Trivial, "no solver call should be needed");
        assert_eq!(out.stats.cnf_vars, 0);
    }

    #[test]
    fn contradiction_simplifies_to_unsat_without_solving() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let xy = m.or(x, y);
        let absorbed = m.and(x, xy);
        // x & (x | y) != x never holds.
        let a = m.neq(absorbed, x);
        let out = solve(&mut m, &[a], CheckOpts::new().certified(true));
        assert!(out.result.is_unsat());
        assert_eq!(out.cert, QueryCert::Trivial);
        assert_eq!(out.stats.cnf_vars, 0);
    }

    #[test]
    fn certified_sat_with_simplification_checks_original_terms() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let two = m.const_u64(8, 2);
        let prod = m.mul(x, two);
        let sum = m.add(prod, y);
        let c = m.const_u64(8, 77);
        let a = m.eq(sum, c);
        let out = solve(&mut m, &[a], CheckOpts::new().certified(true));
        assert!(out.result.is_sat());
        assert_eq!(out.cert, QueryCert::SatVerified);
        let SmtResult::Sat(model) = out.result else { unreachable!() };
        // The model must satisfy the original (pre-rewrite) term too.
        assert!(model.eval(&m, a).is_true());
    }

    #[test]
    fn deadline_mid_simplification_degrades_gracefully() {
        use std::time::Duration;
        let mut m = TermManager::new();
        let mut acc = m.fresh_var("x", 8);
        for i in 0..16 {
            let v = m.fresh_var(format!("v{i}"), 8);
            let o = m.or(acc, v);
            acc = m.and(acc, o);
        }
        let y = m.fresh_var("y", 8);
        let a = m.eq(acc, y);
        // The deadline expires during (or right after) simplification;
        // the call must neither panic nor mis-answer — Unknown(Deadline)
        // is the expected outcome, but a fast Sat is also legal.
        let budget = Budget::unlimited().with_deadline_in(Duration::from_micros(1));
        match solve(&mut m, &[a], &budget).result {
            SmtResult::Unknown(StopReason::Deadline) | SmtResult::Sat(_) => {}
            other => panic!("expected Unknown(Deadline) or Sat, got {other:?}"),
        }
    }

    /// ON and OFF sessions, fed the same batch sequence, must agree on
    /// answers, models, certificates, and size statistics.
    fn run_batches(
        mgr: &mut TermManager,
        incremental: bool,
        batches: &[Vec<TermId>],
        certify: bool,
    ) -> Vec<CheckOutcome> {
        let config = SolverConfig { incremental, certify, ..SolverConfig::default() };
        let mut session = SolveSession::new(config);
        let mut cumulative: Vec<TermId> = Vec::new();
        let mut out = Vec::new();
        for batch in batches {
            cumulative.extend(batch.iter().copied());
            out.push(session.solve(mgr, &cumulative, None));
        }
        out
    }

    #[test]
    fn session_agrees_with_one_shot_solve() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let c7 = m.const_u64(8, 7);
        let a1 = m.eq(sum, c100);
        let a2 = m.eq(x, c7);
        let mut session = SolveSession::new(SolverConfig::default());
        let out1 = session.solve(&mut m, &[a1], None);
        let SmtResult::Sat(model1) = out1.result else { panic!("round 1 not Sat") };
        assert!(model1.eval(&m, a1).is_true());
        let out2 = session.solve(&mut m, &[a1, a2], None);
        let SmtResult::Sat(model2) = out2.result else { panic!("round 2 not Sat") };
        assert_eq!(model2.eval(&m, x).to_u64(), Some(7));
        assert_eq!(model2.eval(&m, y).to_u64(), Some(93));
        // A contradictory third round refutes the session.
        let c9 = m.const_u64(8, 9);
        let a3 = m.eq(x, c9);
        assert!(session.solve(&mut m, &[a1, a2, a3], None).result.is_unsat());
        // And it stays refuted (monotone).
        assert!(session.solve(&mut m, &[a1, a2, a3], None).result.is_unsat());
    }

    #[test]
    fn session_reuses_blasted_terms_and_counts_reuse() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let c7 = m.const_u64(8, 7);
        let a1 = m.eq(sum, c100);
        let a2 = m.eq(x, c7);
        let mut session = SolveSession::new(SolverConfig::default());
        let out1 = session.solve(&mut m, &[a1], None);
        assert_eq!(out1.stats.blast_cache_hits, 0);
        assert_eq!(out1.stats.incremental_rounds, 0);
        let out2 = session.solve(&mut m, &[a1, a2], None);
        assert_eq!(out2.stats.blast_cache_hits, 1, "a1 was already blasted");
        assert_eq!(out2.stats.incremental_rounds, 1);
        assert!(
            out2.stats.cnf_vars > out1.stats.cnf_vars,
            "round 2 CNF is cumulative"
        );
    }

    #[test]
    fn session_scratch_mode_is_indistinguishable_except_reuse_counters() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let sum = m.add(x, y);
        let c100 = m.const_u64(8, 100);
        let c200 = m.const_u64(8, 200);
        let lo = m.ult(x, c200);
        let a1 = m.eq(sum, c100);
        let batches = vec![vec![a1], vec![lo]];
        let mut m2 = m.clone();
        let on = run_batches(&mut m, true, &batches, true);
        let off = run_batches(&mut m2, false, &batches, true);
        for (on, off) in on.iter().zip(&off) {
            assert_eq!(on.cert, off.cert);
            assert_eq!(on.stats.cnf_vars, off.stats.cnf_vars);
            assert_eq!(on.stats.cnf_clauses, off.stats.cnf_clauses);
            assert_eq!(on.stats.terms_before, off.stats.terms_before);
            assert_eq!(on.stats.terms_after, off.stats.terms_after);
            assert_eq!(off.stats.blast_cache_hits, 0);
            assert_eq!(off.stats.incremental_rounds, 0);
            let (SmtResult::Sat(mon), SmtResult::Sat(moff)) = (&on.result, &off.result)
            else {
                panic!("expected Sat on both paths")
            };
            // Canonical decisions make the two models literally equal.
            assert_eq!(mon.eval(&m, x), moff.eval(&m2, x));
            assert_eq!(mon.eval(&m, y), moff.eval(&m2, y));
        }
    }

    #[test]
    fn session_term_counts_never_grow_across_rounds() {
        // Regression: per-root simplification could shrink each root
        // individually while the rewritten forms shared *less* than the
        // originals, growing the union count. Batches now simplify as
        // one set and the report sums guarded per-batch counts, so
        // `terms_after <= terms_before` holds on every round.
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let z = m.fresh_var("z", 8);
        let zero = m.const_u64(8, 0);
        // Redundancy only the eqsat pass unwinds (`(x + y) - y` → `x`),
        // layered over a subterm `x + y` the originals share across
        // rounds but the rewritten forms may not.
        let sum = m.add(x, y);
        let back = m.sub(sum, y);
        let a1 = m.eq(back, z);
        let a2 = m.ult(sum, z);
        let xz = m.add(x, z);
        let back2 = m.sub(xz, z);
        let a3 = m.neq(back2, zero);
        let cumulative = [vec![a1], vec![a1, a2], vec![a1, a2, a3]];
        let mut session = SolveSession::new(SolverConfig::default());
        for round in &cumulative {
            let out = session.solve(&mut m, round, None);
            assert!(
                out.stats.terms_after <= out.stats.terms_before,
                "simplification grew the reported node count: {} -> {}",
                out.stats.terms_before,
                out.stats.terms_after
            );
        }
    }

    #[test]
    fn session_ackermann_constraints_span_batches() {
        // The second batch's read must be Ackermann-linked to the first
        // batch's read, and identically so in both modes.
        let mut m = TermManager::new();
        let arr = m.fresh_array("mem", 4, 8);
        let addr1 = m.fresh_var("a1", 4);
        let addr2 = m.fresh_var("a2", 4);
        let r1 = m.array_select(arr, addr1);
        let r2 = m.array_select(arr, addr2);
        let same = m.eq(addr1, addr2);
        let diff = m.neq(r1, r2);
        let batches = vec![vec![same], vec![diff]];
        let mut m2 = m.clone();
        let on = run_batches(&mut m, true, &batches, true);
        let off = run_batches(&mut m2, false, &batches, true);
        assert!(on[0].result.is_sat() && off[0].result.is_sat());
        assert!(on[1].result.is_unsat(), "same address, different reads");
        assert!(off[1].result.is_unsat());
        assert!(
            matches!(on[1].cert, QueryCert::UnsatVerified { .. }),
            "got {:?}",
            on[1].cert
        );
    }

    #[test]
    fn session_certifies_each_round() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 6);
        let y = m.fresh_var("y", 6);
        let sum = m.add(x, y);
        let c10 = m.const_u64(6, 10);
        let a1 = m.eq(sum, c10);
        let back = m.sub(sum, y);
        let neq = m.neq(back, x);
        let mut session =
            SolveSession::new(SolverConfig { certify: true, ..SolverConfig::default() });
        let out1 = session.solve(&mut m, &[a1], None);
        assert!(out1.result.is_sat());
        assert_eq!(out1.cert, QueryCert::SatVerified);
        let out2 = session.solve(&mut m, &[a1, neq], None);
        assert!(out2.result.is_unsat());
        assert!(matches!(out2.cert, QueryCert::UnsatVerified { .. }), "got {:?}", out2.cert);
    }

    #[test]
    fn session_constant_paths_consume_no_fault_index() {
        use owl_sat::{Fault, FaultPlan};
        use std::sync::Arc;
        let mut m = TermManager::new();
        let plan = Arc::new(FaultPlan::new().at(0, Fault::ForceUnknown));
        let budget = Budget::unlimited().with_fault_plan(plan.clone());
        let mut session = SolveSession::new(SolverConfig::default());
        let t = m.tru();
        assert!(session.solve(&mut m, &[t], &budget).result.is_sat());
        assert_eq!(plan.calls_observed(), 0, "all-true round never reached the solver");
        let f = m.fls();
        assert!(session.solve(&mut m, &[t, f], &budget).result.is_unsat());
        assert!(session.solve(&mut m, &[t, f], &budget).result.is_unsat());
        assert_eq!(plan.calls_observed(), 0, "refuted rounds never reach the solver");
    }

    #[test]
    fn session_clauses_retained_grow_on_warm_rounds() {
        let mut m = TermManager::new();
        // A moderately hard query so the first round actually learns.
        let x = m.fresh_var("x", 10);
        let y = m.fresh_var("y", 10);
        let prod = m.mul(x, y);
        let c = m.const_u64(10, 143);
        let two = m.const_u64(10, 2);
        let a1 = m.eq(prod, c);
        let a2 = m.uge(x, two);
        let a3 = m.uge(y, two);
        let mut session = SolveSession::new(SolverConfig::default());
        let out1 = session.solve(&mut m, &[a1, a2, a3], None);
        assert!(out1.result.is_sat(), "143 = 11 * 13");
        assert_eq!(out1.stats.clauses_retained, 0, "cold start retains nothing");
        let c5 = m.const_u64(10, 5);
        let a4 = m.uge(x, c5);
        let out2 = session.solve(&mut m, &[a1, a2, a3, a4], None);
        assert!(out2.result.is_sat(), "x = 11 or 13 still fits");
        assert_eq!(out2.stats.incremental_rounds, 1);
    }

    #[test]
    fn fault_plan_counts_only_real_solver_calls() {
        use owl_sat::{Fault, FaultPlan};
        use std::sync::Arc;
        let mut m = TermManager::new();
        let plan = Arc::new(FaultPlan::new().at(0, Fault::ForceUnknown));
        let budget = Budget::unlimited().with_fault_plan(plan.clone());
        // A constant-folding query never reaches the SAT solver, so it
        // does not consume a fault index.
        let t = m.tru();
        assert!(solve(&mut m, &[t], &budget).result.is_sat());
        assert_eq!(plan.calls_observed(), 0);
        // The first real solve is call 0 and gets the fault.
        let x = m.fresh_var("x", 8);
        let c1 = m.const_u64(8, 1);
        let a = m.eq(x, c1);
        match solve(&mut m, &[a], &budget).result {
            SmtResult::Unknown(StopReason::FaultInjected) => {}
            other => panic!("expected Unknown(FaultInjected), got {other:?}"),
        }
        assert!(solve(&mut m, &[a], &budget).result.is_sat());
    }
}
