//! Equality-saturation simplification of term graphs before
//! bit-blasting.
//!
//! [`simplify_terms`] round-trips a set of root terms through
//! `owl-egraph`: convert to the e-graph language, saturate under the
//! shared [`Budget`] with the QF_BV rule set, and extract the cheapest
//! equivalent terms under the CNF-oriented cost model, rebuilding them
//! through the [`TermManager`]'s hash-consing smart constructors.
//!
//! Soundness containment: the rewritten terms are only ever *solved*;
//! certification ([`crate::CheckOpts::certified`]) always evaluates models
//! against the original pre-rewrite terms, so a rewrite bug surfaces as
//! a failed certificate rather than a silently wrong answer.

use crate::manager::{ArrayId, BinOp, RomId, TermId, TermKind, TermManager, UnOp};
use owl_egraph::{
    bv_rules, saturate, Budget, EBinOp, EGraph, ENode, EUnOp, Extractor, Id, SaturationLimits,
    TermCost,
};
use std::collections::HashMap;

/// What one simplification pass did.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplifyStats {
    /// Distinct term-graph nodes reachable from the roots before
    /// simplification.
    pub nodes_before: usize,
    /// Distinct nodes reachable from the simplified roots.
    pub nodes_after: usize,
    /// Equality-saturation iterations run.
    pub iterations: usize,
    /// True when saturation reached a fixpoint (vs. hitting a cap,
    /// the deadline, or a fault).
    pub saturated: bool,
    /// False when the pass was skipped (input larger than the node cap)
    /// and the roots were returned unchanged.
    pub applied: bool,
    /// True when the rewritten roots were kept because their shared-DAG
    /// cost strictly improved on the originals; false when the originals
    /// were returned (skipped, or extraction found nothing cheaper).
    pub improved: bool,
}

/// Counts the distinct terms reachable from `roots`.
#[must_use]
pub fn count_nodes(mgr: &TermManager, roots: &[TermId]) -> usize {
    let mut seen: Vec<bool> = vec![false; mgr.num_terms()];
    let mut stack: Vec<TermId> = roots.to_vec();
    let mut count = 0usize;
    while let Some(t) = stack.pop() {
        if std::mem::replace(&mut seen[t.index()], true) {
            continue;
        }
        count += 1;
        match *mgr.kind(t) {
            TermKind::Const(_) | TermKind::Var(_) => {}
            TermKind::Unary(_, a)
            | TermKind::Extract(a, _, _)
            | TermKind::ZExt(a, _)
            | TermKind::SExt(a, _)
            | TermKind::ArraySelect(_, a)
            | TermKind::RomSelect(_, a) => stack.push(a),
            TermKind::Binary(_, a, b) | TermKind::Concat(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            TermKind::Ite(c, t2, e) => {
                stack.push(c);
                stack.push(t2);
                stack.push(e);
            }
        }
    }
    count
}

/// CNF-oriented cost of the term DAG reachable from `roots`, counting
/// every distinct node once (the blaster memoizes per term, so shared
/// subterms are blasted once regardless of fan-out).
///
/// The per-operator weights mirror [`TermCost`], which prices *tree*
/// extraction inside the e-graph; this shared-DAG variant is the
/// acceptance check that decides whether an extraction actually pays
/// off. Tree-optimal extraction can duplicate work a shared DAG got for
/// free, so [`simplify_terms`] keeps a rewrite only when this cost
/// strictly decreases.
#[must_use]
pub fn dag_cost(mgr: &TermManager, roots: &[TermId]) -> u64 {
    let mut seen: Vec<bool> = vec![false; mgr.num_terms()];
    let mut stack: Vec<TermId> = roots.to_vec();
    let mut cost = 0u64;
    let barrel = |w: u64| 3 * w * u64::from(u64::BITS - w.leading_zeros());
    while let Some(t) = stack.pop() {
        if std::mem::replace(&mut seen[t.index()], true) {
            continue;
        }
        let w = u64::from(mgr.width(t));
        match *mgr.kind(t) {
            TermKind::Const(_) | TermKind::Var(_) => {}
            TermKind::Extract(a, _, _) | TermKind::ZExt(a, _) | TermKind::SExt(a, _) => {
                stack.push(a);
            }
            TermKind::Unary(op, a) => {
                cost += match op {
                    UnOp::Not => 0,
                    UnOp::Neg => 6 * u64::from(mgr.width(a)),
                    UnOp::RedOr => u64::from(mgr.width(a)),
                };
                stack.push(a);
            }
            TermKind::Binary(op, a, b) => {
                let wa = u64::from(mgr.width(a));
                cost += match op {
                    BinOp::And | BinOp::Or | BinOp::Xor => wa,
                    BinOp::Add | BinOp::Sub => 6 * wa,
                    BinOp::Mul => 6 * wa * wa,
                    // Constant shift amounts blast to pure wiring; see
                    // the matching special case in `TermCost`.
                    BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                        if mgr.as_const(b).is_some() {
                            1
                        } else {
                            barrel(wa)
                        }
                    }
                    BinOp::Eq => 2 * wa,
                    BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle => 4 * wa,
                };
                stack.push(a);
                stack.push(b);
            }
            TermKind::Ite(c, t2, e) => {
                cost += 3 * w;
                stack.push(c);
                stack.push(t2);
                stack.push(e);
            }
            TermKind::Concat(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            TermKind::ArraySelect(_, a) | TermKind::RomSelect(_, a) => {
                cost += 1;
                stack.push(a);
            }
        }
    }
    cost
}

/// The uninterpreted operator behind an [`ENode::Call`] key.
#[derive(Debug, Clone, Copy)]
enum CallTarget {
    Array(ArrayId),
    Rom(RomId),
}

/// Simplifies `roots` (a slice of arbitrary-width terms) by equality
/// saturation, returning the equivalent simplified roots in order plus
/// statistics.
///
/// Saturation is governed by `budget` (deadline/cancellation polled
/// mid-run; a fault plan attached to the budget participates in
/// injection, so callers keeping fault indices aligned with solver
/// calls should pass [`Budget::without_faults`]) and by `limits`. On
/// any early stop the e-graph's partial state is still extracted — in
/// the worst case the extraction is the original term. Inputs already
/// larger than `limits.max_nodes` skip the pass entirely.
#[must_use]
pub fn simplify_terms(
    mgr: &mut TermManager,
    roots: &[TermId],
    budget: &Budget,
    limits: &SaturationLimits,
) -> (Vec<TermId>, SimplifyStats) {
    let mut stats = SimplifyStats { nodes_before: count_nodes(mgr, roots), ..Default::default() };
    if stats.nodes_before >= limits.max_nodes {
        stats.nodes_after = stats.nodes_before;
        return (roots.to_vec(), stats);
    }

    // --- Encode: term graph -> e-graph ------------------------------
    let mut egraph = EGraph::new();
    let mut term_class: HashMap<TermId, Id> = HashMap::new();
    // Leaf key -> the original Var term, for reconstruction.
    let mut leaf_terms: HashMap<u32, TermId> = HashMap::new();
    // Call key -> the array/ROM it reads.
    let mut call_targets: Vec<CallTarget> = Vec::new();
    let mut array_keys: HashMap<u32, u32> = HashMap::new();
    let mut rom_keys: HashMap<u32, u32> = HashMap::new();

    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(&t) = stack.last() {
        if term_class.contains_key(&t) {
            stack.pop();
            continue;
        }
        let mut pending_children = Vec::new();
        let mut need = |x: TermId| {
            if !term_class.contains_key(&x) {
                pending_children.push(x);
            }
        };
        match *mgr.kind(t) {
            TermKind::Const(_) | TermKind::Var(_) => {}
            TermKind::Unary(_, a)
            | TermKind::Extract(a, _, _)
            | TermKind::ZExt(a, _)
            | TermKind::SExt(a, _)
            | TermKind::ArraySelect(_, a)
            | TermKind::RomSelect(_, a) => need(a),
            TermKind::Binary(_, a, b) | TermKind::Concat(a, b) => {
                need(a);
                need(b);
            }
            TermKind::Ite(c, t2, e) => {
                need(c);
                need(t2);
                need(e);
            }
        }
        if !pending_children.is_empty() {
            stack.extend(pending_children);
            continue;
        }
        let cls = |m: &HashMap<TermId, Id>, x: TermId| m[&x];
        let node = match *mgr.kind(t) {
            TermKind::Const(ref v) => ENode::Const(v.clone()),
            TermKind::Var(sym) => {
                let key = u32::try_from(sym.index()).expect("symbol key fits");
                leaf_terms.insert(key, t);
                ENode::Leaf(key, mgr.width(t))
            }
            TermKind::Unary(op, a) => ENode::Unary(convert_unop(op), cls(&term_class, a)),
            TermKind::Binary(op, a, b) => {
                ENode::Bin(convert_binop(op), cls(&term_class, a), cls(&term_class, b))
            }
            TermKind::Ite(c, t2, e) => {
                ENode::Ite(cls(&term_class, c), cls(&term_class, t2), cls(&term_class, e))
            }
            TermKind::Extract(a, high, low) => ENode::Extract(cls(&term_class, a), high, low),
            TermKind::Concat(hi, lo) => ENode::Concat(cls(&term_class, hi), cls(&term_class, lo)),
            TermKind::ZExt(a, w) => ENode::ZExt(cls(&term_class, a), w),
            TermKind::SExt(a, w) => ENode::SExt(cls(&term_class, a), w),
            TermKind::ArraySelect(arr, addr) => {
                let raw = u32::try_from(arr.index()).expect("array key fits");
                let key = *array_keys.entry(raw).or_insert_with(|| {
                    call_targets.push(CallTarget::Array(arr));
                    u32::try_from(call_targets.len() - 1).expect("call key fits")
                });
                ENode::Call(key, vec![cls(&term_class, addr)], mgr.width(t))
            }
            TermKind::RomSelect(rom, addr) => {
                let raw = u32::try_from(rom.index()).expect("rom key fits");
                let key = *rom_keys.entry(raw).or_insert_with(|| {
                    call_targets.push(CallTarget::Rom(rom));
                    u32::try_from(call_targets.len() - 1).expect("call key fits")
                });
                ENode::Call(key, vec![cls(&term_class, addr)], mgr.width(t))
            }
        };
        let id = egraph.add(node);
        term_class.insert(t, id);
        stack.pop();
    }

    // --- Saturate under the budget ----------------------------------
    let report = saturate(&mut egraph, &bv_rules(), budget, limits);
    stats.iterations = report.iterations;
    stats.saturated = report.saturated;
    stats.applied = true;

    // --- Extract and rebuild through the manager --------------------
    let extractor = Extractor::new(&egraph, &TermCost);
    let mut class_term: HashMap<Id, TermId> = HashMap::new();
    let mut out = Vec::with_capacity(roots.len());
    for &root in roots {
        let id = egraph.find(term_class[&root]);
        let t = rebuild(
            mgr,
            &egraph,
            &extractor,
            id,
            &leaf_terms,
            &call_targets,
            &mut class_term,
        );
        debug_assert_eq!(mgr.width(t), mgr.width(root), "simplification must preserve width");
        out.push(t);
    }
    // --- Accept only strict shared-DAG improvements -----------------
    // The extractor minimizes tree cost per class, which can trade away
    // sharing; re-measure both sides as DAGs and keep the originals on
    // a tie or regression so "simplify on" never produces a larger CNF
    // than "simplify off" for the same query. The node-count guard is
    // separate: a rewrite can lower the blast cost while spreading it
    // over *more* term nodes, and the report's `terms_after` must never
    // exceed `terms_before`, so such rewrites also fall back.
    let nodes_out = count_nodes(mgr, &out);
    if out != roots
        && (dag_cost(mgr, &out) >= dag_cost(mgr, roots) || nodes_out > stats.nodes_before)
    {
        stats.nodes_after = stats.nodes_before;
        return (roots.to_vec(), stats);
    }
    stats.improved = out != roots;
    stats.nodes_after = nodes_out;
    debug_assert!(stats.nodes_after <= stats.nodes_before);
    (out, stats)
}

/// Rebuilds the extracted best term of `root` through the manager's
/// smart constructors, memoized per e-class (iterative so deep term
/// graphs cannot overflow the stack).
fn rebuild(
    mgr: &mut TermManager,
    egraph: &EGraph,
    extractor: &Extractor,
    root: Id,
    leaf_terms: &HashMap<u32, TermId>,
    call_targets: &[CallTarget],
    class_term: &mut HashMap<Id, TermId>,
) -> TermId {
    let mut stack: Vec<Id> = vec![root];
    while let Some(&raw) = stack.last() {
        let id = egraph.find(raw);
        if class_term.contains_key(&id) {
            stack.pop();
            continue;
        }
        let node = extractor.best(egraph, id).clone();
        let mut missing = Vec::new();
        node.for_each_child(|c| {
            let c = egraph.find(c);
            if !class_term.contains_key(&c) {
                missing.push(c);
            }
        });
        if !missing.is_empty() {
            stack.extend(missing);
            continue;
        }
        let get = |m: &HashMap<Id, TermId>, c: Id| m[&egraph.find(c)];
        let t = match node {
            ENode::Const(v) => mgr.bv_const(v),
            ENode::Leaf(key, _) => leaf_terms[&key],
            ENode::Unary(op, a) => {
                let a = get(class_term, a);
                match op {
                    EUnOp::Not => mgr.not(a),
                    EUnOp::Neg => mgr.neg(a),
                    EUnOp::RedOr => mgr.red_or(a),
                }
            }
            ENode::Bin(op, a, b) => {
                let (a, b) = (get(class_term, a), get(class_term, b));
                match op {
                    EBinOp::And => mgr.and(a, b),
                    EBinOp::Or => mgr.or(a, b),
                    EBinOp::Xor => mgr.xor(a, b),
                    EBinOp::Add => mgr.add(a, b),
                    EBinOp::Sub => mgr.sub(a, b),
                    EBinOp::Mul => mgr.mul(a, b),
                    EBinOp::Shl => mgr.shl(a, b),
                    EBinOp::Lshr => mgr.lshr(a, b),
                    EBinOp::Ashr => mgr.ashr(a, b),
                    EBinOp::Eq => mgr.eq(a, b),
                    EBinOp::Ult => mgr.ult(a, b),
                    EBinOp::Ule => mgr.ule(a, b),
                    EBinOp::Slt => mgr.slt(a, b),
                    EBinOp::Sle => mgr.sle(a, b),
                }
            }
            ENode::Ite(c, t2, e) => {
                let (c, t2, e) = (get(class_term, c), get(class_term, t2), get(class_term, e));
                mgr.ite(c, t2, e)
            }
            ENode::Extract(a, high, low) => {
                let a = get(class_term, a);
                mgr.extract(a, high, low)
            }
            ENode::Concat(hi, lo) => {
                let (hi, lo) = (get(class_term, hi), get(class_term, lo));
                mgr.concat(hi, lo)
            }
            ENode::ZExt(a, w) => {
                let a = get(class_term, a);
                mgr.zext(a, w)
            }
            ENode::SExt(a, w) => {
                let a = get(class_term, a);
                mgr.sext(a, w)
            }
            ENode::Call(key, ref args, _) => {
                let addr = get(class_term, args[0]);
                match call_targets[key as usize] {
                    CallTarget::Array(arr) => mgr.array_select(arr, addr),
                    CallTarget::Rom(rom) => mgr.rom_select(rom, addr),
                }
            }
        };
        class_term.insert(id, t);
        stack.pop();
    }
    class_term[&egraph.find(root)]
}

fn convert_unop(op: UnOp) -> EUnOp {
    match op {
        UnOp::Not => EUnOp::Not,
        UnOp::Neg => EUnOp::Neg,
        UnOp::RedOr => EUnOp::RedOr,
    }
}

fn convert_binop(op: BinOp) -> EBinOp {
    match op {
        BinOp::And => EBinOp::And,
        BinOp::Or => EBinOp::Or,
        BinOp::Xor => EBinOp::Xor,
        BinOp::Add => EBinOp::Add,
        BinOp::Sub => EBinOp::Sub,
        BinOp::Mul => EBinOp::Mul,
        BinOp::Shl => EBinOp::Shl,
        BinOp::Lshr => EBinOp::Lshr,
        BinOp::Ashr => EBinOp::Ashr,
        BinOp::Eq => EBinOp::Eq,
        BinOp::Ult => EBinOp::Ult,
        BinOp::Ule => EBinOp::Ule,
        BinOp::Slt => EBinOp::Slt,
        BinOp::Sle => EBinOp::Sle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Env;
    use owl_bitvec::BitVec;

    fn unlimited() -> (Budget, SaturationLimits) {
        (Budget::unlimited(), SaturationLimits::default())
    }

    #[test]
    fn shift_by_constant_simplifies_to_wiring() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let two = m.const_u64(8, 2);
        let sh = m.shl(x, two);
        let (b, l) = unlimited();
        let (out, stats) = simplify_terms(&mut m, &[sh], &b, &l);
        assert!(stats.applied && stats.saturated);
        // The simplified term must not contain a shift.
        fn has_shift(m: &TermManager, t: TermId) -> bool {
            match *m.kind(t) {
                TermKind::Binary(BinOp::Shl | BinOp::Lshr | BinOp::Ashr, a, b) => {
                    m.as_const(b).is_none() || has_shift(m, a)
                }
                TermKind::Binary(_, a, b) | TermKind::Concat(a, b) => {
                    has_shift(m, a) || has_shift(m, b)
                }
                TermKind::Unary(_, a)
                | TermKind::Extract(a, _, _)
                | TermKind::ZExt(a, _)
                | TermKind::SExt(a, _) => has_shift(m, a),
                _ => false,
            }
        }
        assert!(!has_shift(&m, out[0]), "shl by const should lower to extract/concat");
    }

    #[test]
    fn redundant_mux_collapses() {
        let mut m = TermManager::new();
        let c = m.fresh_var("c", 1);
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let z = m.fresh_var("z", 8);
        let inner = m.ite(c, x, y);
        let outer = m.ite(c, inner, z);
        let (b, l) = unlimited();
        let (out, _) = simplify_terms(&mut m, &[outer], &b, &l);
        let direct = m.ite(c, x, z);
        assert_eq!(out[0], direct, "nested same-condition mux collapses");
    }

    #[test]
    fn oversized_input_is_skipped_unchanged() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let s = m.add(x, y);
        let (b, _) = unlimited();
        let tiny = SaturationLimits { max_iters: 8, max_nodes: 2 };
        let (out, stats) = simplify_terms(&mut m, &[s], &b, &tiny);
        assert!(!stats.applied);
        assert_eq!(out[0], s);
    }

    #[test]
    fn deadline_mid_simplify_still_returns_equivalent_terms() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let nx = m.not(x);
        let nnx = m.not(nx);
        let both = m.and(nnx, y);
        let goal = m.eq(both, y);
        let budget = Budget::unlimited().with_deadline_in(std::time::Duration::ZERO);
        let (out, stats) = simplify_terms(&mut m, &[goal], &budget, &SaturationLimits::default());
        assert!(stats.applied && !stats.saturated);
        // Equivalence under a concrete environment must survive the
        // partial pass.
        let mut env = Env::new();
        for (var, val) in [(x, 0xA5u64), (y, 0x3Cu64)] {
            let Some(sym) = m.as_var(var) else { panic!() };
            env.set_var(sym, BitVec::from_u64(8, val));
        }
        assert_eq!(env.eval(&m, goal), env.eval(&m, out[0]));
    }

    #[test]
    fn simplification_never_grows_the_node_count() {
        // Regression for the BENCH_owl.json anomaly where "simplify on"
        // *grew* the RV32I term count: extraction may only be adopted
        // when the reachable node count does not increase, so
        // `terms_after <= terms_before` holds for every input. The
        // randomized DAGs below reuse the soundness sweep's shape, which
        // historically produced growing extractions.
        use owl_sat::hash::splitmix64_next as splitmix64;

        for case in 0..256u64 {
            let mut rng = 0xBAD5_EED5u64 ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut m = TermManager::new();
            let vars: Vec<TermId> = (0..4).map(|i| m.fresh_var(format!("v{i}"), 8)).collect();
            let cond = m.fresh_var("c", 1);
            let mut pool: Vec<TermId> = vars.clone();
            for _ in 0..16 {
                let pick =
                    |rng: &mut u64, pool: &[TermId]| pool[(splitmix64(rng) as usize) % pool.len()];
                let a = pick(&mut rng, &pool);
                let b = pick(&mut rng, &pool);
                let t = match splitmix64(&mut rng) % 8 {
                    0 => m.and(a, b),
                    1 => m.or(a, b),
                    2 => m.xor(a, b),
                    3 => m.add(a, b),
                    4 => m.sub(a, b),
                    5 => {
                        let c = m.const_u64(8, splitmix64(&mut rng) % 10);
                        m.shl(a, c)
                    }
                    6 => m.not(a),
                    _ => m.ite(cond, a, b),
                };
                pool.push(t);
            }
            let lhs = *pool.last().unwrap();
            let rhs = pool[(splitmix64(&mut rng) as usize) % pool.len()];
            let root = m.eq(lhs, rhs);
            let before = count_nodes(&m, &[root]);
            let (out, stats) = simplify_terms(
                &mut m,
                &[root],
                &Budget::unlimited(),
                &SaturationLimits::default(),
            );
            let after = count_nodes(&m, &out);
            assert!(
                after <= before,
                "case {case}: simplification grew the term count ({before} -> {after})"
            );
            assert_eq!(stats.nodes_before, before);
            assert_eq!(stats.nodes_after, after);
            assert!(stats.nodes_after <= stats.nodes_before);
        }
    }

    #[test]
    fn randomized_soundness_sweep() {
        // A deterministic randomized harness (256 cases) that mirrors
        // the proptest suite at the workspace root but runs without
        // external dev-dependencies: random term DAGs evaluated under
        // random environments must agree before and after
        // simplification.
        use owl_sat::hash::splitmix64_next as splitmix64;

        for case in 0..256u64 {
            let mut rng = 0xD00D_F00Du64 ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut m = TermManager::new();
            let vars: Vec<TermId> =
                (0..4).map(|i| m.fresh_var(format!("v{i}"), 8)).collect();
            let cond = m.fresh_var("c", 1);
            // Build a random pool of width-8 terms.
            let mut pool: Vec<TermId> = vars.clone();
            for _ in 0..12 {
                let pick =
                    |rng: &mut u64, pool: &[TermId]| pool[(splitmix64(rng) as usize) % pool.len()];
                let a = pick(&mut rng, &pool);
                let b = pick(&mut rng, &pool);
                let t = match splitmix64(&mut rng) % 14 {
                    0 => m.and(a, b),
                    1 => m.or(a, b),
                    2 => m.xor(a, b),
                    3 => m.add(a, b),
                    4 => m.sub(a, b),
                    5 => m.mul(a, b),
                    6 => {
                        let c = m.const_u64(8, splitmix64(&mut rng) % 10);
                        m.shl(a, c)
                    }
                    7 => {
                        let c = m.const_u64(8, splitmix64(&mut rng) % 10);
                        m.lshr(a, c)
                    }
                    8 => {
                        let c = m.const_u64(8, splitmix64(&mut rng) % 10);
                        m.ashr(a, c)
                    }
                    9 => m.not(a),
                    10 => m.ite(cond, a, b),
                    11 => {
                        let hi = m.extract(a, 7, 4);
                        let lo = m.extract(b, 3, 0);
                        m.concat(hi, lo)
                    }
                    12 => {
                        let lo = m.extract(a, 3, 0);
                        m.zext(lo, 8)
                    }
                    _ => {
                        let lo = m.extract(a, 4, 0);
                        m.sext(lo, 8)
                    }
                };
                pool.push(t);
            }
            let root8 = *pool.last().unwrap();
            let rhs = pool[(splitmix64(&mut rng) as usize) % pool.len()];
            let root = match splitmix64(&mut rng) % 3 {
                0 => m.eq(root8, rhs),
                1 => m.ult(root8, rhs),
                _ => m.red_or(root8),
            };
            let (out, _) = simplify_terms(
                &mut m,
                &[root],
                &Budget::unlimited(),
                &SaturationLimits::default(),
            );
            // Compare under several random environments.
            for _ in 0..4 {
                let mut env = Env::new();
                for &v in &vars {
                    let Some(sym) = m.as_var(v) else { panic!() };
                    env.set_var(sym, BitVec::from_u64(8, splitmix64(&mut rng) & 0xFF));
                }
                let Some(csym) = m.as_var(cond) else { panic!() };
                env.set_var(csym, BitVec::from_u64(1, splitmix64(&mut rng) & 1));
                assert_eq!(
                    env.eval(&m, root),
                    env.eval(&m, out[0]),
                    "case {case}: simplification changed term semantics"
                );
            }
        }
    }
}
