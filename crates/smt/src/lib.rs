//! A quantifier-free bitvector (QF_BV + arrays-as-write-lists) SMT layer.
//!
//! This crate stands in for the Rosette → Boolector/CVC4 stack of the
//! paper's implementation. It provides:
//!
//! - a hash-consed term graph ([`TermManager`]) with aggressive rewriting
//!   at construction time, so structurally equal datapath and
//!   specification expressions fold away before any solver is invoked;
//! - a concrete evaluator ([`Model::eval`]) used both for model inspection
//!   and for the counterexample replay step of CEGIS;
//! - a partial evaluator ([`substitute`]) that specializes a term under a
//!   concrete environment while leaving synthesis holes symbolic;
//! - a Tseitin bit-blaster lowering terms to CNF over [`owl_sat`], with
//!   Ackermann expansion for base-array reads (the paper models memories
//!   as an uninterpreted read function plus an association list of
//!   writes); and
//! - a solver facade ([`solve`]) returning rich models, with
//!   certification and simplification as [`CheckOpts`] flags.
//!
//! # Examples
//!
//! ```
//! use owl_bitvec::BitVec;
//! use owl_smt::{solve, SmtResult, TermManager};
//!
//! let mut mgr = TermManager::new();
//! let x = mgr.fresh_var("x", 8);
//! let two = mgr.bv_const(BitVec::from_u64(8, 2));
//! let xx = mgr.add(x, x);
//! let x2 = mgr.mul(x, two);
//! let eq = mgr.eq(xx, x2);
//! let neq = mgr.not(eq);
//! // x + x == 2 * x always, so its negation is unsatisfiable.
//! assert!(matches!(solve(&mut mgr, &[neq], None).result, SmtResult::Unsat));
//! ```

mod blast;
mod digest;
mod eval;
mod manager;
mod print;
mod simplify;
mod solver;
mod subst;

pub use eval::{ArrayValue, Env};
pub use manager::{ArrayId, BinOp, RomId, SymbolId, TermId, TermKind, TermManager, UnOp};
pub use simplify::{count_nodes, dag_cost, simplify_terms, SimplifyStats};
pub use solver::{
    solve, CheckOpts, CheckOutcome, Model, QueryCert, QueryStats, SmtResult, SolveSession,
    SolverConfig,
};
pub use subst::{substitute, substitute_terms};

// The saturation knobs surface in [`SolverConfig`]; re-export them so
// callers can tune limits without a direct `owl_egraph` dependency.
pub use owl_egraph::{SaturationLimits, SaturationReport};

// Resource governance and proof certification: re-exported so
// downstream crates can build budgets and replay proofs without
// depending on `owl_sat` directly.
pub use owl_sat::{
    Budget, CacheFault, CancelFlag, Fault, FaultPlan, Heartbeat, IoFault, ProofChecker, ProofError,
    ServiceFault, ProofLog, StopReason,
};

// Observability: the tracer rides the budget; the reporting API gives
// every stats struct one serialization path.
pub use owl_trace::{Report, Section, Tracer, Value};

// Shared deterministic hashing (splitmix64, FNV-64, CRC-32): the single
// definition all layers use for fingerprints, jitter, and record CRCs.
pub use owl_sat::hash;
