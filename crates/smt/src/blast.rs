//! Tseitin bit-blasting of terms to CNF.
//!
//! Every term lowers to a vector of SAT literals, one per bit (LSB
//! first). Base-array reads get fresh literals plus pairwise Ackermann
//! constraints (`addr_i = addr_j -> data_i = data_j`) added at
//! finalization, which is the eager encoding of the paper's
//! "uninterpreted function for reads" memory model.

use crate::manager::{ArrayId, BinOp, SymbolId, TermId, TermKind, TermManager, UnOp};
use owl_bitvec::BitVec;
use owl_sat::{Lit, Solver};
use std::collections::HashMap;

/// Recorded reads of one base array: (address bits, data bits) pairs.
type ArrayReads = Vec<(Vec<Lit>, Vec<Lit>)>;

/// The owned, manager-independent half of a [`Blaster`]: everything a
/// persistent [`crate::SolveSession`] keeps alive between queries so the
/// shared DAG blasts once and each round appends only new CNF. Detach
/// with [`Blaster::suspend`], re-attach with [`Blaster::resume`].
pub(crate) struct BlastState {
    pub(crate) solver: Solver,
    cache: HashMap<TermId, Vec<Lit>>,
    tru: Lit,
    pub(crate) var_bits: HashMap<SymbolId, Vec<Lit>>,
    pub(crate) selects: HashMap<ArrayId, ArrayReads>,
    read_order: Vec<(ArrayId, usize)>,
    ack_done: usize,
    /// CNF variables the blaster has allocated (the `tru` anchor
    /// included). Unlike `Solver::num_vars`, unaffected by whatever the
    /// solver itself does with the clauses, so an incremental session
    /// and a scratch re-blast report identical sizes.
    pub(crate) gen_vars: u64,
    /// CNF clauses the blaster has emitted (counted before the solver's
    /// own top-level simplification gets to drop or shrink them).
    pub(crate) gen_clauses: u64,
}

impl BlastState {
    /// Fresh state; `certify` enables proof logging on the underlying
    /// SAT solver before any clause (including the constant `tru`
    /// anchor) is added — a partial log certifies nothing.
    pub(crate) fn new(certify: bool) -> Self {
        let mut solver = Solver::new();
        if certify {
            solver.enable_certification();
        }
        let v = solver.new_var();
        let tru = Lit::positive(v);
        solver.add_clause([tru]);
        BlastState {
            solver,
            cache: HashMap::new(),
            tru,
            var_bits: HashMap::new(),
            selects: HashMap::new(),
            read_order: Vec::new(),
            ack_done: 0,
            gen_vars: 1,
            gen_clauses: 1,
        }
    }

    /// Reads the model value of a blasted bit vector (as
    /// [`Blaster::read_bits`], but usable on suspended state).
    pub(crate) fn read_bits(&self, bits: &[Lit]) -> BitVec {
        let values: Vec<bool> =
            bits.iter().map(|&l| self.solver.lit_model(l).unwrap_or(false)).collect();
        BitVec::from_bits_lsb0(&values)
    }
}

pub(crate) struct Blaster<'m> {
    mgr: &'m TermManager,
    pub(crate) solver: Solver,
    cache: HashMap<TermId, Vec<Lit>>,
    /// A literal constrained true, used to encode constant bits.
    tru: Lit,
    /// Bits allocated for each symbolic variable (for model extraction).
    pub(crate) var_bits: HashMap<SymbolId, Vec<Lit>>,
    /// Recorded base-array reads: (address bits, data bits).
    pub(crate) selects: HashMap<ArrayId, ArrayReads>,
    /// Base-array reads in the order they were blasted, as (array, index
    /// into that array's `selects` entry): the schedule for the
    /// prefix-stable incremental Ackermann pass.
    read_order: Vec<(ArrayId, usize)>,
    /// How many entries of `read_order` have been Ackermann-finalized.
    ack_done: usize,
    gen_vars: u64,
    gen_clauses: u64,
}

impl<'m> Blaster<'m> {
    /// Creates a blaster, optionally enabling proof logging on the
    /// underlying SAT solver (before any clause, including the constant
    /// `tru` clause, is added — a partial log certifies nothing).
    pub(crate) fn with_certification(mgr: &'m TermManager, certify: bool) -> Self {
        Blaster::resume(mgr, BlastState::new(certify))
    }

    /// Re-attaches suspended session state to a term manager. The
    /// manager must be the one the state was built against (term ids are
    /// only meaningful per manager).
    pub(crate) fn resume(mgr: &'m TermManager, st: BlastState) -> Self {
        Blaster {
            mgr,
            solver: st.solver,
            cache: st.cache,
            tru: st.tru,
            var_bits: st.var_bits,
            selects: st.selects,
            read_order: st.read_order,
            ack_done: st.ack_done,
            gen_vars: st.gen_vars,
            gen_clauses: st.gen_clauses,
        }
    }

    /// Detaches the owned state for keeping across queries.
    pub(crate) fn suspend(self) -> BlastState {
        BlastState {
            solver: self.solver,
            cache: self.cache,
            tru: self.tru,
            var_bits: self.var_bits,
            selects: self.selects,
            read_order: self.read_order,
            ack_done: self.ack_done,
            gen_vars: self.gen_vars,
            gen_clauses: self.gen_clauses,
        }
    }

    /// Routes every blaster-emitted clause through one counter.
    fn emit(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.gen_clauses += 1;
        self.solver.add_clause(lits);
    }

    fn fls(&self) -> Lit {
        !self.tru
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.tru
        } else {
            self.fls()
        }
    }

    fn fresh(&mut self) -> Lit {
        self.gen_vars += 1;
        Lit::positive(self.solver.new_var())
    }

    fn is_const(&self, l: Lit) -> Option<bool> {
        if l == self.tru {
            Some(true)
        } else if l == !self.tru {
            Some(false)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Gate primitives
    // ------------------------------------------------------------------

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.fls(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.fls();
        }
        let o = self.fresh();
        self.emit([!a, !b, o]);
        self.emit([a, !o]);
        self.emit([b, !o]);
        o
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and_gate(!a, !b)
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return !b,
            (_, Some(true)) => return !a,
            _ => {}
        }
        if a == b {
            return self.fls();
        }
        if a == !b {
            return self.tru;
        }
        let o = self.fresh();
        self.emit([!a, !b, !o]);
        self.emit([a, b, !o]);
        self.emit([a, !b, o]);
        self.emit([!a, b, o]);
        o
    }

    fn xnor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor_gate(a, b)
    }

    fn mux_gate(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        match self.is_const(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        let a = self.and_gate(c, t);
        let b = self.and_gate(!c, e);
        self.or_gate(a, b)
    }

    /// Full adder; returns (sum, carry).
    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(axb, cin);
        let carry = self.or_gate(c1, c2);
        (sum, carry)
    }

    fn and_reduce(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.tru;
        for &l in lits {
            acc = self.and_gate(acc, l);
        }
        acc
    }

    fn or_reduce(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.fls();
        for &l in lits {
            acc = self.or_gate(acc, l);
        }
        acc
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// Unsigned less-than comparator over bit vectors.
    fn ult_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut res = self.fls();
        for (&x, &y) in a.iter().zip(b) {
            // res = ite(x == y, res, y)
            let eq = self.xnor_gate(x, y);
            res = self.mux_gate(eq, res, y);
        }
        res
    }

    fn eq_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let pairs: Vec<Lit> =
            a.iter().zip(b).map(|(&x, &y)| self.xnor_gate(x, y)).collect();
        self.and_reduce(&pairs)
    }

    // ------------------------------------------------------------------
    // Term lowering
    // ------------------------------------------------------------------

    /// Lowers `term` to one literal per bit (LSB first).
    pub(crate) fn blast(&mut self, term: TermId) -> Vec<Lit> {
        if let Some(bits) = self.cache.get(&term) {
            return bits.clone();
        }
        let bits = self.blast_uncached(term);
        debug_assert_eq!(bits.len() as u32, self.mgr.width(term));
        self.cache.insert(term, bits.clone());
        bits
    }

    fn blast_uncached(&mut self, term: TermId) -> Vec<Lit> {
        match self.mgr.kind(term).clone() {
            TermKind::Const(c) => c.bits_lsb0().map(|b| self.const_lit(b)).collect(),
            TermKind::Var(sym) => {
                let w = self.mgr.symbol_width(sym);
                let bits: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                self.var_bits.insert(sym, bits.clone());
                bits
            }
            TermKind::Unary(op, a) => {
                let av = self.blast(a);
                match op {
                    UnOp::Not => av.into_iter().map(|l| !l).collect(),
                    UnOp::Neg => {
                        // ~a + 1
                        let na: Vec<Lit> = av.iter().map(|&l| !l).collect();
                        let zeros = vec![self.fls(); na.len()];
                        self.adder(&na, &zeros, self.tru)
                    }
                    UnOp::RedOr => vec![self.or_reduce(&av)],
                }
            }
            TermKind::Binary(op, a, b) => self.blast_binary(op, a, b),
            TermKind::Ite(c, t, e) => {
                let cv = self.blast(c)[0];
                let tv = self.blast(t);
                let ev = self.blast(e);
                tv.iter().zip(&ev).map(|(&x, &y)| self.mux_gate(cv, x, y)).collect()
            }
            TermKind::Extract(a, high, low) => {
                let av = self.blast(a);
                av[low as usize..=high as usize].to_vec()
            }
            TermKind::Concat(hi, lo) => {
                let mut out = self.blast(lo);
                out.extend(self.blast(hi));
                out
            }
            TermKind::ZExt(a, w) => {
                let mut out = self.blast(a);
                out.resize(w as usize, self.fls());
                out
            }
            TermKind::SExt(a, w) => {
                let mut out = self.blast(a);
                let sign = *out.last().expect("nonzero width");
                out.resize(w as usize, sign);
                out
            }
            TermKind::ArraySelect(arr, addr) => {
                let addr_bits = self.blast(addr);
                let (_, dw) = self.mgr.array_widths(arr);
                let data_bits: Vec<Lit> = (0..dw).map(|_| self.fresh()).collect();
                let reads = self.selects.entry(arr).or_default();
                reads.push((addr_bits, data_bits.clone()));
                let idx = reads.len() - 1;
                self.read_order.push((arr, idx));
                data_bits
            }
            TermKind::RomSelect(rom, addr) => {
                let addr_bits = self.blast(addr);
                let (aw, dw) = self.mgr.rom_widths(rom);
                let size = 1usize << aw;
                let mut table: Vec<BitVec> = self.mgr.rom_data(rom).to_vec();
                table.resize(size, BitVec::zero(dw));
                self.rom_mux(&addr_bits, &table)
            }
        }
    }

    /// Recursive mux tree over the address bits (MSB splits first).
    fn rom_mux(&mut self, addr: &[Lit], table: &[BitVec]) -> Vec<Lit> {
        if table.len() == 1 {
            return table[0].bits_lsb0().map(|b| self.const_lit(b)).collect();
        }
        let half = table.len() / 2;
        let top = addr[addr.len() - 1];
        let rest = &addr[..addr.len() - 1];
        let lo = self.rom_mux(rest, &table[..half]);
        let hi = self.rom_mux(rest, &table[half..]);
        hi.iter().zip(&lo).map(|(&h, &l)| self.mux_gate(top, h, l)).collect()
    }

    fn blast_binary(&mut self, op: BinOp, a: TermId, b: TermId) -> Vec<Lit> {
        let av = self.blast(a);
        let bv = self.blast(b);
        match op {
            BinOp::And => av.iter().zip(&bv).map(|(&x, &y)| self.and_gate(x, y)).collect(),
            BinOp::Or => av.iter().zip(&bv).map(|(&x, &y)| self.or_gate(x, y)).collect(),
            BinOp::Xor => av.iter().zip(&bv).map(|(&x, &y)| self.xor_gate(x, y)).collect(),
            BinOp::Add => self.adder(&av, &bv, self.fls()),
            BinOp::Sub => {
                let nb: Vec<Lit> = bv.iter().map(|&l| !l).collect();
                self.adder(&av, &nb, self.tru)
            }
            BinOp::Mul => {
                let w = av.len();
                let mut acc = vec![self.fls(); w];
                for i in 0..w {
                    if self.is_const(bv[i]) == Some(false) {
                        continue;
                    }
                    // Partial product: (a << i) AND b[i], added into acc.
                    let mut pp = vec![self.fls(); w];
                    for j in 0..w - i {
                        pp[i + j] = self.and_gate(av[j], bv[i]);
                    }
                    acc = self.adder(&acc, &pp, self.fls());
                }
                acc
            }
            BinOp::Shl => self.barrel_shift(&av, &bv, ShiftKind::Left),
            BinOp::Lshr => self.barrel_shift(&av, &bv, ShiftKind::LogicalRight),
            BinOp::Ashr => self.barrel_shift(&av, &bv, ShiftKind::ArithmeticRight),
            BinOp::Eq => vec![self.eq_bits(&av, &bv)],
            BinOp::Ult => vec![self.ult_bits(&av, &bv)],
            BinOp::Ule => {
                let gt = self.ult_bits(&bv, &av);
                vec![!gt]
            }
            BinOp::Slt => {
                // Flip the sign bits, then compare unsigned.
                let mut af = av;
                let mut bf = bv;
                let n = af.len();
                af[n - 1] = !af[n - 1];
                bf[n - 1] = !bf[n - 1];
                vec![self.ult_bits(&af, &bf)]
            }
            BinOp::Sle => {
                let mut af = av;
                let mut bf = bv;
                let n = af.len();
                af[n - 1] = !af[n - 1];
                bf[n - 1] = !bf[n - 1];
                let gt = self.ult_bits(&bf, &af);
                vec![!gt]
            }
        }
    }

    fn barrel_shift(&mut self, a: &[Lit], count: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let fill = match kind {
            ShiftKind::Left | ShiftKind::LogicalRight => self.fls(),
            ShiftKind::ArithmeticRight => a[w - 1],
        };
        let mut acc = a.to_vec();
        // Stages for count bits that shift within the word.
        for (s, &cbit) in count.iter().enumerate() {
            let dist = 1usize.checked_shl(s as u32).unwrap_or(usize::MAX);
            if dist >= w {
                // Any set high count bit pushes everything to the fill.
                acc = acc.iter().map(|&x| self.mux_gate(cbit, fill, x)).collect();
            } else {
                let shifted: Vec<Lit> = (0..w)
                    .map(|i| match kind {
                        ShiftKind::Left => {
                            if i >= dist {
                                acc[i - dist]
                            } else {
                                fill
                            }
                        }
                        ShiftKind::LogicalRight | ShiftKind::ArithmeticRight => {
                            if i + dist < w {
                                acc[i + dist]
                            } else {
                                fill
                            }
                        }
                    })
                    .collect();
                acc = acc
                    .iter()
                    .zip(&shifted)
                    .map(|(&keep, &sh)| self.mux_gate(cbit, sh, keep))
                    .collect();
            }
        }
        acc
    }

    /// Asserts a 1-bit term to be true.
    ///
    /// # Panics
    ///
    /// Panics if `term` is wider than one bit.
    pub(crate) fn assert_true(&mut self, term: TermId) {
        assert_eq!(self.mgr.width(term), 1, "assertions must be 1-bit terms");
        let bits = self.blast(term);
        let lit = bits[0];
        self.emit([lit]);
    }

    /// Adds the pairwise Ackermann constraints for all recorded array
    /// reads. Must be called once after all assertions are blasted and
    /// before solving.
    pub(crate) fn finalize_arrays(&mut self) {
        // Sorted so clause emission (and the aux variables `eq_bits`
        // allocates) never depends on hash-map iteration order: the CNF,
        // and with it the solver's model for don't-care bits, must be
        // identical across runs and thread counts.
        let mut selects: Vec<(ArrayId, ArrayReads)> =
            self.selects.iter().map(|(&a, v)| (a, v.clone())).collect();
        selects.sort_by_key(|&(a, _)| a);
        for (_, reads) in selects {
            for i in 0..reads.len() {
                for j in i + 1..reads.len() {
                    let same_addr = self.eq_bits(&reads[i].0, &reads[j].0);
                    if self.is_const(same_addr) == Some(false) {
                        continue;
                    }
                    for (&d1, &d2) in reads[i].1.iter().zip(&reads[j].1) {
                        // same_addr -> (d1 == d2)
                        self.emit([!same_addr, !d1, d2]);
                        self.emit([!same_addr, d1, !d2]);
                    }
                }
            }
        }
    }

    /// Incremental variant of [`Self::finalize_arrays`]: pairs each read
    /// blasted since the previous call with every earlier read of the
    /// same array, in blast order. Calling it after each batch of
    /// assertions yields exactly the constraints of one flat pass, but
    /// the clause/aux-variable sequence is prefix-stable — finalizing
    /// batches `[A]` then `[A, B]` emits the `[A]` CNF as a prefix, so a
    /// persistent session and a batch-replaying scratch solver allocate
    /// identical variables. (The flat `finalize_arrays` sorts by array
    /// instead and stays the encoding for one-shot `solve`.)
    pub(crate) fn finalize_arrays_incremental(&mut self) {
        while self.ack_done < self.read_order.len() {
            let (arr, j) = self.read_order[self.ack_done];
            self.ack_done += 1;
            for i in 0..j {
                let (addr_i, data_i) = self.selects[&arr][i].clone();
                let (addr_j, data_j) = self.selects[&arr][j].clone();
                let same_addr = self.eq_bits(&addr_i, &addr_j);
                if self.is_const(same_addr) == Some(false) {
                    continue;
                }
                for (&d1, &d2) in data_i.iter().zip(&data_j) {
                    // same_addr -> (d1 == d2)
                    self.emit([!same_addr, !d1, d2]);
                    self.emit([!same_addr, d1, !d2]);
                }
            }
        }
    }

    /// Reads the model value of a blasted bit vector.
    pub(crate) fn read_bits(&self, bits: &[Lit]) -> BitVec {
        let values: Vec<bool> =
            bits.iter().map(|&l| self.solver.lit_model(l).unwrap_or(false)).collect();
        BitVec::from_bits_lsb0(&values)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithmeticRight,
}
