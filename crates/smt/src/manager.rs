//! The hash-consed term graph and its rewriting smart constructors.

use owl_bitvec::BitVec;
use std::collections::HashMap;

/// Identifier of a term in a [`TermManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// Dense index of the term.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a symbolic variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// Dense index of the symbol.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a base (uninterpreted) array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(u32);

impl ArrayId {
    /// Dense index of the array.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a read-only memory (lookup table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RomId(u32);

impl RomId {
    /// Dense index of the ROM.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Unary bitvector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// OR-reduction to a single bit (Oyster's "nonzero is true").
    RedOr,
}

/// Binary bitvector operators. Comparison operators produce 1-bit terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition modulo `2^w`.
    Add,
    /// Subtraction modulo `2^w`.
    Sub,
    /// Multiplication modulo `2^w`.
    Mul,
    /// Left shift (count ≥ width gives 0).
    Shl,
    /// Logical right shift (count ≥ width gives 0).
    Lshr,
    /// Arithmetic right shift (count ≥ width replicates the sign).
    Ashr,
    /// Equality (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Signed less-than (1-bit result).
    Slt,
    /// Signed less-or-equal (1-bit result).
    Sle,
}

impl BinOp {
    /// True for operators whose result is a single bit.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle)
    }

    /// True for commutative operators (operands are sorted for hashing).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Mul | BinOp::Eq
        )
    }
}

/// The shape of a term node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// A constant bitvector.
    Const(BitVec),
    /// A symbolic variable.
    Var(SymbolId),
    /// Unary operator application.
    Unary(UnOp, TermId),
    /// Binary operator application.
    Binary(BinOp, TermId, TermId),
    /// If-then-else; the condition is 1 bit wide.
    Ite(TermId, TermId, TermId),
    /// Bit extraction `[high..=low]`.
    Extract(TermId, u32, u32),
    /// Concatenation (first operand is the high part).
    Concat(TermId, TermId),
    /// Zero extension to the given width.
    ZExt(TermId, u32),
    /// Sign extension to the given width.
    SExt(TermId, u32),
    /// Read from an uninterpreted base array.
    ArraySelect(ArrayId, TermId),
    /// Read from a constant lookup table.
    RomSelect(RomId, TermId),
}

#[derive(Debug, Clone)]
struct TermData {
    kind: TermKind,
    width: u32,
}

#[derive(Debug, Clone)]
struct SymbolInfo {
    name: String,
    width: u32,
}

#[derive(Debug, Clone)]
struct ArrayInfo {
    name: String,
    addr_width: u32,
    data_width: u32,
}

#[derive(Debug, Clone)]
struct RomInfo {
    #[allow(dead_code)]
    name: String,
    addr_width: u32,
    data_width: u32,
    data: Vec<BitVec>,
}

/// Arena and hash-consing table for terms, plus the symbol, array and ROM
/// registries.
///
/// All term construction goes through the `TermManager`'s smart
/// constructors, which fold constants and apply local rewrites, so
/// structurally equal expressions always share a [`TermId`] — the property
/// the CEGIS verifier relies on to discharge trivially-true equivalences
/// without touching the SAT solver.
///
/// `Clone` is cheap enough to snapshot a prepared graph: the parallel
/// synthesis scheduler clones one base manager per instruction task so
/// every task owns an identical arena ([`TermId`]s remain valid across
/// the clone) without sharing mutable state between threads.
#[derive(Debug, Clone, Default)]
pub struct TermManager {
    terms: Vec<TermData>,
    dedup: HashMap<TermKind, TermId>,
    symbols: Vec<SymbolInfo>,
    arrays: Vec<ArrayInfo>,
    roms: Vec<RomInfo>,
}

impl TermManager {
    /// Creates an empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms created.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The kind of a term.
    #[must_use]
    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.terms[t.index()].kind
    }

    /// The bit width of a term.
    #[must_use]
    pub fn width(&self, t: TermId) -> u32 {
        self.terms[t.index()].width
    }

    /// The constant value of a term, if it is a constant.
    #[must_use]
    pub fn as_const(&self, t: TermId) -> Option<&BitVec> {
        match self.kind(t) {
            TermKind::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The symbol of a term, if it is a variable.
    #[must_use]
    pub fn as_var(&self, t: TermId) -> Option<SymbolId> {
        match self.kind(t) {
            TermKind::Var(s) => Some(*s),
            _ => None,
        }
    }

    /// The name of a symbolic variable.
    #[must_use]
    pub fn symbol_name(&self, s: SymbolId) -> &str {
        &self.symbols[s.index()].name
    }

    /// The width of a symbolic variable.
    #[must_use]
    pub fn symbol_width(&self, s: SymbolId) -> u32 {
        self.symbols[s.index()].width
    }

    /// Number of symbols created.
    #[must_use]
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The name of a base array.
    #[must_use]
    pub fn array_name(&self, a: ArrayId) -> &str {
        &self.arrays[a.index()].name
    }

    /// Address and data widths of a base array.
    #[must_use]
    pub fn array_widths(&self, a: ArrayId) -> (u32, u32) {
        let info = &self.arrays[a.index()];
        (info.addr_width, info.data_width)
    }

    /// Address and data widths of a ROM.
    #[must_use]
    pub fn rom_widths(&self, r: RomId) -> (u32, u32) {
        let info = &self.roms[r.index()];
        (info.addr_width, info.data_width)
    }

    /// Contents of a ROM.
    #[must_use]
    pub fn rom_data(&self, r: RomId) -> &[BitVec] {
        &self.roms[r.index()].data
    }

    fn intern(&mut self, kind: TermKind, width: u32) -> TermId {
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.dedup.insert(kind.clone(), id);
        self.terms.push(TermData { kind, width });
        id
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// A constant term.
    pub fn bv_const(&mut self, value: BitVec) -> TermId {
        let width = value.width();
        self.intern(TermKind::Const(value), width)
    }

    /// Convenience: constant from a `u64`.
    pub fn const_u64(&mut self, width: u32, value: u64) -> TermId {
        self.bv_const(BitVec::from_u64(width, value))
    }

    /// The 1-bit constant 1.
    pub fn tru(&mut self) -> TermId {
        self.const_u64(1, 1)
    }

    /// The 1-bit constant 0.
    pub fn fls(&mut self) -> TermId {
        self.const_u64(1, 0)
    }

    /// Creates a fresh symbolic variable. Each call returns a distinct
    /// variable even for identical names (names are for diagnostics).
    pub fn fresh_var(&mut self, name: impl Into<String>, width: u32) -> TermId {
        assert!(width > 0, "variable width must be positive");
        let sym = SymbolId(self.symbols.len() as u32);
        self.symbols.push(SymbolInfo { name: name.into(), width });
        self.intern(TermKind::Var(sym), width)
    }

    /// Creates a fresh uninterpreted base array (the "read UF" of the
    /// paper's memory model).
    pub fn fresh_array(&mut self, name: impl Into<String>, addr_width: u32, data_width: u32) -> ArrayId {
        assert!(addr_width > 0 && data_width > 0, "array widths must be positive");
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayInfo { name: name.into(), addr_width, data_width });
        id
    }

    /// Registers a read-only memory with the given contents. Entries
    /// beyond `data.len()` (up to `2^addr_width`) read as zero.
    ///
    /// # Panics
    ///
    /// Panics if any entry's width differs from `data_width`, or if
    /// `data.len()` exceeds `2^addr_width`.
    pub fn rom(
        &mut self,
        name: impl Into<String>,
        addr_width: u32,
        data_width: u32,
        data: Vec<BitVec>,
    ) -> RomId {
        assert!(addr_width > 0 && addr_width < 32, "ROM address width out of range");
        assert!(
            data.len() as u64 <= 1u64 << addr_width,
            "ROM has more entries than its address space"
        );
        for d in &data {
            assert_eq!(d.width(), data_width, "ROM entry width mismatch");
        }
        let id = RomId(self.roms.len() as u32);
        self.roms.push(RomInfo { name: name.into(), addr_width, data_width, data });
        id
    }

    // ------------------------------------------------------------------
    // Unary operators
    // ------------------------------------------------------------------

    /// Bitwise NOT.
    pub fn not(&mut self, a: TermId) -> TermId {
        if let Some(c) = self.as_const(a) {
            let v = c.not();
            return self.bv_const(v);
        }
        if let TermKind::Unary(UnOp::Not, inner) = *self.kind(a) {
            return inner;
        }
        let w = self.width(a);
        self.intern(TermKind::Unary(UnOp::Not, a), w)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: TermId) -> TermId {
        if let Some(c) = self.as_const(a) {
            let v = c.neg();
            return self.bv_const(v);
        }
        let w = self.width(a);
        self.intern(TermKind::Unary(UnOp::Neg, a), w)
    }

    /// OR-reduction: 1 iff any bit of `a` is set. Identity on 1-bit terms.
    pub fn red_or(&mut self, a: TermId) -> TermId {
        if self.width(a) == 1 {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = BitVec::from_bool(c.is_true());
            return self.bv_const(v);
        }
        self.intern(TermKind::Unary(UnOp::RedOr, a), 1)
    }

    /// Boolean negation of a condition (1-bit). For wider terms, reduces
    /// first.
    pub fn bool_not(&mut self, a: TermId) -> TermId {
        let c = self.red_or(a);
        self.not(c)
    }

    // ------------------------------------------------------------------
    // Binary operators
    // ------------------------------------------------------------------

    fn binary(&mut self, op: BinOp, mut a: TermId, mut b: TermId) -> TermId {
        assert_eq!(
            self.width(a),
            self.width(b),
            "width mismatch in {op:?}: {} vs {}",
            self.width(a),
            self.width(b)
        );
        if op.is_commutative() && a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if let Some(folded) = self.fold_binary(op, a, b) {
            return folded;
        }
        let w = if op.is_predicate() { 1 } else { self.width(a) };
        self.intern(TermKind::Binary(op, a, b), w)
    }

    /// Constant folding and local identities for binary operators.
    fn fold_binary(&mut self, op: BinOp, a: TermId, b: TermId) -> Option<TermId> {
        let ca = self.as_const(a).cloned();
        let cb = self.as_const(b).cloned();
        if let (Some(x), Some(y)) = (&ca, &cb) {
            let v = match op {
                BinOp::And => x.and(y),
                BinOp::Or => x.or(y),
                BinOp::Xor => x.xor(y),
                BinOp::Add => x.add(y),
                BinOp::Sub => x.sub(y),
                BinOp::Mul => x.mul(y),
                BinOp::Shl => x.shl(y),
                BinOp::Lshr => x.lshr(y),
                BinOp::Ashr => x.ashr(y),
                BinOp::Eq => BitVec::from_bool(x == y),
                BinOp::Ult => BitVec::from_bool(x.ult(y)),
                BinOp::Ule => BitVec::from_bool(x.ule(y)),
                BinOp::Slt => BitVec::from_bool(x.slt(y)),
                BinOp::Sle => BitVec::from_bool(x.sle(y)),
            };
            return Some(self.bv_const(v));
        }
        let w = self.width(a);
        match op {
            BinOp::And => {
                if a == b {
                    return Some(a);
                }
                for (c, other) in [(&ca, b), (&cb, a)] {
                    if let Some(c) = c {
                        if c.is_zero() {
                            return Some(self.bv_const(BitVec::zero(w)));
                        }
                        if c.is_ones() {
                            return Some(other);
                        }
                    }
                }
            }
            BinOp::Or => {
                if a == b {
                    return Some(a);
                }
                for (c, other) in [(&ca, b), (&cb, a)] {
                    if let Some(c) = c {
                        if c.is_zero() {
                            return Some(other);
                        }
                        if c.is_ones() {
                            return Some(self.bv_const(BitVec::ones(w)));
                        }
                    }
                }
            }
            BinOp::Xor => {
                if a == b {
                    return Some(self.bv_const(BitVec::zero(w)));
                }
                for (c, other) in [(&ca, b), (&cb, a)] {
                    if let Some(c) = c {
                        if c.is_zero() {
                            return Some(other);
                        }
                        if c.is_ones() {
                            return Some(self.not(other));
                        }
                    }
                }
            }
            BinOp::Add => {
                for (c, other) in [(&ca, b), (&cb, a)] {
                    if let Some(c) = c {
                        if c.is_zero() {
                            return Some(other);
                        }
                    }
                }
            }
            BinOp::Sub => {
                if a == b {
                    return Some(self.bv_const(BitVec::zero(w)));
                }
                if let Some(c) = &cb {
                    if c.is_zero() {
                        return Some(a);
                    }
                }
            }
            BinOp::Mul => {
                for (c, other) in [(&ca, b), (&cb, a)] {
                    if let Some(c) = c {
                        if c.is_zero() {
                            return Some(self.bv_const(BitVec::zero(w)));
                        }
                        if c.is_one() {
                            return Some(other);
                        }
                    }
                }
            }
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                if let Some(c) = &cb {
                    if c.is_zero() {
                        return Some(a);
                    }
                }
                if let Some(c) = &ca {
                    if c.is_zero() && op != BinOp::Ashr {
                        return Some(a);
                    }
                }
            }
            BinOp::Eq => {
                if a == b {
                    return Some(self.tru());
                }
                // For 1-bit terms, x == 1 is x and x == 0 is !x.
                if w == 1 {
                    for (c, other) in [(&ca, b), (&cb, a)] {
                        if let Some(c) = c {
                            return Some(if c.is_one() { other } else { self.not(other) });
                        }
                    }
                }
            }
            BinOp::Ult => {
                if a == b {
                    return Some(self.fls());
                }
                if let Some(c) = &cb {
                    if c.is_zero() {
                        return Some(self.fls()); // nothing is < 0 unsigned
                    }
                }
                if let Some(c) = &ca {
                    if c.is_ones() {
                        return Some(self.fls()); // max is < nothing
                    }
                }
            }
            BinOp::Ule => {
                if a == b {
                    return Some(self.tru());
                }
                if let Some(c) = &ca {
                    if c.is_zero() {
                        return Some(self.tru());
                    }
                }
                if let Some(c) = &cb {
                    if c.is_ones() {
                        return Some(self.tru());
                    }
                }
            }
            BinOp::Slt => {
                if a == b {
                    return Some(self.fls());
                }
            }
            BinOp::Sle => {
                if a == b {
                    return Some(self.tru());
                }
            }
        }
        None
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Xor, a, b)
    }

    /// Addition modulo `2^w`.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Add, a, b)
    }

    /// Subtraction modulo `2^w`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Sub, a, b)
    }

    /// Multiplication modulo `2^w`.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Mul, a, b)
    }

    /// Left shift by a bitvector count.
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Shl, a, b)
    }

    /// Logical right shift by a bitvector count.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Lshr, a, b)
    }

    /// Arithmetic right shift by a bitvector count.
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ashr, a, b)
    }

    /// Equality (1-bit result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Eq, a, b)
    }

    /// Disequality (1-bit result).
    pub fn neq(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ult, a, b)
    }

    /// Unsigned less-or-equal (1-bit result).
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ule, a, b)
    }

    /// Unsigned greater-than (1-bit result).
    pub fn ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ult, b, a)
    }

    /// Unsigned greater-or-equal (1-bit result).
    pub fn uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ule, b, a)
    }

    /// Signed less-than (1-bit result).
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Slt, a, b)
    }

    /// Signed less-or-equal (1-bit result).
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Sle, a, b)
    }

    /// Rotate left by a bitvector count, built from shifts
    /// (`rol(x, n) = (x << n%w) | (x >> (w - n%w)%w)`).
    pub fn rol(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        let wc = self.const_u64(w, u64::from(w));
        let n = self.urem_const_width(b, w);
        let left = self.shl(a, n);
        let back = self.sub(wc, n);
        let back = self.urem_const_width(back, w);
        let right = self.lshr(a, back);
        self.or(left, right)
    }

    /// Rotate right by a bitvector count, built from shifts.
    pub fn ror(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        let wc = self.const_u64(w, u64::from(w));
        let n = self.urem_const_width(b, w);
        let left_amt = self.sub(wc, n);
        let left_amt = self.urem_const_width(left_amt, w);
        let left = self.shl(a, left_amt);
        let right = self.lshr(a, n);
        self.or(left, right)
    }

    /// `b mod w` for a constant modulus `w`; uses masking when `w` is a
    /// power of two (the common case for rotates).
    fn urem_const_width(&mut self, b: TermId, w: u32) -> TermId {
        if w.is_power_of_two() {
            let mask = self.const_u64(self.width(b), u64::from(w - 1));
            self.and(b, mask)
        } else {
            // General case: b - (b / w) * w is unavailable without
            // division; build a comparison chain instead. Rotate counts in
            // practice are small constants, so fold if constant.
            if let Some(c) = self.as_const(b) {
                let r = c.to_u64().map_or(0, |v| v % u64::from(w));
                return self.const_u64(self.width(b), r);
            }
            panic!("symbolic rotate count requires a power-of-two width, got {w}");
        }
    }

    // ------------------------------------------------------------------
    // Structural operators
    // ------------------------------------------------------------------

    /// If-then-else over a 1-bit condition. Wider conditions are
    /// OR-reduced first (Oyster's "nonzero is true").
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        let cond = self.red_or(cond);
        assert_eq!(
            self.width(then),
            self.width(els),
            "ite branch width mismatch: {} vs {}",
            self.width(then),
            self.width(els)
        );
        if let Some(c) = self.as_const(cond) {
            return if c.is_true() { then } else { els };
        }
        if then == els {
            return then;
        }
        let w = self.width(then);
        if w == 1 {
            let (ct, ce) = (self.as_const(then).cloned(), self.as_const(els).cloned());
            match (ct, ce) {
                // ite(c, 1, 0) = c ; ite(c, 0, 1) = !c
                (Some(t), Some(e)) if t.is_one() && e.is_zero() => return cond,
                (Some(t), Some(e)) if t.is_zero() && e.is_one() => return self.not(cond),
                _ => {}
            }
        }
        self.intern(TermKind::Ite(cond, then, els), w)
    }

    /// Extracts bits `high..=low`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid for the operand's width.
    pub fn extract(&mut self, a: TermId, high: u32, low: u32) -> TermId {
        let w = self.width(a);
        assert!(high >= low && high < w, "bad extract [{high}:{low}] on width {w}");
        if low == 0 && high == w - 1 {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = c.extract(high, low);
            return self.bv_const(v);
        }
        match *self.kind(a) {
            // extract of extract composes.
            TermKind::Extract(inner, _, ilow) => {
                return self.extract(inner, ilow + high, ilow + low);
            }
            // extract of concat routes to the relevant side when possible.
            TermKind::Concat(hi, lo) => {
                let lw = self.width(lo);
                if high < lw {
                    return self.extract(lo, high, low);
                }
                if low >= lw {
                    return self.extract(hi, high - lw, low - lw);
                }
            }
            // extract of zext reads zeros or the inner term.
            TermKind::ZExt(inner, _) => {
                let iw = self.width(inner);
                if high < iw {
                    return self.extract(inner, high, low);
                }
                if low >= iw {
                    return self.bv_const(BitVec::zero(high - low + 1));
                }
            }
            // extract distributes over ite (cheap: shares subterms).
            TermKind::Ite(c, t, e) => {
                let te = self.extract(t, high, low);
                let ee = self.extract(e, high, low);
                return self.ite(c, te, ee);
            }
            _ => {}
        }
        self.intern(TermKind::Extract(a, high, low), high - low + 1)
    }

    /// Concatenation: `high` becomes the upper bits.
    pub fn concat(&mut self, high: TermId, low: TermId) -> TermId {
        if let (Some(h), Some(l)) = (self.as_const(high), self.as_const(low)) {
            let v = h.concat(l);
            return self.bv_const(v);
        }
        let w = self.width(high) + self.width(low);
        self.intern(TermKind::Concat(high, low), w)
    }

    /// Concatenates many parts, first element highest.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat_many(&mut self, parts: &[TermId]) -> TermId {
        assert!(!parts.is_empty(), "concat_many of no parts");
        let mut acc = parts[0];
        for &p in &parts[1..] {
            acc = self.concat(acc, p);
        }
        acc
    }

    /// Zero extension to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is below the operand's width.
    pub fn zext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        assert!(width >= w, "zext to {width} below operand width {w}");
        if width == w {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = c.zext(width);
            return self.bv_const(v);
        }
        self.intern(TermKind::ZExt(a, width), width)
    }

    /// Sign extension to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is below the operand's width.
    pub fn sext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        assert!(width >= w, "sext to {width} below operand width {w}");
        if width == w {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = c.sext(width);
            return self.bv_const(v);
        }
        self.intern(TermKind::SExt(a, width), width)
    }

    /// Read from an uninterpreted base array.
    ///
    /// # Panics
    ///
    /// Panics if the address width does not match the array.
    pub fn array_select(&mut self, array: ArrayId, addr: TermId) -> TermId {
        let (aw, dw) = self.array_widths(array);
        assert_eq!(self.width(addr), aw, "array address width mismatch");
        self.intern(TermKind::ArraySelect(array, addr), dw)
    }

    /// Read from a ROM; folds to a constant when the address is concrete.
    ///
    /// # Panics
    ///
    /// Panics if the address width does not match the ROM.
    pub fn rom_select(&mut self, rom: RomId, addr: TermId) -> TermId {
        let (aw, dw) = self.rom_widths(rom);
        assert_eq!(self.width(addr), aw, "ROM address width mismatch");
        if let Some(c) = self.as_const(addr) {
            let idx = c.to_u64().expect("ROM address fits in u64") as usize;
            let v = self
                .roms[rom.index()]
                .data
                .get(idx)
                .cloned()
                .unwrap_or_else(|| BitVec::zero(dw));
            return self.bv_const(v);
        }
        self.intern(TermKind::RomSelect(rom, addr), dw)
    }

    // ------------------------------------------------------------------
    // Boolean convenience (all over 1-bit terms)
    // ------------------------------------------------------------------

    /// N-ary AND over conditions; empty input gives true.
    pub fn and_many(&mut self, conds: &[TermId]) -> TermId {
        let mut acc = self.tru();
        for &c in conds {
            acc = self.and(acc, c);
        }
        acc
    }

    /// N-ary OR over conditions; empty input gives false.
    pub fn or_many(&mut self, conds: &[TermId]) -> TermId {
        let mut acc = self.fls();
        for &c in conds {
            acc = self.or(acc, c);
        }
        acc
    }

    /// Logical implication `a -> b` over 1-bit terms.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.bool_not(a);
        self.or(na, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> TermManager {
        TermManager::new()
    }

    #[test]
    fn hash_consing_shares_terms() {
        let mut m = mgr();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let a = m.add(x, y);
        let b = m.add(y, x); // commutative normalization
        assert_eq!(a, b);
        let c1 = m.const_u64(8, 42);
        let c2 = m.const_u64(8, 42);
        assert_eq!(c1, c2);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut m = mgr();
        let a = m.fresh_var("x", 8);
        let b = m.fresh_var("x", 8);
        assert_ne!(a, b);
    }

    #[test]
    fn constant_folding() {
        let mut m = mgr();
        let a = m.const_u64(8, 200);
        let b = m.const_u64(8, 100);
        assert_eq!({ let __t = m.add(a, b); m.as_const(__t) }.unwrap().to_u64(), Some(44));
        assert_eq!({ let __t = m.ult(b, a); m.as_const(__t) }.unwrap().to_u64(), Some(1));
        assert_eq!({ let __t = m.slt(a, b); m.as_const(__t) }.unwrap().to_u64(), Some(1)); // 200 is negative
    }

    #[test]
    fn identity_rewrites() {
        let mut m = mgr();
        let x = m.fresh_var("x", 8);
        let zero = m.const_u64(8, 0);
        let ones = m.const_u64(8, 0xFF);
        assert_eq!(m.add(x, zero), x);
        assert_eq!(m.and(x, ones), x);
        assert_eq!(m.and(x, zero), zero);
        assert_eq!(m.or(x, zero), x);
        assert_eq!(m.xor(x, zero), x);
        assert_eq!(m.xor(x, x), zero);
        assert_eq!(m.sub(x, x), zero);
        let t = m.eq(x, x);
        assert_eq!(m.as_const(t).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn not_not_cancels() {
        let mut m = mgr();
        let x = m.fresh_var("x", 8);
        let n = m.not(x);
        assert_eq!(m.not(n), x);
    }

    #[test]
    fn ite_rewrites() {
        let mut m = mgr();
        let c = m.fresh_var("c", 1);
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let t = m.tru();
        let f = m.fls();
        assert_eq!(m.ite(t, x, y), x);
        assert_eq!(m.ite(f, x, y), y);
        assert_eq!(m.ite(c, x, x), x);
        assert_eq!(m.ite(c, t, f), c);
        let one1 = m.tru();
        let nc = m.ite(c, f, one1);
        assert_eq!(nc, m.not(c));
    }

    #[test]
    fn extract_rewrites() {
        let mut m = mgr();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        // Full-range extract is identity.
        assert_eq!(m.extract(x, 7, 0), x);
        // Extract of concat routes.
        let c = m.concat(x, y);
        assert_eq!(m.extract(c, 15, 8), x);
        assert_eq!(m.extract(c, 7, 0), y);
        // Extract of extract composes.
        let e = m.extract(x, 6, 1);
        let ee = m.extract(e, 3, 2);
        assert_eq!(ee, m.extract(x, 4, 3));
        // Extract of zext high part is zero.
        let z = m.zext(x, 16);
        let hi = m.extract(z, 15, 8);
        assert_eq!(m.as_const(hi).unwrap().to_u64(), Some(0));
        assert_eq!(m.extract(z, 7, 0), x);
    }

    #[test]
    fn predicate_widths() {
        let mut m = mgr();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        assert_eq!({ let __t = m.eq(x, y); m.width(__t) }, 1);
        assert_eq!({ let __t = m.ult(x, y); m.width(__t) }, 1);
        assert_eq!({ let __t = m.add(x, y); m.width(__t) }, 8);
    }

    #[test]
    fn eq_on_one_bit_simplifies() {
        let mut m = mgr();
        let x = m.fresh_var("x", 1);
        let t = m.tru();
        let f = m.fls();
        assert_eq!(m.eq(x, t), x);
        assert_eq!(m.eq(x, f), m.not(x));
    }

    #[test]
    fn rom_concrete_fold() {
        let mut m = mgr();
        let table = vec![
            BitVec::from_u64(8, 10),
            BitVec::from_u64(8, 20),
            BitVec::from_u64(8, 30),
        ];
        let r = m.rom("sbox", 2, 8, table);
        let a1 = m.const_u64(2, 1);
        assert_eq!({ let __t = m.rom_select(r, a1); m.as_const(__t) }.unwrap().to_u64(), Some(20));
        // Out-of-range entries read as zero.
        let a3 = m.const_u64(2, 3);
        assert_eq!({ let __t = m.rom_select(r, a3); m.as_const(__t) }.unwrap().to_u64(), Some(0));
        // Symbolic select stays symbolic.
        let s = m.fresh_var("a", 2);
        assert!({ let __t = m.rom_select(r, s); m.as_const(__t) }.is_none());
    }

    #[test]
    fn rol_ror_constant_folds() {
        let mut m = mgr();
        let x = m.const_u64(8, 0b1000_0001);
        let one = m.const_u64(8, 1);
        assert_eq!({ let __t = m.rol(x, one); m.as_const(__t) }.unwrap().to_u64(), Some(0b0000_0011));
        assert_eq!({ let __t = m.ror(x, one); m.as_const(__t) }.unwrap().to_u64(), Some(0b1100_0000));
        // Rotate by zero is identity even symbolically.
        let y = m.fresh_var("y", 8);
        let z = m.const_u64(8, 0);
        assert_eq!(m.rol(y, z), y);
    }

    #[test]
    fn bool_helpers() {
        let mut m = mgr();
        let a = m.fresh_var("a", 1);
        let t = m.tru();
        let f = m.fls();
        assert_eq!(m.and_many(&[]), t);
        assert_eq!(m.or_many(&[]), f);
        assert_eq!(m.and_many(&[a, t]), a);
        assert_eq!(m.implies(f, a), t);
        assert_eq!(m.implies(t, a), a);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn binary_width_mismatch_panics() {
        let mut m = mgr();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 9);
        let _ = m.add(x, y);
    }

    #[test]
    fn array_select_widths() {
        let mut m = mgr();
        let arr = m.fresh_array("mem", 5, 32);
        let addr = m.fresh_var("a", 5);
        let r = m.array_select(arr, addr);
        assert_eq!(m.width(r), 32);
        // Same address gives the same term (functional consistency for free).
        assert_eq!(m.array_select(arr, addr), r);
    }
}
