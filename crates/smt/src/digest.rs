//! Structural fingerprints of term DAGs.
//!
//! The synthesis cache keys entries by the *content* of a prepared
//! instruction's verification conditions, not by the identity of the
//! `TermManager` that holds them: two managers that build the same terms
//! in a different interning order must produce the same digest, and any
//! semantic edit — a changed constant, operator, width, symbol name, or
//! ROM table — must change it. [`TermManager::term_digest`] walks the
//! DAG once per shared node (memoized, iterative, so deep chains cannot
//! overflow the stack) and folds each node's kind tag, width, operand
//! digests, and leaf payloads into a salted FNV-64 stream.
//!
//! Symbols, arrays, and ROMs are digested by *name* (and, for ROMs,
//! their full contents), never by index — indices depend on interning
//! order, names carry the meaning. The digest is not cryptographic;
//! consumers that cannot tolerate a collision must re-verify whatever
//! they fetch under the key (the cache's verify-on-hit rule).

use crate::manager::{RomId, TermId, TermKind, TermManager};
use owl_sat::hash::Fnv64;
use std::collections::HashMap;

impl TermManager {
    /// A salted structural digest of the DAG rooted at `roots`.
    ///
    /// The digest depends on the order of `roots` (a condition list is
    /// ordered data) and on `salt`, so callers can derive independent
    /// streams over the same terms — e.g. the two halves of a 128-bit
    /// cache key.
    #[must_use]
    pub fn term_digest(&self, roots: &[TermId], salt: u64) -> u64 {
        let mut memo: HashMap<TermId, u64> = HashMap::new();
        let mut roms: HashMap<RomId, u64> = HashMap::new();
        let mut out = Fnv64::with_salt(salt);
        out.update((roots.len() as u64).to_le_bytes());
        for &root in roots {
            let d = self.node_digest(root, salt, &mut memo, &mut roms);
            out.update(d.to_le_bytes());
        }
        out.finish()
    }

    fn node_digest(
        &self,
        root: TermId,
        salt: u64,
        memo: &mut HashMap<TermId, u64>,
        roms: &mut HashMap<RomId, u64>,
    ) -> u64 {
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if memo.contains_key(&t) {
                stack.pop();
                continue;
            }
            let mut kids = [None; 3];
            match *self.kind(t) {
                TermKind::Const(_) | TermKind::Var(_) => {}
                TermKind::Unary(_, a)
                | TermKind::Extract(a, _, _)
                | TermKind::ZExt(a, _)
                | TermKind::SExt(a, _)
                | TermKind::ArraySelect(_, a)
                | TermKind::RomSelect(_, a) => kids[0] = Some(a),
                TermKind::Binary(_, a, b) | TermKind::Concat(a, b) => {
                    kids[0] = Some(a);
                    kids[1] = Some(b);
                }
                TermKind::Ite(c, a, b) => {
                    kids[0] = Some(c);
                    kids[1] = Some(a);
                    kids[2] = Some(b);
                }
            }
            let mut ready = true;
            for kid in kids.into_iter().flatten() {
                if !memo.contains_key(&kid) {
                    stack.push(kid);
                    ready = false;
                }
            }
            if !ready {
                continue;
            }
            stack.pop();
            let mut h = Fnv64::with_salt(salt);
            h.update(self.width(t).to_le_bytes());
            match *self.kind(t) {
                TermKind::Const(ref c) => {
                    h.field("const");
                    h.field(c.to_string());
                }
                TermKind::Var(s) => {
                    h.field("var");
                    h.field(self.symbol_name(s));
                }
                TermKind::Unary(op, a) => {
                    h.field("unary");
                    h.field(format!("{op:?}"));
                    h.update(memo[&a].to_le_bytes());
                }
                TermKind::Binary(op, a, b) => {
                    h.field("binary");
                    h.field(format!("{op:?}"));
                    h.update(memo[&a].to_le_bytes());
                    h.update(memo[&b].to_le_bytes());
                }
                TermKind::Ite(c, a, b) => {
                    h.field("ite");
                    h.update(memo[&c].to_le_bytes());
                    h.update(memo[&a].to_le_bytes());
                    h.update(memo[&b].to_le_bytes());
                }
                TermKind::Extract(a, hi, lo) => {
                    h.field("extract");
                    h.update(hi.to_le_bytes());
                    h.update(lo.to_le_bytes());
                    h.update(memo[&a].to_le_bytes());
                }
                TermKind::Concat(a, b) => {
                    h.field("concat");
                    h.update(memo[&a].to_le_bytes());
                    h.update(memo[&b].to_le_bytes());
                }
                TermKind::ZExt(a, w) => {
                    h.field("zext");
                    h.update(w.to_le_bytes());
                    h.update(memo[&a].to_le_bytes());
                }
                TermKind::SExt(a, w) => {
                    h.field("sext");
                    h.update(w.to_le_bytes());
                    h.update(memo[&a].to_le_bytes());
                }
                TermKind::ArraySelect(arr, a) => {
                    h.field("array");
                    h.field(self.array_name(arr));
                    h.update(memo[&a].to_le_bytes());
                }
                TermKind::RomSelect(rom, a) => {
                    let rd = *roms
                        .entry(rom)
                        .or_insert_with(|| self.rom_digest(rom, salt));
                    h.field("rom");
                    h.update(rd.to_le_bytes());
                    h.update(memo[&a].to_le_bytes());
                }
            }
            memo.insert(t, h.finish());
        }
        memo[&root]
    }

    /// Digest of a ROM's shape and full contents; memoized per ROM by
    /// the caller because tables can hold thousands of entries.
    fn rom_digest(&self, rom: RomId, salt: u64) -> u64 {
        let (addr_w, data_w) = self.rom_widths(rom);
        let mut h = Fnv64::with_salt(salt);
        h.update(addr_w.to_le_bytes());
        h.update(data_w.to_le_bytes());
        for entry in self.rom_data(rom) {
            h.field(entry.to_string());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::manager::TermManager;
    
    #[test]
    fn equal_structure_across_managers_digests_equal() {
        // Build the same expression in two managers with different
        // interning histories (extra unrelated terms shift the indices).
        let build = |mgr: &mut TermManager, noise: bool| {
            if noise {
                let junk = mgr.fresh_var("junk", 17);
                let _ = mgr.not(junk);
            }
            let a = mgr.fresh_var("a", 8);
            let b = mgr.fresh_var("b", 8);
            let c = mgr.const_u64(8, 5);
            let sum = mgr.add(a, b);
            mgr.eq(sum, c)
        };
        let mut m1 = TermManager::new();
        let r1 = build(&mut m1, false);
        let mut m2 = TermManager::new();
        let r2 = build(&mut m2, true);
        assert_eq!(m1.term_digest(&[r1], 7), m2.term_digest(&[r2], 7));
    }

    #[test]
    fn semantic_edits_change_the_digest() {
        let mut m = TermManager::new();
        let a = m.fresh_var("a", 8);
        let b = m.fresh_var("b", 8);
        let base = m.add(a, b);
        let other_op = m.and(a, b);
        let swapped = {
            let a2 = m.fresh_var("b", 8);
            let b2 = m.fresh_var("a", 8);
            m.add(a2, b2)
        };
        let d = |t| m.term_digest(&[t], 0);
        assert_ne!(d(base), d(other_op));
        assert_ne!(d(base), d(swapped));
        // A renamed variable changes the digest even at the same index.
        let mut m2 = TermManager::new();
        let a2 = m2.fresh_var("a_renamed", 8);
        let b2 = m2.fresh_var("b", 8);
        let renamed = m2.add(a2, b2);
        assert_ne!(m.term_digest(&[base], 0), m2.term_digest(&[renamed], 0));
    }

    #[test]
    fn widths_constants_and_root_order_matter() {
        let mut m = TermManager::new();
        let narrow = m.fresh_var("x", 8);
        let wide = m.fresh_var("x", 16);
        assert_ne!(m.term_digest(&[narrow], 0), m.term_digest(&[wide], 0));
        let five = m.const_u64(8, 5);
        let six = m.const_u64(8, 6);
        assert_ne!(m.term_digest(&[five], 0), m.term_digest(&[six], 0));
        assert_ne!(
            m.term_digest(&[five, six], 0),
            m.term_digest(&[six, five], 0)
        );
        assert_ne!(m.term_digest(&[five], 0), m.term_digest(&[five, five], 0));
    }

    #[test]
    fn salt_derives_independent_streams() {
        let mut m = TermManager::new();
        let a = m.fresh_var("a", 8);
        let b = m.fresh_var("b", 8);
        let t = m.mul(a, b);
        assert_eq!(m.term_digest(&[t], 1), m.term_digest(&[t], 1));
        assert_ne!(m.term_digest(&[t], 1), m.term_digest(&[t], 2));
    }

    #[test]
    fn deep_chains_do_not_overflow() {
        let mut m = TermManager::new();
        let one = m.const_u64(8, 1);
        let mut t = m.fresh_var("x", 8);
        for _ in 0..200_000 {
            t = m.add(t, one);
        }
        // Just has to terminate without blowing the stack.
        let _ = m.term_digest(&[t], 0);
    }
}
