//! S-expression pretty-printing of terms, for diagnostics and tests.

use crate::manager::{BinOp, TermId, TermKind, TermManager, UnOp};
use std::fmt::Write as _;

impl TermManager {
    /// Renders a term as an s-expression (shared subterms are repeated).
    ///
    /// Intended for diagnostics; deep terms are printed with a recursion
    /// cap and elided with `...` beyond it.
    #[must_use]
    pub fn display_term(&self, term: TermId) -> String {
        let mut out = String::new();
        self.write_term(&mut out, term, 0);
        out
    }

    fn write_term(&self, out: &mut String, term: TermId, depth: u32) {
        if depth > 64 {
            out.push_str("...");
            return;
        }
        match self.kind(term) {
            TermKind::Const(c) => {
                let _ = write!(out, "{c}");
            }
            TermKind::Var(s) => {
                let _ = write!(out, "{}#{}", self.symbol_name(*s), s.index());
            }
            TermKind::Unary(op, a) => {
                let name = match op {
                    UnOp::Not => "bvnot",
                    UnOp::Neg => "bvneg",
                    UnOp::RedOr => "redor",
                };
                let _ = write!(out, "({name} ");
                self.write_term(out, *a, depth + 1);
                out.push(')');
            }
            TermKind::Binary(op, a, b) => {
                let name = match op {
                    BinOp::And => "bvand",
                    BinOp::Or => "bvor",
                    BinOp::Xor => "bvxor",
                    BinOp::Add => "bvadd",
                    BinOp::Sub => "bvsub",
                    BinOp::Mul => "bvmul",
                    BinOp::Shl => "bvshl",
                    BinOp::Lshr => "bvlshr",
                    BinOp::Ashr => "bvashr",
                    BinOp::Eq => "=",
                    BinOp::Ult => "bvult",
                    BinOp::Ule => "bvule",
                    BinOp::Slt => "bvslt",
                    BinOp::Sle => "bvsle",
                };
                let _ = write!(out, "({name} ");
                self.write_term(out, *a, depth + 1);
                out.push(' ');
                self.write_term(out, *b, depth + 1);
                out.push(')');
            }
            TermKind::Ite(c, t, e) => {
                out.push_str("(ite ");
                self.write_term(out, *c, depth + 1);
                out.push(' ');
                self.write_term(out, *t, depth + 1);
                out.push(' ');
                self.write_term(out, *e, depth + 1);
                out.push(')');
            }
            TermKind::Extract(a, high, low) => {
                let _ = write!(out, "((extract {high} {low}) ");
                self.write_term(out, *a, depth + 1);
                out.push(')');
            }
            TermKind::Concat(hi, lo) => {
                out.push_str("(concat ");
                self.write_term(out, *hi, depth + 1);
                out.push(' ');
                self.write_term(out, *lo, depth + 1);
                out.push(')');
            }
            TermKind::ZExt(a, w) => {
                let _ = write!(out, "((zero_extend {w}) ");
                self.write_term(out, *a, depth + 1);
                out.push(')');
            }
            TermKind::SExt(a, w) => {
                let _ = write!(out, "((sign_extend {w}) ");
                self.write_term(out, *a, depth + 1);
                out.push(')');
            }
            TermKind::ArraySelect(arr, addr) => {
                let _ = write!(out, "(select {} ", self.array_name(*arr));
                self.write_term(out, *addr, depth + 1);
                out.push(')');
            }
            TermKind::RomSelect(rom, addr) => {
                let _ = write!(out, "(rom-select rom{} ", rom.index());
                self.write_term(out, *addr, depth + 1);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_sexprs() {
        let mut m = TermManager::new();
        let x = m.fresh_var("x", 8);
        let y = m.fresh_var("y", 8);
        let t = m.add(x, y);
        assert_eq!(m.display_term(t), "(bvadd x#0 y#1)");
        let c = m.const_u64(8, 255);
        assert_eq!(m.display_term(c), "8'xff");
        let e = m.extract(x, 3, 1);
        assert_eq!(m.display_term(e), "((extract 3 1) x#0)");
    }
}
