//! Extended solver-facade tests: algebraic validities, term printing
//! coverage, and adversarial bit-blasting cases.

use owl_bitvec::BitVec;
use owl_smt::{solve, SmtResult, TermManager};

fn valid(mgr: &mut TermManager, negated_claim: owl_smt::TermId) -> bool {
    solve(mgr, &[negated_claim], None).result.is_unsat()
}

#[test]
fn de_morgan_laws_hold() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 16);
    let y = m.fresh_var("y", 16);
    let lhs = {
        let c = m.and(x, y);
        m.not(c)
    };
    let rhs = {
        let nx = m.not(x);
        let ny = m.not(y);
        m.or(nx, ny)
    };
    let bad = m.neq(lhs, rhs);
    assert!(valid(&mut m, bad));
}

#[test]
fn distributivity_of_and_over_or() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 12);
    let y = m.fresh_var("y", 12);
    let z = m.fresh_var("z", 12);
    let lhs = {
        let o = m.or(y, z);
        m.and(x, o)
    };
    let rhs = {
        let a = m.and(x, y);
        let b = m.and(x, z);
        m.or(a, b)
    };
    let bad = m.neq(lhs, rhs);
    assert!(valid(&mut m, bad));
}

#[test]
fn two_complement_negation_identity() {
    // -x == ~x + 1
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 24);
    let neg = m.neg(x);
    let via_not = {
        let n = m.not(x);
        let one = m.const_u64(24, 1);
        m.add(n, one)
    };
    let bad = m.neq(neg, via_not);
    assert!(valid(&mut m, bad));
}

#[test]
fn shift_compositions() {
    // (x << 3) >> 3 keeps the low bits: equals x & 0x1FFF... for w=16:
    // (x << 3) >> 3 == x & 0x1FFF.
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 16);
    let three = m.const_u64(16, 3);
    let mask = m.const_u64(16, 0x1FFF);
    let shl = m.shl(x, three);
    let back = m.lshr(shl, three);
    let masked = m.and(x, mask);
    let bad = m.neq(back, masked);
    assert!(valid(&mut m, bad));
}

#[test]
fn signed_comparison_antisymmetry() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 10);
    let y = m.fresh_var("y", 10);
    // slt(x,y) && slt(y,x) is unsatisfiable.
    let a = m.slt(x, y);
    let b = m.slt(y, x);
    let both = m.and(a, b);
    assert!(solve(&mut m, &[both], None).result.is_unsat());
    // and !slt(x,y) && !slt(y,x) implies x == y.
    let na = m.bool_not(a);
    let nb = m.bool_not(b);
    let ne = m.neq(x, y);
    assert!(solve(&mut m, &[na, nb, ne], None).result.is_unsat());
}

#[cfg_attr(debug_assertions, ignore = "heavy bit-blasting; run in release")]
#[test]
fn rotate_composition_identity() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 16);
    let n = m.fresh_var("n", 16);
    let r = m.rol(x, n);
    let back = m.ror(r, n);
    let bad = m.neq(back, x);
    assert!(valid(&mut m, bad));
}

#[test]
fn sub_is_add_of_negation() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 20);
    let y = m.fresh_var("y", 20);
    let sub = m.sub(x, y);
    let ny = m.neg(y);
    let addneg = m.add(x, ny);
    let bad = m.neq(sub, addneg);
    assert!(valid(&mut m, bad));
}

#[cfg_attr(debug_assertions, ignore = "heavy bit-blasting; run in release")]
#[test]
fn mul_commutes_and_distributes() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 5);
    let y = m.fresh_var("y", 5);
    let z = m.fresh_var("z", 5);
    // x*(y+z) == x*y + x*z
    let lhs = {
        let s = m.add(y, z);
        m.mul(x, s)
    };
    let rhs = {
        let a = m.mul(x, y);
        let b = m.mul(x, z);
        m.add(a, b)
    };
    let bad = m.neq(lhs, rhs);
    assert!(valid(&mut m, bad));
}

#[test]
fn display_covers_all_node_kinds() {
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 8);
    let y = m.fresh_var("y", 8);
    let arr = m.fresh_array("mem", 8, 8);
    let rom = m.rom("tbl", 2, 8, vec![BitVec::zero(8); 4]);

    let nodes = vec![
        m.const_u64(8, 0xAB),
        m.not(x),
        m.neg(x),
        {
            let wide = m.concat(x, y);
            m.red_or(wide)
        },
        m.add(x, y),
        m.slt(x, y),
        {
            let c = m.eq(x, y);
            m.ite(c, x, y)
        },
        m.extract(x, 5, 1),
        m.concat(x, y),
        m.zext(x, 16),
        m.sext(x, 16),
        m.array_select(arr, x),
        {
            let a2 = m.extract(x, 1, 0);
            m.rom_select(rom, a2)
        },
    ];
    for n in nodes {
        let s = m.display_term(n);
        assert!(!s.is_empty());
    }
    // Specific spot checks.
    let sel = m.array_select(arr, x);
    assert_eq!(m.display_term(sel), "(select mem x#0)");
    let neg = m.neg(x);
    assert_eq!(m.display_term(neg), "(bvneg x#0)");
}

#[test]
fn unsat_core_like_behaviour_under_budget() {
    // With an absurdly small budget hard instances report Unknown, and
    // re-running without a budget gives a definite answer.
    let mut m = TermManager::new();
    let x = m.fresh_var("x", 20);
    let y = m.fresh_var("y", 20);
    let prod = m.mul(x, y);
    let c = m.const_u64(20, 0xBEEF1);
    let hit = m.eq(prod, c);
    let two = m.const_u64(20, 2);
    let nx = m.uge(x, two);
    let ny = m.uge(y, two);
    match solve(&mut m, &[hit, nx, ny], Some(2)).result {
        SmtResult::Unknown(owl_smt::StopReason::ConflictLimit) => {}
        SmtResult::Unknown(r) => panic!("unexpected stop reason {r:?}"),
        // Small instances may still solve within two conflicts.
        SmtResult::Sat(_) | SmtResult::Unsat => {}
    }
    assert!(!solve(&mut m, &[hit, nx, ny], None).result.is_unknown());
}
