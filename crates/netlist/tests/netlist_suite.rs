//! Extended netlist tests: statistics reporting, optimizer rewrites, and
//! structural properties of the lowering.

use owl_netlist::{lower, optimize, GateSim};
use owl_oyster::Design;
use owl_bitvec::BitVec;
use std::collections::HashMap;

fn design(text: &str) -> Design {
    text.parse().expect("parses")
}

#[test]
fn stats_display_is_informative() {
    let d = design("design s\ninput a 4\ninput b 4\nregister r 4\nr := a + b\nend\n");
    let nl = lower(&d).unwrap();
    let text = nl.stats().to_string();
    assert!(text.contains("gates"));
    assert!(text.contains("dff=4"));
    assert_eq!(nl.register_names(), vec!["r"]);
}

#[test]
fn complementary_inputs_fold_in_optimizer() {
    // a & ~a == 0 and a | ~a == 1 must vanish entirely.
    let d = design(
        "design c\ninput a 1\noutput z 1\noutput o 1\n\
         z := a & ~a\no := a | ~a\nend\n",
    );
    let opt = optimize(&lower(&d).unwrap());
    assert_eq!(opt.stats().total(), 0);
    let mut sim = GateSim::new(&opt);
    for v in [0u64, 1] {
        let out = sim.step(&[("a".to_string(), BitVec::from_u64(1, v))].into());
        assert_eq!(out["z"].to_u64(), Some(0));
        assert_eq!(out["o"].to_u64(), Some(1));
    }
}

#[test]
fn xor_with_self_and_ones_fold() {
    let d = design(
        "design x\ninput a 8\noutput z 8\noutput n 8\n\
         z := a ^ a\nn := a ^ 8'xff\nend\n",
    );
    let opt = optimize(&lower(&d).unwrap());
    // a^a -> 0 (free); a^ones -> NOT gates only.
    assert_eq!(opt.stats().total(), opt.stats().not_gates);
    assert!(opt.stats().not_gates <= 8);
}

#[test]
fn optimizer_keeps_interface_stable() {
    let d = design(
        "design i\ninput a 8\ninput unused 8\noutput o 8\no := a\nend\n",
    );
    let raw = lower(&d).unwrap();
    let opt = optimize(&raw);
    // Inputs and outputs survive even when unused/pass-through.
    assert_eq!(opt.inputs().len(), 2);
    assert_eq!(opt.outputs().len(), 1);
    let mut sim = GateSim::new(&opt);
    let out = sim.step(
        &[
            ("a".to_string(), BitVec::from_u64(8, 0x5A)),
            ("unused".to_string(), BitVec::from_u64(8, 0xFF)),
        ]
        .into(),
    );
    assert_eq!(out["o"].to_u64(), Some(0x5A));
}

#[test]
fn barrel_shifter_gate_count_scales_with_count_width() {
    // A shift by a 3-bit count needs fewer mux stages than by an 8-bit
    // count of the same operand width.
    let narrow = design(
        "design n\ninput a 8\ninput c 8\noutput o 8\no := a << (c & 8'x07)\nend\n",
    );
    let wide = design("design w\ninput a 8\ninput c 8\noutput o 8\no := a << c\nend\n");
    // The naive lowering muxes on every count bit either way; only the
    // optimizer propagates the constant mask and prunes the dead stages.
    let n_gates = optimize(&lower(&narrow).unwrap()).stats().total();
    let w_gates = optimize(&lower(&wide).unwrap()).stats().total();
    assert!(n_gates < w_gates, "narrow {n_gates} vs wide {w_gates}");
}

#[test]
fn rom_lowering_counts_mux_tree_gates() {
    let d = design(
        "design r\ninput a 4\nrom t 4 8 [1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16]\n\
         output o 8\no := t[a]\nend\n",
    );
    let nl = lower(&d).unwrap();
    // The ROM is a primitive block; its read data enters as opaque nets.
    assert_eq!(nl.stats().memories, 1);
    let mut sim = GateSim::new(&nl);
    for a in [0u64, 7, 15] {
        let out = sim.step(&[("a".to_string(), BitVec::from_u64(4, a))].into());
        assert_eq!(out["o"].to_u64(), Some(a + 1));
    }
}

#[test]
fn sequential_feedback_loops_simulate() {
    // A classic LFSR-ish feedback structure.
    let d = design(
        "design lfsr\nregister s 4\noutput o 4\n\
         s := concat(extract(s, 2, 0), extract(s, 3, 3) ^ extract(s, 2, 2))\n\
         o := s\nend\n",
    );
    let nl = lower(&d).unwrap();
    let mut gate = GateSim::new(&nl);
    let mut interp = owl_oyster::Interpreter::new(&d).unwrap();
    interp.set_reg("s", BitVec::from_u64(4, 0b1001)).unwrap();
    // Match initial state in the gate sim by stepping both from zero...
    // zero state is a fixed point for this LFSR, so instead compare the
    // zero-seeded trajectories (both must stay at zero).
    let inputs = HashMap::new();
    for _ in 0..8 {
        let g = gate.step(&inputs);
        let i = interp_step_out(&mut interp);
        let _ = i;
        assert_eq!(g["o"].to_u64(), Some(0));
    }
}

fn interp_step_out(sim: &mut owl_oyster::Interpreter<'_>) -> BitVec {
    sim.step(&HashMap::new()).unwrap().outputs["o"].clone()
}
