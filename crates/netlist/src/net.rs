//! The netlist data structure: a sea of 2-input gates plus flip-flops and
//! primitive memory ports.

use std::collections::HashMap;

/// Index of a net (the output of a gate, a constant, an input bit, a
/// flip-flop output, or a memory read-port bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Dense index of the net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant 0 or 1.
    Const(bool),
    /// External input bit: (input index, bit index).
    Input(u32, u32),
    /// 2-input AND.
    And(NetId, NetId),
    /// 2-input OR.
    Or(NetId, NetId),
    /// 2-input XOR.
    Xor(NetId, NetId),
    /// Inverter.
    Not(NetId),
    /// Flip-flop output (Q) of the given DFF index.
    DffQ(u32),
    /// Bit `bit` of memory read port `port`.
    MemRead(u32, u32),
}

impl GateKind {
    /// True for the kinds counted as combinational gates.
    #[must_use]
    pub fn is_logic_gate(self) -> bool {
        matches!(
            self,
            GateKind::And(..) | GateKind::Or(..) | GateKind::Xor(..) | GateKind::Not(_)
        )
    }
}

/// A D flip-flop: `q` takes the value of `d` each cycle (reset to 0).
#[derive(Debug, Clone, Copy)]
pub struct Dff {
    /// Data input net (set when the register's driver is lowered).
    pub d: NetId,
    /// Output net.
    pub q: NetId,
}

/// A primitive memory block (kept opaque, like a PyRTL `MemBlock`).
#[derive(Debug, Clone)]
pub struct MemBlock {
    /// Memory name.
    pub name: String,
    /// Address width in bits.
    pub addr_width: u32,
    /// Data width in bits.
    pub data_width: u32,
    /// ROM contents (None for RAM).
    pub rom: Option<Vec<owl_bitvec::BitVec>>,
    /// Read ports: address bit nets.
    pub read_ports: Vec<Vec<NetId>>,
    /// Write ports: (address bits, data bits, enable net).
    pub write_ports: Vec<(Vec<NetId>, Vec<NetId>, NetId)>,
}

/// Gate-count statistics (Table 2's metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// 2-input AND gates.
    pub and_gates: usize,
    /// 2-input OR gates.
    pub or_gates: usize,
    /// 2-input XOR gates.
    pub xor_gates: usize,
    /// Inverters.
    pub not_gates: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Primitive memory blocks (not counted as gates).
    pub memories: usize,
}

impl GateStats {
    /// Total combinational gates plus flip-flops.
    #[must_use]
    pub fn total(&self) -> usize {
        self.and_gates + self.or_gates + self.xor_gates + self.not_gates + self.dffs
    }
}

impl std::fmt::Display for GateStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} gates (and={}, or={}, xor={}, not={}, dff={}, mems={})",
            self.total(),
            self.and_gates,
            self.or_gates,
            self.xor_gates,
            self.not_gates,
            self.dffs,
            self.memories
        )
    }
}

/// A gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) gates: Vec<GateKind>,
    pub(crate) inputs: Vec<(String, Vec<NetId>)>,
    pub(crate) outputs: Vec<(String, Vec<NetId>)>,
    pub(crate) dffs: Vec<Dff>,
    pub(crate) dff_names: Vec<String>,
    pub(crate) mems: Vec<MemBlock>,
}

impl Netlist {
    pub(crate) fn new() -> Self {
        Netlist::default()
    }

    pub(crate) fn push(&mut self, kind: GateKind) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.gates.push(kind);
        id
    }

    /// The driver of a net.
    #[must_use]
    pub fn gate(&self, id: NetId) -> GateKind {
        self.gates[id.index()]
    }

    /// Number of nets (including constants, inputs and primitives).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.gates.len()
    }

    /// Declared inputs: `(name, bit nets LSB-first)`.
    #[must_use]
    pub fn inputs(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// Declared outputs: `(name, bit nets LSB-first)`.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Names of the registers backing each flip-flop group.
    #[must_use]
    pub fn register_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.dff_names.iter().map(String::as_str).collect();
        names.dedup();
        names
    }

    /// Gate-count statistics over all nets.
    #[must_use]
    pub fn stats(&self) -> GateStats {
        let mut stats = GateStats {
            and_gates: 0,
            or_gates: 0,
            xor_gates: 0,
            not_gates: 0,
            dffs: self.dffs.len(),
            memories: self.mems.len(),
        };
        for g in &self.gates {
            match g {
                GateKind::And(..) => stats.and_gates += 1,
                GateKind::Or(..) => stats.or_gates += 1,
                GateKind::Xor(..) => stats.xor_gates += 1,
                GateKind::Not(_) => stats.not_gates += 1,
                _ => {}
            }
        }
        stats
    }

    /// Maps output names to their bit nets.
    #[must_use]
    pub fn output_map(&self) -> HashMap<&str, &[NetId]> {
        self.outputs.iter().map(|(n, bits)| (n.as_str(), bits.as_slice())).collect()
    }
}
