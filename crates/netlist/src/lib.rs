//! Gate-level netlist backend.
//!
//! Table 2 of the paper compares the *netlist size* (number of gates after
//! PyRTL synthesis) of designs with generated versus handwritten control
//! logic, and after a Yosys optimization pass. This crate provides the
//! equivalent pipeline:
//!
//! - [`lower`]: naive structural lowering of a complete Oyster design to
//!   2-input AND/OR/XOR/NOT gates plus D flip-flops (memories stay
//!   primitive ports, as PyRTL `MemBlock`s do);
//! - [`optimize`]: a logic optimizer (constant propagation, common
//!   subexpression elimination, algebraic identities, dead-gate removal)
//!   standing in for the Yosys pass;
//! - [`optimize_with`]: the [`OptLevel`]-selected pipeline, which can
//!   follow the structural pass with bounded equality saturation over
//!   the live Boolean cone (`owl-egraph`), keeping the smaller result;
//!   and
//! - [`GateSim`]: a cycle-accurate gate-level simulator used to check the
//!   lowering against the Oyster interpreter.

mod eqsat;
mod lower;
mod net;
mod opt;
mod sim;

pub use eqsat::{optimize_eqsat, optimize_with, OptLevel, SaturationLimits};
pub use lower::lower;
pub use net::{GateKind, GateStats, NetId, Netlist};
pub use opt::optimize;
pub use sim::{GateSim, SimError};
