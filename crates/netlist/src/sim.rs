//! Cycle-accurate gate-level simulation, for differential testing of the
//! lowering against the Oyster interpreter.

use crate::net::{GateKind, NetId, Netlist};
use owl_bitvec::BitVec;
use std::collections::HashMap;
use std::fmt;

/// A typed gate-level simulation error.
///
/// The panicking convenience API ([`GateSim::step`], [`GateSim::reg`],
/// [`GateSim::poke_mem`]) is a thin wrapper over the fallible `try_*`
/// methods; harness code driving a simulator with untrusted names or
/// stimuli should use the `try_*` forms and handle these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The named memory block does not exist in the netlist.
    UnknownMemory(String),
    /// The named register does not exist in the netlist.
    UnknownRegister(String),
    /// No value was supplied for this input this cycle.
    MissingInput(String),
    /// An input value's width does not match the port.
    WidthMismatch {
        /// The input port name.
        name: String,
        /// The port's declared width.
        expected: u32,
        /// The width of the supplied value.
        got: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownMemory(name) => write!(f, "unknown memory {name}"),
            SimError::UnknownRegister(name) => write!(f, "unknown register {name}"),
            SimError::MissingInput(name) => write!(f, "missing input {name}"),
            SimError::WidthMismatch { name, expected, got } => {
                write!(f, "input {name} is {got} bits wide, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A gate-level simulator over a [`Netlist`].
#[derive(Debug)]
pub struct GateSim<'n> {
    netlist: &'n Netlist,
    dff_state: Vec<bool>,
    mems: Vec<HashMap<u64, BitVec>>,
}

impl<'n> GateSim<'n> {
    /// Creates a simulator with flip-flops and memories zeroed.
    #[must_use]
    pub fn new(netlist: &'n Netlist) -> Self {
        GateSim {
            netlist,
            dff_state: vec![false; netlist.dffs.len()],
            mems: vec![HashMap::new(); netlist.mems.len()],
        }
    }

    /// Writes a memory word directly (for loading programs).
    ///
    /// # Panics
    ///
    /// Panics if the memory name is unknown; see
    /// [`try_poke_mem`](GateSim::try_poke_mem).
    pub fn poke_mem(&mut self, name: &str, addr: u64, data: BitVec) {
        self.try_poke_mem(name, addr, data).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Writes a memory word directly (for loading programs), failing
    /// with a typed error when the memory name is unknown.
    pub fn try_poke_mem(
        &mut self,
        name: &str,
        addr: u64,
        data: BitVec,
    ) -> Result<(), SimError> {
        let idx = self
            .netlist
            .mems
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| SimError::UnknownMemory(name.to_string()))?;
        self.mems[idx].insert(addr, data);
        Ok(())
    }

    fn read_mem(&self, mem_idx: usize, addr: u64) -> BitVec {
        let block = &self.netlist.mems[mem_idx];
        if let Some(rom) = &block.rom {
            return rom
                .get(addr as usize)
                .cloned()
                .unwrap_or_else(|| BitVec::zero(block.data_width));
        }
        self.mems[mem_idx]
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| BitVec::zero(block.data_width))
    }

    /// Simulates one cycle, returning the output values.
    ///
    /// # Panics
    ///
    /// Panics if an input value is missing or has the wrong width; see
    /// [`try_step`](GateSim::try_step).
    pub fn step(&mut self, inputs: &HashMap<String, BitVec>) -> HashMap<String, BitVec> {
        self.try_step(inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Simulates one cycle, returning the output values, failing with a
    /// typed error when an input is missing or mis-sized (the simulator
    /// state is untouched in that case).
    pub fn try_step(
        &mut self,
        inputs: &HashMap<String, BitVec>,
    ) -> Result<HashMap<String, BitVec>, SimError> {
        let nl = self.netlist;
        // Validate the whole stimulus before evaluating anything, so a
        // rejected step never half-commits flip-flop or memory state.
        for (name, bits) in &nl.inputs {
            let v = inputs.get(name).ok_or_else(|| SimError::MissingInput(name.clone()))?;
            let expected = bits.len() as u32;
            if v.width() != expected {
                return Err(SimError::WidthMismatch {
                    name: name.clone(),
                    expected,
                    got: v.width(),
                });
            }
        }
        let mut values = vec![false; nl.gates.len()];
        // Pre-compute read-port addresses lazily: nets evaluate in index
        // order, and a MemRead net is always created after its address
        // nets, so the address bits below are already evaluated.
        for (i, gate) in nl.gates.iter().enumerate() {
            values[i] = match *gate {
                GateKind::Const(b) => b,
                GateKind::Input(input_idx, bit) => {
                    let (name, _) = &nl.inputs[input_idx as usize];
                    let v = &inputs[name]; // presence validated above
                    v.bit(bit)
                }
                GateKind::And(a, b) => values[a.index()] && values[b.index()],
                GateKind::Or(a, b) => values[a.index()] || values[b.index()],
                GateKind::Xor(a, b) => values[a.index()] ^ values[b.index()],
                GateKind::Not(a) => !values[a.index()],
                GateKind::DffQ(d) => self.dff_state[d as usize],
                GateKind::MemRead(mem, port_bit) => {
                    let port = (port_bit >> 8) as usize;
                    let bit = port_bit & 0xFF;
                    let addr_nets = &nl.mems[mem as usize].read_ports[port];
                    let addr = nets_to_u64(addr_nets, &values);
                    self.read_mem(mem as usize, addr).bit(bit)
                }
            };
        }

        // Commit flip-flops.
        let next: Vec<bool> = nl.dffs.iter().map(|d| values[d.d.index()]).collect();
        self.dff_state = next;

        // Commit memory writes.
        for (mi, block) in nl.mems.iter().enumerate() {
            for (addr_nets, data_nets, en) in &block.write_ports {
                if values[en.index()] {
                    let addr = nets_to_u64(addr_nets, &values);
                    let bits: Vec<bool> =
                        data_nets.iter().map(|n| values[n.index()]).collect();
                    self.mems[mi].insert(addr, BitVec::from_bits_lsb0(&bits));
                }
            }
        }

        Ok(nl
            .outputs
            .iter()
            .map(|(name, bits)| {
                let v: Vec<bool> = bits.iter().map(|n| values[n.index()]).collect();
                (name.clone(), BitVec::from_bits_lsb0(&v))
            })
            .collect())
    }

    /// The current value of a register (by its Oyster name).
    ///
    /// # Panics
    ///
    /// Panics if the register name is unknown; see
    /// [`try_reg`](GateSim::try_reg).
    #[must_use]
    pub fn reg(&self, name: &str) -> BitVec {
        self.try_reg(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The current value of a register (by its Oyster name), failing
    /// with a typed error when the name is unknown.
    pub fn try_reg(&self, name: &str) -> Result<BitVec, SimError> {
        let bits: Vec<bool> = self
            .netlist
            .dff_names
            .iter()
            .enumerate()
            .filter(|(_, n)| *n == name)
            .map(|(i, _)| self.dff_state[i])
            .collect();
        if bits.is_empty() {
            return Err(SimError::UnknownRegister(name.to_string()));
        }
        Ok(BitVec::from_bits_lsb0(&bits))
    }
}

fn nets_to_u64(nets: &[NetId], values: &[bool]) -> u64 {
    nets.iter()
        .enumerate()
        .fold(0u64, |acc, (i, n)| acc | (u64::from(values[n.index()]) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use owl_oyster::{Design, Interpreter};

    fn inputs(pairs: &[(&str, u32, u64)]) -> HashMap<String, BitVec> {
        pairs
            .iter()
            .map(|&(n, w, v)| (n.to_string(), BitVec::from_u64(w, v)))
            .collect()
    }

    /// Drives the same design through the Oyster interpreter and the gate
    /// simulator and compares outputs cycle by cycle.
    fn differential(design_text: &str, stimulus: &[Vec<(&str, u32, u64)>]) {
        let d: Design = design_text.parse().unwrap();
        let nl = lower(&d).unwrap();
        let mut gate_sim = GateSim::new(&nl);
        let mut ref_sim = Interpreter::new(&d).unwrap();
        for step_inputs in stimulus {
            let ins = inputs(step_inputs);
            let gate_out = gate_sim.step(&ins);
            let ref_out = ref_sim.step(&ins).unwrap();
            for (name, value) in &ref_out.outputs {
                assert_eq!(&gate_out[name], value, "output {name} diverged");
            }
        }
    }

    #[test]
    fn adder_matches_interpreter() {
        differential(
            "design a\ninput x 8\ninput y 8\noutput s 8\ns := x + y\nend\n",
            &[
                vec![("x", 8, 200), ("y", 8, 100)],
                vec![("x", 8, 255), ("y", 8, 255)],
                vec![("x", 8, 0), ("y", 8, 0)],
            ],
        );
    }

    #[test]
    fn alu_like_design_matches() {
        differential(
            "design alu\ninput a 8\ninput b 8\ninput op 2\noutput o 8\n\
             o := if op == 2'x0 then a + b else if op == 2'x1 then a - b \
             else if op == 2'x2 then a & b else a ^ b\nend\n",
            &[
                vec![("a", 8, 0xF0), ("b", 8, 0x0F), ("op", 2, 0)],
                vec![("a", 8, 0x10), ("b", 8, 0x20), ("op", 2, 1)],
                vec![("a", 8, 0xAA), ("b", 8, 0x0F), ("op", 2, 2)],
                vec![("a", 8, 0xAA), ("b", 8, 0xFF), ("op", 2, 3)],
            ],
        );
    }

    #[test]
    fn shifts_and_compares_match() {
        differential(
            "design s\ninput a 8\ninput n 8\noutput l 8\noutput r 8\noutput ar 8\noutput c 1\n\
             l := a << n\nr := a >> n\nar := a >>> n\nc := a <s n\nend\n",
            &[
                vec![("a", 8, 0x81), ("n", 8, 1)],
                vec![("a", 8, 0x81), ("n", 8, 7)],
                vec![("a", 8, 0x81), ("n", 8, 9)],
                vec![("a", 8, 0x7F), ("n", 8, 0)],
            ],
        );
    }

    #[test]
    fn registers_and_memory_match() {
        let text = "design rm\ninput addr 3\ninput v 8\ninput en 1\n\
                    register acc 8\nmemory ram 3 8\noutput o 8\n\
                    acc := acc + v\nwrite ram[addr] := acc when en\no := ram[addr]\nend\n";
        let d: Design = text.parse().unwrap();
        let nl = lower(&d).unwrap();
        let mut gate_sim = GateSim::new(&nl);
        let mut ref_sim = Interpreter::new(&d).unwrap();
        for (a, v, en) in [(1u64, 5u64, 1u64), (1, 3, 0), (1, 2, 1), (1, 0, 0)] {
            let ins = inputs(&[("addr", 3, a), ("v", 8, v), ("en", 1, en)]);
            let g = gate_sim.step(&ins);
            let r = ref_sim.step(&ins).unwrap();
            assert_eq!(g["o"], r.outputs["o"]);
            assert_eq!(gate_sim.reg("acc"), *ref_sim.reg("acc").unwrap());
        }
    }

    #[test]
    fn rom_matches() {
        differential(
            "design r\ninput a 2\nrom t 2 8 [11 22 33]\noutput o 8\no := t[a]\nend\n",
            &[
                vec![("a", 2, 0)],
                vec![("a", 2, 2)],
                vec![("a", 2, 3)],
            ],
        );
    }

    /// Bad harness inputs surface as typed errors (and a rejected step
    /// leaves the simulator state untouched), not panics.
    #[test]
    fn bad_stimulus_gives_typed_errors() {
        let d: Design = "design t\ninput x 8\nregister r 8\nr := r + x\nend\n".parse().unwrap();
        let nl = lower(&d).unwrap();
        let mut sim = GateSim::new(&nl);
        sim.step(&inputs(&[("x", 8, 7)]));
        assert_eq!(sim.reg("r"), BitVec::from_u64(8, 7));

        let missing = sim.try_step(&HashMap::new());
        assert_eq!(missing, Err(SimError::MissingInput("x".to_string())));
        let narrow = sim.try_step(&inputs(&[("x", 4, 1)]));
        assert_eq!(
            narrow,
            Err(SimError::WidthMismatch { name: "x".to_string(), expected: 8, got: 4 })
        );
        // The rejected steps must not have clocked the register.
        assert_eq!(sim.try_reg("r"), Ok(BitVec::from_u64(8, 7)));

        assert_eq!(
            sim.try_reg("nope"),
            Err(SimError::UnknownRegister("nope".to_string()))
        );
        assert_eq!(
            sim.try_poke_mem("nomem", 0, BitVec::zero(8)),
            Err(SimError::UnknownMemory("nomem".to_string()))
        );
    }

    #[test]
    fn mul_matches() {
        differential(
            "design m\ninput a 6\ninput b 6\noutput p 6\np := a * b\nend\n",
            &[
                vec![("a", 6, 7), ("b", 6, 9)],
                vec![("a", 6, 63), ("b", 6, 63)],
                vec![("a", 6, 0), ("b", 6, 21)],
            ],
        );
    }
}
