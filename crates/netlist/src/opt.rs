//! The logic optimizer (the stand-in for the paper's Yosys pass).
//!
//! A single forward rebuild applies, in concert: constant propagation,
//! algebraic identities (`x&x`, `x&0`, `x^x`, double negation, …),
//! structural hashing (CSE with commutative-operand normalization), and —
//! because only gates reachable from outputs, flip-flop inputs and memory
//! ports are rebuilt — dead-gate elimination. The pass is idempotent;
//! [`optimize`] runs it to a fixpoint.

use crate::net::{GateKind, MemBlock, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// Optimizes a netlist, returning an equivalent, usually smaller one.
#[must_use]
pub fn optimize(netlist: &Netlist) -> Netlist {
    let mut current = one_pass(netlist);
    loop {
        let next = one_pass(&current);
        if next.stats().total() >= current.stats().total() {
            return current;
        }
        current = next;
    }
}

pub(crate) struct Builder {
    pub(crate) nl: Netlist,
    pub(crate) zero: NetId,
    pub(crate) one: NetId,
    hash: HashMap<GateKind, NetId>,
}

impl Builder {
    pub(crate) fn new() -> Self {
        let mut nl = Netlist::new();
        let zero = nl.push(GateKind::Const(false));
        let one = nl.push(GateKind::Const(true));
        let mut hash = HashMap::new();
        hash.insert(GateKind::Const(false), zero);
        hash.insert(GateKind::Const(true), one);
        Builder { nl, zero, one, hash }
    }

    pub(crate) fn intern(&mut self, kind: GateKind) -> NetId {
        if let Some(&id) = self.hash.get(&kind) {
            return id;
        }
        let id = self.nl.push(kind);
        self.hash.insert(kind, id);
        id
    }

    fn is_const(&self, n: NetId) -> Option<bool> {
        if n == self.zero {
            Some(false)
        } else if n == self.one {
            Some(true)
        } else {
            None
        }
    }

    /// True if `a` is the inverter of `b` or vice versa.
    fn complementary(&self, a: NetId, b: NetId) -> bool {
        matches!(self.nl.gates[a.index()], GateKind::Not(x) if x == b)
            || matches!(self.nl.gates[b.index()], GateKind::Not(x) if x == a)
    }

    pub(crate) fn and(&mut self, mut a: NetId, mut b: NetId) -> NetId {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.zero,
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.complementary(a, b) {
            return self.zero;
        }
        // Absorption: x & (x | y) = x.
        for (x, y) in [(a, b), (b, a)] {
            if let GateKind::Or(p, q) = self.nl.gates[y.index()] {
                if p == x || q == x {
                    return x;
                }
            }
        }
        self.intern(GateKind::And(a, b))
    }

    pub(crate) fn or(&mut self, mut a: NetId, mut b: NetId) -> NetId {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        match (self.is_const(a), self.is_const(b)) {
            (Some(true), _) | (_, Some(true)) => return self.one,
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.complementary(a, b) {
            return self.one;
        }
        // Absorption: x | (x & y) = x.
        for (x, y) in [(a, b), (b, a)] {
            if let GateKind::And(p, q) = self.nl.gates[y.index()] {
                if p == x || q == x {
                    return x;
                }
            }
        }
        self.intern(GateKind::Or(a, b))
    }

    pub(crate) fn xor(&mut self, mut a: NetId, mut b: NetId) -> NetId {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.zero;
        }
        if self.complementary(a, b) {
            return self.one;
        }
        self.intern(GateKind::Xor(a, b))
    }

    pub(crate) fn not(&mut self, a: NetId) -> NetId {
        // Collapse whole inverter chains, not just one level: walk to
        // the chain's root and keep only the inversion parity.
        let mut root = a;
        let mut inverted = true;
        while let GateKind::Not(inner) = self.nl.gates[root.index()] {
            root = inner;
            inverted = !inverted;
        }
        if !inverted {
            return root;
        }
        if let Some(c) = self.is_const(root) {
            return if c { self.zero } else { self.one };
        }
        self.intern(GateKind::Not(root))
    }
}

pub(crate) fn live_set(nl: &Netlist) -> HashSet<NetId> {
    let mut live = HashSet::new();
    let mut stack: Vec<NetId> = Vec::new();
    for (_, bits) in &nl.outputs {
        stack.extend(bits.iter().copied());
    }
    for d in &nl.dffs {
        stack.push(d.d);
    }
    for m in &nl.mems {
        for port in &m.read_ports {
            stack.extend(port.iter().copied());
        }
        for (a, d, e) in &m.write_ports {
            stack.extend(a.iter().copied());
            stack.extend(d.iter().copied());
            stack.push(*e);
        }
    }
    while let Some(n) = stack.pop() {
        if !live.insert(n) {
            continue;
        }
        match nl.gates[n.index()] {
            GateKind::And(a, b) | GateKind::Or(a, b) | GateKind::Xor(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            GateKind::Not(a) => stack.push(a),
            _ => {}
        }
    }
    live
}

fn one_pass(nl: &Netlist) -> Netlist {
    let live = live_set(nl);
    let mut b = Builder::new();
    let mut remap: HashMap<NetId, NetId> = HashMap::new();

    // Interface nets are always rebuilt so the I/O shape is stable.
    for (idx, (name, bits)) in nl.inputs.iter().enumerate() {
        let new_bits: Vec<NetId> = (0..bits.len())
            .map(|bit| b.intern(GateKind::Input(idx as u32, bit as u32)))
            .collect();
        for (old, new) in bits.iter().zip(&new_bits) {
            remap.insert(*old, *new);
        }
        b.nl.inputs.push((name.clone(), new_bits));
    }
    for (i, dff) in nl.dffs.iter().enumerate() {
        let q = b.intern(GateKind::DffQ(i as u32));
        remap.insert(dff.q, q);
        b.nl.dffs.push(crate::net::Dff { d: q, q });
        b.nl.dff_names.push(nl.dff_names[i].clone());
    }
    for (mi, m) in nl.mems.iter().enumerate() {
        // Read-data nets rebuilt directly; ports remapped afterwards.
        b.nl.mems.push(MemBlock {
            name: m.name.clone(),
            addr_width: m.addr_width,
            data_width: m.data_width,
            rom: m.rom.clone(),
            read_ports: Vec::new(),
            write_ports: Vec::new(),
        });
        let _ = mi;
    }

    // Rebuild live gates in topological (index) order.
    for (i, gate) in nl.gates.iter().enumerate() {
        let old = NetId(i as u32);
        if remap.contains_key(&old) {
            continue;
        }
        if !live.contains(&old) {
            continue;
        }
        let new = match *gate {
            GateKind::Const(c) => {
                if c {
                    b.one
                } else {
                    b.zero
                }
            }
            GateKind::Input(..) | GateKind::DffQ(_) => {
                unreachable!("interface nets pre-mapped")
            }
            GateKind::And(x, y) => {
                let (x, y) = (remap[&x], remap[&y]);
                b.and(x, y)
            }
            GateKind::Or(x, y) => {
                let (x, y) = (remap[&x], remap[&y]);
                b.or(x, y)
            }
            GateKind::Xor(x, y) => {
                let (x, y) = (remap[&x], remap[&y]);
                b.xor(x, y)
            }
            GateKind::Not(x) => {
                let x = remap[&x];
                b.not(x)
            }
            GateKind::MemRead(mem, port_bit) => b.intern(GateKind::MemRead(mem, port_bit)),
        };
        remap.insert(old, new);
    }

    // Rewire flip-flop inputs, memory ports, and outputs.
    for (i, dff) in nl.dffs.iter().enumerate() {
        b.nl.dffs[i].d = remap[&dff.d];
    }
    for (mi, m) in nl.mems.iter().enumerate() {
        b.nl.mems[mi].read_ports =
            m.read_ports.iter().map(|p| p.iter().map(|n| remap[n]).collect()).collect();
        b.nl.mems[mi].write_ports = m
            .write_ports
            .iter()
            .map(|(a, d, e)| {
                (
                    a.iter().map(|n| remap[n]).collect(),
                    d.iter().map(|n| remap[n]).collect(),
                    remap[e],
                )
            })
            .collect();
    }
    for (name, bits) in &nl.outputs {
        b.nl.outputs.push((name.clone(), bits.iter().map(|n| remap[n]).collect()));
    }
    b.nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::sim::GateSim;
    use owl_bitvec::BitVec;
    use owl_oyster::Design;
    use std::collections::HashMap;

    fn opt_of(text: &str) -> (Netlist, Netlist) {
        let d: Design = text.parse().unwrap();
        let nl = lower(&d).unwrap();
        let opt = optimize(&nl);
        (nl, opt)
    }

    #[test]
    fn cse_merges_duplicate_logic() {
        // a + b computed twice.
        let (raw, opt) = opt_of(
            "design d\ninput a 8\ninput b 8\noutput x 8\noutput y 8\n\
             x := a + b\ny := a + b\nend\n",
        );
        // Lowering shares because the wires are distinct statements, each
        // building its own adder.
        // At least the full duplicate adder is merged; constant-carry
        // folding in the first stage saves a little more.
        assert!(opt.stats().total() <= raw.stats().total() / 2);
    }

    #[test]
    fn constants_propagate() {
        let (_, opt) = opt_of(
            "design d\ninput a 8\noutput x 8\nx := a & 8'x00\nend\n",
        );
        assert_eq!(opt.stats().total(), 0);
    }

    #[test]
    fn dead_gates_removed() {
        let (raw, opt) = opt_of(
            "design d\ninput a 8\ninput b 8\noutput x 8\n\
             unused := a * b\nx := a\nend\n",
        );
        assert!(raw.stats().total() > 0);
        assert_eq!(opt.stats().total(), 0);
    }

    #[test]
    fn optimization_preserves_behaviour() {
        let text = "design alu\ninput a 8\ninput b 8\ninput op 2\nregister acc 8\noutput o 8\n\
                    r := if op == 2'x0 then a + b else if op == 2'x1 then a - b \
                    else if op == 2'x2 then a & b else a ^ b\n\
                    acc := acc + r\no := r\nend\n";
        let d: Design = text.parse().unwrap();
        let raw = lower(&d).unwrap();
        let opt = optimize(&raw);
        assert!(opt.stats().total() < raw.stats().total());
        let mut s1 = GateSim::new(&raw);
        let mut s2 = GateSim::new(&opt);
        for (a, bb, op) in [(10u64, 3u64, 0u64), (200, 200, 1), (0xF0, 0x3C, 2), (1, 2, 3)] {
            let ins: HashMap<String, BitVec> = [
                ("a".to_string(), BitVec::from_u64(8, a)),
                ("b".to_string(), BitVec::from_u64(8, bb)),
                ("op".to_string(), BitVec::from_u64(2, op)),
            ]
            .into();
            let o1 = s1.step(&ins);
            let o2 = s2.step(&ins);
            assert_eq!(o1["o"], o2["o"]);
            assert_eq!(s1.reg("acc"), s2.reg("acc"));
        }
    }

    #[test]
    fn absorption_collapses_redundant_cover() {
        // x & (x | y) = x: the whole cone is wiring.
        let (_, opt) = opt_of(
            "design d\ninput a 1\ninput b 1\noutput x 1\nx := a & (a | b)\nend\n",
        );
        assert_eq!(opt.stats().total(), 0, "a & (a | b) must absorb to a");
        // Dual: x | (x & y) = x.
        let (_, opt) = opt_of(
            "design d\ninput a 1\ninput b 1\noutput x 1\nx := a | (a & b)\nend\n",
        );
        assert_eq!(opt.stats().total(), 0, "a | (a & b) must absorb to a");
    }

    #[test]
    fn absorption_preserves_behaviour() {
        let text = "design d\ninput a 1\ninput b 1\noutput x 1\noutput y 1\n\
                    x := a & (a | b)\ny := b | (b & a)\nend\n";
        let d: Design = text.parse().unwrap();
        let raw = lower(&d).unwrap();
        let opt = optimize(&raw);
        let mut s1 = GateSim::new(&raw);
        let mut s2 = GateSim::new(&opt);
        for bits in 0..4u64 {
            let ins: HashMap<String, BitVec> = [
                ("a".to_string(), BitVec::from_u64(1, bits & 1)),
                ("b".to_string(), BitVec::from_u64(1, (bits >> 1) & 1)),
            ]
            .into();
            assert_eq!(s1.step(&ins), s2.step(&ins));
        }
    }

    #[test]
    fn not_collapses_chains_beyond_one_level() {
        let mut b = Builder::new();
        let a = b.intern(GateKind::Input(0, 0));
        // Intern a raw inverter chain directly, bypassing the smart
        // constructor, as a frontend might.
        let n1 = b.intern(GateKind::Not(a));
        let n2 = b.intern(GateKind::Not(n1));
        let n3 = b.intern(GateKind::Not(n2));
        // ¬n3 = ¬¬¬¬a = a: the whole even-parity chain cancels.
        assert_eq!(b.not(n3), a);
        // ¬n2 = ¬¬¬a = ¬a: odd parity resolves to the interned root
        // inverter, not a fresh gate.
        assert_eq!(b.not(n2), n1);
    }

    #[test]
    fn idempotent_at_fixpoint() {
        let (_, opt) = opt_of(
            "design d\ninput a 8\ninput b 8\noutput x 1\nx := (a == b) | (a != b)\nend\n",
        );
        let opt2 = optimize(&opt);
        assert_eq!(opt.stats().total(), opt2.stats().total());
        // (a == b) | !(a == b) folds to constant 1.
        assert_eq!(opt.stats().total(), 0);
    }
}
