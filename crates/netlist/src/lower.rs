//! Naive structural lowering of a complete Oyster design to gates.
//!
//! Deliberately unoptimized (mirroring a direct PyRTL synthesis): every
//! operator becomes its textbook gate network with no sharing beyond what
//! the source expression tree already shares, so the [`crate::optimize`]
//! pass has the same kind of headroom the paper's Yosys pass has.
//! Constant *shift counts* are rewired rather than built as barrel
//! shifters, and extract/concat/extension are pure rewiring, as in PyRTL.

use crate::net::{Dff, GateKind, MemBlock, NetId, Netlist};
use owl_oyster::{BinOp, DeclKind, Design, Expr, OysterError, Stmt};
use std::collections::HashMap;

struct Lowerer<'d> {
    design: &'d Design,
    nl: Netlist,
    zero: NetId,
    one: NetId,
    wires: HashMap<String, Vec<NetId>>,
    regs: HashMap<String, (u32, Vec<NetId>)>, // (dff base index, q nets)
    reg_d: HashMap<String, Vec<NetId>>,
    mem_index: HashMap<String, u32>,
    input_nets: HashMap<String, Vec<NetId>>,
}

/// Lowers a checked, hole-free design to a netlist.
///
/// # Errors
///
/// Returns an error if the design fails validation or still has holes.
pub fn lower(design: &Design) -> Result<Netlist, OysterError> {
    design.check()?;
    if !design.hole_names().is_empty() {
        return Err(OysterError::new("cannot lower a sketch with holes to gates"));
    }
    let mut nl = Netlist::new();
    let zero = nl.push(GateKind::Const(false));
    let one = nl.push(GateKind::Const(true));
    let mut low = Lowerer {
        design,
        nl,
        zero,
        one,
        wires: HashMap::new(),
        regs: HashMap::new(),
        reg_d: HashMap::new(),
        mem_index: HashMap::new(),
        input_nets: HashMap::new(),
    };
    low.run()?;
    Ok(low.nl)
}

impl Lowerer<'_> {
    fn run(&mut self) -> Result<(), OysterError> {
        // Declarations first: inputs, flip-flops, memory blocks.
        for d in self.design.decls() {
            match &d.kind {
                DeclKind::Input => {
                    let idx = self.nl.inputs.len() as u32;
                    let bits: Vec<NetId> =
                        (0..d.width).map(|b| self.nl.push(GateKind::Input(idx, b))).collect();
                    self.nl.inputs.push((d.name.clone(), bits.clone()));
                    self.input_nets.insert(d.name.clone(), bits);
                }
                DeclKind::Register => {
                    let base = self.nl.dffs.len() as u32;
                    let mut q = Vec::with_capacity(d.width as usize);
                    for b in 0..d.width {
                        let qn = self.nl.push(GateKind::DffQ(base + b));
                        self.nl.dffs.push(Dff { d: qn, q: qn }); // d patched later
                        self.nl.dff_names.push(d.name.clone());
                        q.push(qn);
                    }
                    self.regs.insert(d.name.clone(), (base, q));
                }
                DeclKind::Memory { addr_width } => {
                    let idx = self.nl.mems.len() as u32;
                    self.mem_index.insert(d.name.clone(), idx);
                    self.nl.mems.push(MemBlock {
                        name: d.name.clone(),
                        addr_width: *addr_width,
                        data_width: d.width,
                        rom: None,
                        read_ports: Vec::new(),
                        write_ports: Vec::new(),
                    });
                }
                DeclKind::Rom { addr_width, data } => {
                    let idx = self.nl.mems.len() as u32;
                    self.mem_index.insert(d.name.clone(), idx);
                    self.nl.mems.push(MemBlock {
                        name: d.name.clone(),
                        addr_width: *addr_width,
                        data_width: d.width,
                        rom: Some(data.clone()),
                        read_ports: Vec::new(),
                        write_ports: Vec::new(),
                    });
                }
                DeclKind::Output | DeclKind::Hole => {}
            }
        }

        // Statements.
        for stmt in self.design.stmts() {
            match stmt {
                Stmt::Assign { var, expr } => {
                    let bits = self.expr(expr)?;
                    if let Some((_, _q)) = self.regs.get(var) {
                        self.reg_d.insert(var.clone(), bits);
                    } else {
                        self.wires.insert(var.clone(), bits);
                    }
                }
                Stmt::Write { mem, addr, data, enable } => {
                    let a = self.expr(addr)?;
                    let d = self.expr(data)?;
                    let e = self.expr(enable)?;
                    let en = self.or_reduce(&e);
                    let idx = self.mem_index[mem];
                    self.nl.mems[idx as usize].write_ports.push((a, d, en));
                }
            }
        }

        // Patch flip-flop data inputs (unassigned registers hold).
        for (name, (base, q)) in &self.regs {
            let d_bits = self.reg_d.get(name).cloned().unwrap_or_else(|| q.clone());
            for (i, d) in d_bits.into_iter().enumerate() {
                self.nl.dffs[*base as usize + i].d = d;
            }
        }

        // Outputs (undriven outputs read zero).
        for d in self.design.decls() {
            if d.kind == DeclKind::Output {
                let bits = self
                    .wires
                    .get(&d.name)
                    .cloned()
                    .unwrap_or_else(|| vec![self.zero; d.width as usize]);
                self.nl.outputs.push((d.name.clone(), bits));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Gate builders (intentionally naive: no folding, no sharing)
    // ------------------------------------------------------------------

    fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.nl.push(GateKind::And(a, b))
    }

    fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.nl.push(GateKind::Or(a, b))
    }

    fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.nl.push(GateKind::Xor(a, b))
    }

    fn not(&mut self, a: NetId) -> NetId {
        self.nl.push(GateKind::Not(a))
    }

    fn mux(&mut self, c: NetId, t: NetId, e: NetId) -> NetId {
        let nc = self.not(c);
        let x = self.and(c, t);
        let y = self.and(nc, e);
        self.or(x, y)
    }

    fn mux_bits(&mut self, c: NetId, t: &[NetId], e: &[NetId]) -> Vec<NetId> {
        let nc = self.not(c);
        t.iter()
            .zip(e)
            .map(|(&tb, &eb)| {
                let x = self.and(c, tb);
                let y = self.and(nc, eb);
                self.or(x, y)
            })
            .collect()
    }

    fn or_reduce(&mut self, bits: &[NetId]) -> NetId {
        bits.iter().copied().reduce(|a, b| self.or(a, b)).unwrap_or(self.zero)
    }

    fn and_reduce(&mut self, bits: &[NetId]) -> NetId {
        bits.iter().copied().reduce(|a, b| self.and(a, b)).unwrap_or(self.one)
    }

    fn adder(&mut self, a: &[NetId], b: &[NetId], mut carry: NetId) -> Vec<NetId> {
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let axb = self.xor(x, y);
            let sum = self.xor(axb, carry);
            let c1 = self.and(x, y);
            let c2 = self.and(axb, carry);
            carry = self.or(c1, c2);
            out.push(sum);
        }
        out
    }

    fn ult(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let mut res = self.zero;
        for (&x, &y) in a.iter().zip(b) {
            let same = self.xor(x, y);
            let same = self.not(same);
            res = self.mux(same, res, y);
        }
        res
    }

    fn eq(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let bits: Vec<NetId> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = self.xor(x, y);
                self.not(d)
            })
            .collect();
        self.and_reduce(&bits)
    }

    fn const_bits(&self, value: &owl_bitvec::BitVec) -> Vec<NetId> {
        value.bits_lsb0().map(|b| if b { self.one } else { self.zero }).collect()
    }

    fn shift(&mut self, a: &[NetId], count: &[NetId], kind: BinOp) -> Vec<NetId> {
        let w = a.len();
        let fill = match kind {
            BinOp::Ashr => a[w - 1],
            _ => self.zero,
        };
        let mut acc = a.to_vec();
        for (s, &cbit) in count.iter().enumerate() {
            let dist = 1usize.checked_shl(s as u32).unwrap_or(usize::MAX);
            let shifted: Vec<NetId> = if dist >= w {
                vec![fill; w]
            } else {
                (0..w)
                    .map(|i| match kind {
                        BinOp::Shl => {
                            if i >= dist {
                                acc[i - dist]
                            } else {
                                fill
                            }
                        }
                        _ => {
                            if i + dist < w {
                                acc[i + dist]
                            } else {
                                fill
                            }
                        }
                    })
                    .collect()
            };
            acc = self.mux_bits(cbit, &shifted, &acc);
        }
        acc
    }

    fn expr(&mut self, e: &Expr) -> Result<Vec<NetId>, OysterError> {
        Ok(match e {
            Expr::Var(n) => {
                if let Some(bits) = self.wires.get(n) {
                    bits.clone()
                } else if let Some((_, q)) = self.regs.get(n) {
                    q.clone()
                } else if let Some(bits) = self.input_nets.get(n) {
                    bits.clone()
                } else {
                    return Err(OysterError::new(format!("unbound identifier {n}")));
                }
            }
            Expr::Const(c) => self.const_bits(c),
            Expr::Not(a) => {
                let av = self.expr(a)?;
                av.into_iter().map(|b| self.not(b)).collect()
            }
            Expr::Binop(op, a, b) => {
                let av = self.expr(a)?;
                let bv = self.expr(b)?;
                match op {
                    BinOp::And => {
                        av.iter().zip(&bv).map(|(&x, &y)| self.and(x, y)).collect()
                    }
                    BinOp::Or => av.iter().zip(&bv).map(|(&x, &y)| self.or(x, y)).collect(),
                    BinOp::Xor => {
                        av.iter().zip(&bv).map(|(&x, &y)| self.xor(x, y)).collect()
                    }
                    BinOp::Add => self.adder(&av, &bv, self.zero),
                    BinOp::Sub => {
                        let nb: Vec<NetId> = bv.iter().map(|&x| self.not(x)).collect();
                        self.adder(&av, &nb, self.one)
                    }
                    BinOp::Mul => {
                        let w = av.len();
                        let mut acc = vec![self.zero; w];
                        for i in 0..w {
                            let mut pp = vec![self.zero; w];
                            for j in 0..w - i {
                                pp[i + j] = self.and(av[j], bv[i]);
                            }
                            acc = self.adder(&acc, &pp, self.zero);
                        }
                        acc
                    }
                    BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                        // Constant counts become rewiring (as in PyRTL).
                        if let Expr::Const(c) = &**b {
                            let w = av.len() as u32;
                            let amt =
                                c.to_u64().map_or(u32::MAX, |v| u32::try_from(v).unwrap_or(u32::MAX));
                            let fill =
                                if *op == BinOp::Ashr { av[av.len() - 1] } else { self.zero };
                            (0..w)
                                .map(|i| match op {
                                    BinOp::Shl => {
                                        if i >= amt.min(w) {
                                            av[(i - amt) as usize]
                                        } else {
                                            fill
                                        }
                                    }
                                    _ => {
                                        if amt < w && i + amt < w {
                                            av[(i + amt) as usize]
                                        } else {
                                            fill
                                        }
                                    }
                                })
                                .collect()
                        } else {
                            self.shift(&av, &bv, *op)
                        }
                    }
                    BinOp::Eq => vec![self.eq(&av, &bv)],
                    BinOp::Neq => {
                        let e = self.eq(&av, &bv);
                        vec![self.not(e)]
                    }
                    BinOp::Ult => vec![self.ult(&av, &bv)],
                    BinOp::Ule => {
                        let gt = self.ult(&bv, &av);
                        vec![self.not(gt)]
                    }
                    BinOp::Slt => {
                        let (mut af, mut bf) = (av, bv);
                        let n = af.len();
                        af[n - 1] = self.not(af[n - 1]);
                        bf[n - 1] = self.not(bf[n - 1]);
                        vec![self.ult(&af, &bf)]
                    }
                    BinOp::Sle => {
                        let (mut af, mut bf) = (av, bv);
                        let n = af.len();
                        af[n - 1] = self.not(af[n - 1]);
                        bf[n - 1] = self.not(bf[n - 1]);
                        let gt = self.ult(&bf, &af);
                        vec![self.not(gt)]
                    }
                }
            }
            Expr::Ite(c, t, els) => {
                let cv = self.expr(c)?;
                let tv = self.expr(t)?;
                let ev = self.expr(els)?;
                let cr = self.or_reduce(&cv);
                self.mux_bits(cr, &tv, &ev)
            }
            Expr::Extract(a, high, low) => {
                let av = self.expr(a)?;
                av[*low as usize..=*high as usize].to_vec()
            }
            Expr::Concat(a, b) => {
                let hv = self.expr(a)?;
                let mut out = self.expr(b)?;
                out.extend(hv);
                out
            }
            Expr::ZExt(a, w) => {
                let mut out = self.expr(a)?;
                out.resize(*w as usize, self.zero);
                out
            }
            Expr::SExt(a, w) => {
                let mut out = self.expr(a)?;
                // Invariant: the Oyster validator rejects zero-width
                // expressions before lowering begins, so a sign-extend
                // source always has at least one (sign) bit.
                let sign = *out.last().expect("nonzero width");
                out.resize(*w as usize, sign);
                out
            }
            Expr::Read(mem, addr) => {
                let a = self.expr(addr)?;
                let idx = *self
                    .mem_index
                    .get(mem)
                    .ok_or_else(|| OysterError::new(format!("unbound memory {mem}")))?;
                let port = self.nl.mems[idx as usize].read_ports.len() as u32;
                self.nl.mems[idx as usize].read_ports.push(a);
                let dw = self.nl.mems[idx as usize].data_width;
                // Encode port index in the high bits of the second field.
                (0..dw)
                    .map(|b| self.nl.push(GateKind::MemRead(idx, port << 8 | b)))
                    .collect()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_counts_gates() {
        let d: Design = "design add8\ninput a 8\ninput b 8\noutput s 8\ns := a + b\nend\n"
            .parse()
            .unwrap();
        let nl = lower(&d).unwrap();
        let stats = nl.stats();
        // Ripple-carry adder: 5 gates per bit (2 xor, 2 and, 1 or).
        assert_eq!(stats.xor_gates, 16);
        assert_eq!(stats.and_gates, 16);
        assert_eq!(stats.or_gates, 8);
        assert_eq!(stats.dffs, 0);
    }

    #[test]
    fn registers_become_dffs() {
        let d: Design = "design c\nregister r 8\nr := r + 8'x01\nend\n".parse().unwrap();
        let nl = lower(&d).unwrap();
        assert_eq!(nl.stats().dffs, 8);
        assert_eq!(nl.register_names(), vec!["r"]);
    }

    #[test]
    fn memories_stay_primitive() {
        let d: Design = "design m\ninput a 4\ninput v 8\ninput en 1\nmemory ram 4 8\noutput o 8\n\
                         o := ram[a]\nwrite ram[a] := v when en\nend\n"
            .parse()
            .unwrap();
        let nl = lower(&d).unwrap();
        let stats = nl.stats();
        assert_eq!(stats.memories, 1);
        assert_eq!(nl.mems[0].read_ports.len(), 1);
        assert_eq!(nl.mems[0].write_ports.len(), 1);
    }

    #[test]
    fn holes_rejected() {
        let d: Design = "design h\nhole x 1\nregister r 1\nr := x\nend\n".parse().unwrap();
        assert!(lower(&d).is_err());
    }

    #[test]
    fn constant_shift_is_rewiring() {
        let d: Design = "design s\ninput a 8\noutput o 8\no := a << 8'x02\nend\n"
            .parse()
            .unwrap();
        let nl = lower(&d).unwrap();
        assert_eq!(nl.stats().total(), 0); // pure rewiring, no gates
    }
}
