//! Equality-saturation netlist optimization.
//!
//! The structural optimizer in [`crate::opt`] rewrites greedily during a
//! forward rebuild, so it only ever sees one cut of each cone. This pass
//! instead loads the live Boolean cone into an `owl-egraph`, saturates
//! it under the shared Boolean rule set (the same rules the SMT layer
//! uses for its 1-bit fragment), and re-emits the gate-count-cheapest
//! representative of every net. Saturation is bounded by a [`Budget`]
//! and [`SaturationLimits`], and the pass is guarded: if the extracted
//! netlist is not smaller than its input, the input wins.

use crate::net::{GateKind, MemBlock, NetId, Netlist};
use crate::opt::{live_set, optimize, Builder};
use owl_bitvec::BitVec;
use owl_egraph::{bool_rules, saturate, EBinOp, EGraph, ENode, EUnOp, Extractor, GateCost, Id};
use owl_sat::Budget;
use std::collections::HashMap;

pub use owl_egraph::SaturationLimits;

/// How hard to optimize a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization: the netlist is returned as lowered.
    None,
    /// The greedy structural pass ([`optimize`]) only.
    Structural,
    /// Structural first, then bounded equality saturation over the
    /// Boolean cone, keeping whichever result is smaller.
    #[default]
    Eqsat,
}

/// Optimizes `netlist` at the requested [`OptLevel`].
#[must_use]
pub fn optimize_with(netlist: &Netlist, level: OptLevel) -> Netlist {
    match level {
        OptLevel::None => netlist.clone(),
        OptLevel::Structural => optimize(netlist),
        OptLevel::Eqsat => {
            let structural = optimize(netlist);
            let saturated = optimize_eqsat(
                &structural,
                &Budget::unlimited(),
                &SaturationLimits::default(),
            );
            if saturated.stats().total() <= structural.stats().total() {
                saturated
            } else {
                structural
            }
        }
    }
}

/// One bounded equality-saturation pass over the live Boolean cone of
/// `netlist`, under the caller's `budget` and structural `limits`.
///
/// The result is always behaviorally equivalent to the input: when the
/// budget or a cap interrupts saturation early, extraction still
/// recovers (at worst) the original gates. Interface shape — input and
/// output names and widths, flip-flop order, memory blocks — is
/// preserved exactly, as in [`optimize`].
#[must_use]
pub fn optimize_eqsat(
    netlist: &Netlist,
    budget: &Budget,
    limits: &SaturationLimits,
) -> Netlist {
    let live = live_set(netlist);
    let mut egraph = EGraph::new();
    // Original net -> e-class. Gates in index order are topologically
    // sorted, so children are always encoded before their users.
    let mut class_of: HashMap<NetId, Id> = HashMap::new();
    for (i, gate) in netlist.gates.iter().enumerate() {
        let old = NetId(u32::try_from(i).expect("net index fits"));
        if !live.contains(&old) {
            continue;
        }
        let node = match *gate {
            GateKind::Const(c) => ENode::Const(BitVec::from_bool(c)),
            // Leaves keep the original net id as their key so the
            // rebuild can recover which interface primitive they are.
            GateKind::Input(..) | GateKind::DffQ(_) | GateKind::MemRead(..) => {
                ENode::Leaf(old.0, 1)
            }
            GateKind::And(a, b) => ENode::Bin(EBinOp::And, class_of[&a], class_of[&b]),
            GateKind::Or(a, b) => ENode::Bin(EBinOp::Or, class_of[&a], class_of[&b]),
            GateKind::Xor(a, b) => ENode::Bin(EBinOp::Xor, class_of[&a], class_of[&b]),
            GateKind::Not(a) => ENode::Unary(EUnOp::Not, class_of[&a]),
        };
        class_of.insert(old, egraph.add(node));
    }

    saturate(&mut egraph, &bool_rules(), budget, limits);
    let extractor = Extractor::new(&egraph, &GateCost);

    // Re-emit through the structural builder so its local rules
    // (hashing, constants, absorption, inverter chains) apply to the
    // extracted gates too.
    let mut b = Builder::new();
    // Interface nets first, exactly as the structural pass does, so the
    // I/O shape is stable. `leaf_nets` resolves Leaf keys during
    // extraction.
    let mut leaf_nets: HashMap<u32, NetId> = HashMap::new();
    for (idx, (name, bits)) in netlist.inputs.iter().enumerate() {
        let new_bits: Vec<NetId> = (0..bits.len())
            .map(|bit| {
                b.intern(GateKind::Input(
                    u32::try_from(idx).expect("input index fits"),
                    u32::try_from(bit).expect("bit index fits"),
                ))
            })
            .collect();
        for (old, new) in bits.iter().zip(&new_bits) {
            leaf_nets.insert(old.0, *new);
        }
        b.nl.inputs.push((name.clone(), new_bits));
    }
    for (i, dff) in netlist.dffs.iter().enumerate() {
        let q = b.intern(GateKind::DffQ(u32::try_from(i).expect("dff index fits")));
        leaf_nets.insert(dff.q.0, q);
        b.nl.dffs.push(crate::net::Dff { d: q, q });
        b.nl.dff_names.push(netlist.dff_names[i].clone());
    }
    for m in &netlist.mems {
        b.nl.mems.push(MemBlock {
            name: m.name.clone(),
            addr_width: m.addr_width,
            data_width: m.data_width,
            rom: m.rom.clone(),
            read_ports: Vec::new(),
            write_ports: Vec::new(),
        });
    }
    for (i, gate) in netlist.gates.iter().enumerate() {
        if let GateKind::MemRead(mem, port_bit) = *gate {
            let old = NetId(u32::try_from(i).expect("net index fits"));
            if live.contains(&old) {
                leaf_nets.insert(old.0, b.intern(GateKind::MemRead(mem, port_bit)));
            }
        }
    }

    // Extract every live root (anything the interface references).
    let mut built: HashMap<Id, NetId> = HashMap::new();
    let net_for = |b: &mut Builder, old: NetId, built: &mut HashMap<Id, NetId>| {
        rebuild_net(b, &egraph, &extractor, class_of[&old], &leaf_nets, built)
    };
    for (i, dff) in netlist.dffs.iter().enumerate() {
        b.nl.dffs[i].d = net_for(&mut b, dff.d, &mut built);
    }
    for (mi, m) in netlist.mems.iter().enumerate() {
        let read_ports = m
            .read_ports
            .iter()
            .map(|p| p.iter().map(|&n| net_for(&mut b, n, &mut built)).collect())
            .collect();
        let write_ports = m
            .write_ports
            .iter()
            .map(|(a, d, e)| {
                (
                    a.iter().map(|&n| net_for(&mut b, n, &mut built)).collect(),
                    d.iter().map(|&n| net_for(&mut b, n, &mut built)).collect(),
                    net_for(&mut b, *e, &mut built),
                )
            })
            .collect();
        b.nl.mems[mi].read_ports = read_ports;
        b.nl.mems[mi].write_ports = write_ports;
    }
    for (name, bits) in &netlist.outputs {
        let new_bits = bits.iter().map(|&n| net_for(&mut b, n, &mut built)).collect();
        b.nl.outputs.push((name.clone(), new_bits));
    }
    b.nl
}

/// Builds the extracted representative of one e-class through the
/// structural [`Builder`], memoized per canonical class and iterative so
/// deep cones cannot overflow the stack.
fn rebuild_net(
    b: &mut Builder,
    egraph: &EGraph,
    extractor: &Extractor,
    root: Id,
    leaf_nets: &HashMap<u32, NetId>,
    built: &mut HashMap<Id, NetId>,
) -> NetId {
    let mut stack = vec![root];
    while let Some(&raw) = stack.last() {
        let id = egraph.find(raw);
        if built.contains_key(&id) {
            stack.pop();
            continue;
        }
        let node = extractor.best(egraph, id).clone();
        let mut missing = Vec::new();
        node.for_each_child(|c| {
            let c = egraph.find(c);
            if !built.contains_key(&c) {
                missing.push(c);
            }
        });
        if !missing.is_empty() {
            stack.extend(missing);
            continue;
        }
        let get = |m: &HashMap<Id, NetId>, c: Id| m[&egraph.find(c)];
        let net = match node {
            ENode::Const(v) => {
                if v.is_true() {
                    b.one
                } else {
                    b.zero
                }
            }
            ENode::Leaf(key, _) => leaf_nets[&key],
            ENode::Unary(EUnOp::Not, a) => {
                let a = get(built, a);
                b.not(a)
            }
            ENode::Bin(op, x, y) => {
                let (x, y) = (get(built, x), get(built, y));
                match op {
                    EBinOp::And => b.and(x, y),
                    EBinOp::Or => b.or(x, y),
                    EBinOp::Xor => b.xor(x, y),
                    _ => unreachable!("non-gate operator extracted from a Boolean e-graph"),
                }
            }
            _ => unreachable!("non-gate node extracted from a Boolean e-graph"),
        };
        built.insert(id, net);
        stack.pop();
    }
    built[&egraph.find(root)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::sim::GateSim;
    use owl_bitvec::BitVec;
    use owl_oyster::Design;
    use owl_sat::StopReason;
    use std::collections::HashMap;
    use std::time::Duration;

    const ALU: &str = "design alu\ninput a 8\ninput b 8\ninput op 2\nregister acc 8\n\
                       output o 8\n\
                       r := if op == 2'x0 then a + b else if op == 2'x1 then a - b \
                       else if op == 2'x2 then a & b else a ^ b\n\
                       acc := acc + r\no := r\nend\n";

    fn netlist_of(text: &str) -> Netlist {
        let d: Design = text.parse().unwrap();
        lower(&d).unwrap()
    }

    fn behaviors_agree(a: &Netlist, bnl: &Netlist, ins: &[(&str, u32, u64)]) {
        let mut s1 = GateSim::new(a);
        let mut s2 = GateSim::new(bnl);
        let inputs: HashMap<String, BitVec> = ins
            .iter()
            .map(|&(n, w, v)| (n.to_string(), BitVec::from_u64(w, v)))
            .collect();
        for _ in 0..4 {
            let o1 = s1.step(&inputs);
            let o2 = s2.step(&inputs);
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn eqsat_level_never_larger_than_structural() {
        let nl = netlist_of(ALU);
        let structural = optimize_with(&nl, OptLevel::Structural);
        let eqsat = optimize_with(&nl, OptLevel::Eqsat);
        assert!(eqsat.stats().total() <= structural.stats().total());
        behaviors_agree(&structural, &eqsat, &[("a", 8, 0xA5), ("b", 8, 0x3C), ("op", 2, 2)]);
    }

    #[test]
    fn none_level_is_identity() {
        let nl = netlist_of(ALU);
        let same = optimize_with(&nl, OptLevel::None);
        assert_eq!(same.stats().total(), nl.stats().total());
    }

    #[test]
    fn eqsat_beats_greedy_on_shared_complement() {
        // o = (a ^ b) | !(a ^ b) is constant 1; the structural pass
        // already gets this, but routed through distinct sub-cones the
        // e-graph proves it too. Check the harder distributed form:
        // (a & c) | (b & c) = (a | b) & c saves one gate.
        let nl = netlist_of(
            "design d\ninput a 1\ninput b 1\ninput c 1\noutput o 1\n\
             o := (a & c) | (b & c)\nend\n",
        );
        let structural = optimize_with(&nl, OptLevel::Structural);
        let eqsat = optimize_with(&nl, OptLevel::Eqsat);
        assert!(eqsat.stats().total() <= structural.stats().total());
        behaviors_agree(&structural, &eqsat, &[("a", 1, 1), ("b", 1, 0), ("c", 1, 1)]);
    }

    #[test]
    fn interrupted_saturation_still_emits_equivalent_netlist() {
        let nl = netlist_of(ALU);
        let structural = optimize(&nl);
        let budget = Budget::unlimited().with_deadline_in(Duration::ZERO);
        assert_eq!(budget.checkpoint(), Some(StopReason::Deadline));
        let out = optimize_eqsat(&structural, &budget, &SaturationLimits::default());
        behaviors_agree(&structural, &out, &[("a", 8, 17), ("b", 8, 250), ("op", 2, 1)]);
    }

    #[test]
    fn randomized_netlist_soundness_sweep() {
        // Deterministic mirror of the workspace-level proptest: random
        // 1-bit gate designs must behave identically before and after
        // the eqsat pass.
        use owl_sat::hash::splitmix64_next as splitmix64;
        for case in 0..64u64 {
            let mut rng = 0xBEEF_CAFEu64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Grow a random expression string over inputs a/b/c/d.
            let vars = ["a", "b", "c", "d"];
            let mut exprs: Vec<String> =
                vars.iter().map(|v| (*v).to_string()).collect();
            for _ in 0..8 {
                let pick = |rng: &mut u64, e: &[String]| {
                    e[(splitmix64(rng) as usize) % e.len()].clone()
                };
                let x = pick(&mut rng, &exprs);
                let y = pick(&mut rng, &exprs);
                let e = match splitmix64(&mut rng) % 4 {
                    0 => format!("({x} & {y})"),
                    1 => format!("({x} | {y})"),
                    2 => format!("({x} ^ {y})"),
                    _ => format!("({x} == {y})"),
                };
                exprs.push(e);
            }
            let body = exprs.last().unwrap();
            let text = format!(
                "design r\ninput a 1\ninput b 1\ninput c 1\ninput d 1\noutput o 1\n\
                 o := {body}\nend\n"
            );
            let nl = netlist_of(&text);
            let out = optimize_with(&nl, OptLevel::Eqsat);
            for assignment in 0..16u64 {
                let ins: HashMap<String, BitVec> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        ((*v).to_string(), BitVec::from_u64(1, (assignment >> i) & 1))
                    })
                    .collect();
                let o1 = GateSim::new(&nl).step(&ins);
                let o2 = GateSim::new(&out).step(&ins);
                assert_eq!(o1, o2, "case {case} assignment {assignment:04b}");
            }
        }
    }
}
