//! `owl-service`: a fault-tolerant multi-session synthesis service.
//!
//! The paper's per-instruction decomposition (§3.2) makes each synthesis
//! job a bag of independent, budgetable tasks — exactly the unit a
//! serving layer wants. This crate stacks a serving layer on top of the
//! robustness primitives the lower crates already provide
//! ([`Budget`](owl_core::Budget) deadlines and cooperative cancellation,
//! journaled crash-resume, the stall watchdog): a [`SynthesisService`]
//! owns a shared worker pool and runs many
//! [`SynthesisSession`](owl_core::SynthesisSession)s concurrently, one
//! per submitted [`JobSpec`].
//!
//! # Queueing model
//!
//! Admission is a **bounded queue**. When the queue is full, the service
//! never grows it silently: it sheds the cheapest-to-retry queued job if
//! the newcomer strictly outranks it, degrades a strictly-lower-priority
//! *running* job to partial-result mode (via its cooperative cancel
//! flag) when only running work outranks the newcomer, and otherwise
//! rejects with a typed [`ServiceError::Overloaded`] carrying a
//! `retry_after` estimate derived from observed job durations.
//!
//! Dispatch is **deadline-aware**: workers pick the highest-priority
//! queued job, earliest absolute deadline first within a priority
//! (EDF), with one anti-starvation override — jobs queued longer than
//! [`ServiceConfig::max_queue_age`] are served strictly FIFO before any
//! ranking applies, so a stream of high-priority arrivals can never
//! starve a low-priority job indefinitely. Job deadlines are fixed at
//! admission time (queue wait counts against them) and are enforced
//! twice: expired jobs are rejected at dequeue with
//! [`ServiceError::Expired`], and running jobs get their session
//! `time_budget` clamped to the time remaining, so a job that reaches
//! its deadline mid-run degrades to a partial [`SynthesisOutput`]
//! instead of being killed.
//!
//! # Retry policy
//!
//! Failures are routed through [`CoreError::class`]
//! ([`ErrorClass`](owl_core::ErrorClass)): *transient* failures (solver
//! exhaustion, watchdog stalls, escaped worker panics) are requeued with
//! deterministic, seeded exponential backoff up to
//! [`ServiceConfig::retry_limit`] times; *permanent* failures (invalid
//! inputs, no solution, isolated panics inside the engine) are surfaced
//! immediately as [`ServiceError::Failed`]. Backoff jitter comes from a
//! splitmix64 hash of `(retry_seed, job id, attempt)`, so a replayed
//! schedule is reproducible.
//!
//! # Recovery protocol
//!
//! With a [`ServiceConfig::journal_dir`] configured, every job runs
//! under a write-ahead journal at a path derived from its name, and
//! every submission *resumes* from that path — a missing journal starts
//! fresh, a partial one replays its intact prefix. Crash recovery is
//! therefore just resubmission: [`SynthesisService::recover`] restarts
//! the pool and re-adopts a batch of jobs, and each re-adopted job's
//! final output and certificate are byte-identical to an uninterrupted
//! run (the journal layer's resume contract). [`scan_journals`] reports
//! what is on disk so an operator can reconcile journals against the
//! jobs they intend to resubmit.
//!
//! # Fault injection
//!
//! The service consumes the [`FaultPlan`]'s dedicated service channel
//! ([`ServiceFault`]) — one draw per dispatch decision — so chaos tests
//! can inject worker panics, queue-ranking corruption, and deadline
//! clock skew at exact scheduling decisions without shifting the solver
//! or journal-I/O fault indices.

use owl_core::journal::read_journal;
use owl_core::{
    AbstractionFn, CacheConfig, CancelFlag, CoreError, ErrorClass, FaultPlan, FileJournal,
    ServiceFault, SynthesisCache, SynthesisConfig, SynthesisOutput, SynthesisSession,
};
use owl_ila::Ila;
use owl_oyster::Design;

// Observability: one tracer handle observes the whole stack; `Report`
// is the unified stats-serialization trait.
pub use owl_trace::{Report, Section, Tracer, Value};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`SynthesisService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool (clamped to at least 1).
    pub workers: usize,
    /// Bounded admission queue capacity. A full queue sheds or rejects
    /// (see [`SynthesisService::submit`]); it never grows without bound.
    pub queue_capacity: usize,
    /// Anti-starvation threshold: a job queued longer than this is
    /// served strictly FIFO, ahead of any priority/deadline ranking.
    pub max_queue_age: Duration,
    /// Transient-failure retries per job before the job is failed.
    pub retry_limit: u32,
    /// Seed for the deterministic backoff jitter.
    pub retry_seed: u64,
    /// Base of the exponential backoff ladder (attempt `n` waits
    /// `base · 2ⁿ` plus jitter, capped at [`max_backoff`](Self::max_backoff)).
    pub base_backoff: Duration,
    /// Ceiling on any single backoff wait.
    pub max_backoff: Duration,
    /// Directory for per-job write-ahead journals. `None` disables
    /// journaling (and with it crash recovery).
    pub journal_dir: Option<PathBuf>,
    /// Directory for the shared synthesis cache. All jobs run by this
    /// instance read and write one content-addressed store
    /// (`owl-cache.store`), so an instruction solved for one job is a
    /// verified warm hit for every later job. `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault-injection plan; the service draws from its
    /// dedicated [`ServiceFault`] channel, once per dispatch decision.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Observability handle. The service emits `service`-layer spans
    /// (queue wait, per-job runs, retry backoff) and admission-decision
    /// counters, and hands the same tracer to every job's session and
    /// the shared cache, so one trace covers the full stack. Disabled
    /// (the default) it costs a single pointer check per probe.
    pub tracer: Tracer,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            max_queue_age: Duration::from_secs(2),
            retry_limit: 2,
            retry_seed: 0x5EED_0111,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_secs(1),
            journal_dir: None,
            cache_dir: None,
            fault_plan: None,
            tracer: Tracer::disabled(),
        }
    }
}

impl ServiceConfig {
    /// Worker threads in the shared pool.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Bounded admission queue capacity (clamped to at least 1).
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Anti-starvation FIFO threshold.
    #[must_use]
    pub fn max_queue_age(mut self, age: Duration) -> Self {
        self.max_queue_age = age;
        self
    }

    /// Transient-failure retries per job.
    #[must_use]
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Seed for the deterministic backoff jitter.
    #[must_use]
    pub fn retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Base of the exponential backoff ladder.
    #[must_use]
    pub fn base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Directory for per-job write-ahead journals.
    #[must_use]
    pub fn journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Directory for the shared synthesis cache.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Deterministic fault-injection plan.
    #[must_use]
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches an observability tracer. The tracer is shared with every
    /// job's [`SynthesisSession`] and the shared cache, so a single
    /// handle observes queueing, synthesis, and solver activity alike.
    /// Tracing is inert: outputs are byte-identical to an untraced run.
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The journal path a job named `name` uses under this
    /// configuration, if journaling is enabled. Exposed so tests and
    /// operators can locate (and diff) a job's journal.
    #[must_use]
    pub fn journal_path(&self, name: &str) -> Option<PathBuf> {
        self.journal_dir.as_ref().map(|d| d.join(format!("{}.journal", sanitize(name))))
    }

    /// The shared cache store file this configuration uses, if caching
    /// is enabled. All jobs of one service instance share this store.
    #[must_use]
    pub fn cache_store_path(&self) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join("owl-cache.store"))
    }
}

/// One synthesis job: the inputs a
/// [`SynthesisSession`](owl_core::SynthesisSession) borrows, plus the
/// service-level envelope (priority, deadline, parallelism).
#[derive(Debug)]
pub struct JobSpec {
    /// Job name: identifies the job in errors, metrics, and its journal
    /// file name (sanitized).
    pub name: String,
    /// The datapath sketch.
    pub design: Design,
    /// The instruction-level specification.
    pub ila: Ila,
    /// The abstraction function.
    pub alpha: AbstractionFn,
    /// Per-session synthesis configuration. The service overrides the
    /// cancel flag (it owns degradation) and clamps `time_budget` to
    /// the job's remaining deadline at dispatch.
    pub config: SynthesisConfig,
    /// Scheduling priority: higher runs first, and only a strictly
    /// higher priority can shed or degrade other work.
    pub priority: u8,
    /// Wall-clock deadline, measured from *admission* (queue wait
    /// counts). `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Worker threads for the job's own per-instruction scheduler.
    pub parallelism: usize,
}

impl JobSpec {
    /// A job with default envelope: priority 0, no deadline,
    /// `parallelism(1)`, default [`SynthesisConfig`].
    pub fn new(name: impl Into<String>, design: Design, ila: Ila, alpha: AbstractionFn) -> Self {
        JobSpec {
            name: name.into(),
            design,
            ila,
            alpha,
            config: SynthesisConfig::default(),
            priority: 0,
            deadline: None,
            parallelism: 1,
        }
    }

    /// Replaces the synthesis configuration.
    #[must_use]
    pub fn config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// Scheduling priority (higher runs first).
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Wall-clock deadline from admission.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Worker threads for the job's per-instruction scheduler.
    #[must_use]
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }
}

/// Typed service-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The queue is full and the job did not outrank anything worth
    /// shedding. `retry_after` estimates when capacity should free up.
    Overloaded {
        /// Suggested client backoff, from observed job durations.
        retry_after: Duration,
    },
    /// The job was admitted but later shed to make room for
    /// higher-priority work. Shed jobs were never started, so
    /// resubmitting them is always safe.
    Shed,
    /// The job's deadline passed before a worker could start it.
    Expired,
    /// The service is shutting down and no longer accepts or runs jobs.
    ShuttingDown,
    /// The job failed after `attempts` runs; `error` is the final
    /// (classified) engine error.
    Failed {
        /// Total runs, including the first attempt.
        attempts: u32,
        /// The last error the engine returned.
        error: CoreError,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after } => write!(
                f,
                "service overloaded; retry after {:.3}s",
                retry_after.as_secs_f64()
            ),
            ServiceError::Shed => write!(f, "job shed under queue pressure before starting"),
            ServiceError::Expired => write!(f, "job deadline passed while queued"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Failed { attempts, error } => {
                write!(f, "job failed after {attempts} attempt(s): {error}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// How [`SynthesisService::shutdown`] treats in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Finish every queued and running job, then stop.
    Drain,
    /// Cancel running jobs cooperatively (they journal partial results
    /// and return early) and fail queued jobs with
    /// [`ServiceError::ShuttingDown`].
    Abort,
}

/// Monotonic counters describing what a service instance has done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Jobs admitted (including re-adopted ones).
    pub submitted: u64,
    /// Jobs that delivered an output (complete or partial).
    pub completed: u64,
    /// Jobs that delivered a typed failure.
    pub failed: u64,
    /// Queued jobs shed under pressure.
    pub shed: u64,
    /// Jobs rejected at admission with [`ServiceError::Overloaded`].
    pub rejected: u64,
    /// Transient-failure retries performed.
    pub retried: u64,
    /// Jobs whose deadline passed while queued.
    pub expired: u64,
    /// Running jobs downgraded to partial-result mode under pressure.
    pub degraded: u64,
    /// Incomplete journals re-adopted by [`SynthesisService::recover`].
    pub recovered: u64,
    /// Worker panics caught and isolated.
    pub worker_panics: u64,
    /// Synthesis-cache hits adopted after re-verification, summed over
    /// every job this instance completed.
    pub cache_hits: u64,
    /// Synthesis-cache misses, summed over completed jobs.
    pub cache_misses: u64,
    /// Cached entries rejected by verify-on-hit (stale or corrupt),
    /// summed over completed jobs.
    pub cache_verify_rejected: u64,
}

impl Report for ServiceMetrics {
    fn report(&self) -> Section {
        Section::new()
            .with("submitted", self.submitted)
            .with("completed", self.completed)
            .with("failed", self.failed)
            .with("shed", self.shed)
            .with("rejected", self.rejected)
            .with("retried", self.retried)
            .with("expired", self.expired)
            .with("degraded", self.degraded)
            .with("recovered", self.recovered)
            .with("worker_panics", self.worker_panics)
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("cache_verify_rejected", self.cache_verify_rejected)
    }
}

/// A claim ticket for a submitted job.
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    name: String,
    rx: Receiver<Result<SynthesisOutput, ServiceError>>,
}

impl JobHandle {
    /// The service-assigned job id (unique per service instance).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's name, as submitted.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the job delivers.
    ///
    /// # Errors
    ///
    /// Returns the job's typed [`ServiceError`]; if the service was
    /// dropped without delivering, [`ServiceError::ShuttingDown`].
    pub fn wait(self) -> Result<SynthesisOutput, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the job is still in flight.
    pub fn try_wait(&self) -> Option<Result<SynthesisOutput, ServiceError>> {
        self.rx.try_recv().ok()
    }
}

/// What [`scan_journals`] found for one journal file.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The journal file.
    pub path: PathBuf,
    /// The file stem (the sanitized job name).
    pub stem: String,
    /// The header fingerprint, when intact.
    pub fingerprint: Option<u64>,
    /// Intact records recovered.
    pub records: usize,
    /// True when the journal carries its end marker — the job finished.
    pub complete: bool,
    /// True when a corrupt tail was discarded.
    pub truncated: bool,
}

/// Lists the `*.journal` files under `dir` with their recovered state,
/// sorted by file stem. Journals that fail to read entirely degrade to
/// an entry with no fingerprint and zero records — scanning never
/// fails on corruption, only on directory I/O errors.
///
/// # Errors
///
/// Propagates directory-listing I/O errors.
pub fn scan_journals(dir: &Path) -> std::io::Result<Vec<JournalEntry>> {
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("journal") {
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("").to_string();
        let mut io = FileJournal::new(&path, None);
        let contents = read_journal(&mut io);
        entries.push(JournalEntry {
            path,
            stem,
            fingerprint: contents.fingerprint,
            records: contents.records.len(),
            complete: contents.complete,
            truncated: contents.truncated,
        });
    }
    entries.sort_by(|a, b| a.stem.cmp(&b.stem));
    Ok(entries)
}

/// Derives a journal file stem from a job name: alphanumerics, `-`,
/// and `_` pass through; everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

// splitmix64 for deterministic backoff jitter: the shared definition.
use owl_smt::hash::splitmix64;

/// One queued (or requeued) job.
struct QueuedJob {
    id: u64,
    /// Admission order, for the anti-starvation FIFO and tie-breaking.
    seq: u64,
    spec: JobSpec,
    /// First admission instant (aging is measured from here, across
    /// retries).
    enqueued: Instant,
    /// Absolute deadline, fixed at first admission.
    deadline_at: Option<Instant>,
    /// Runs so far (0 before the first).
    attempt: u32,
    /// Backoff gate: not dispatchable before this instant.
    eligible_at: Instant,
    /// Shared with the running-job registry so admission-time pressure
    /// can degrade the job mid-run.
    cancel: CancelFlag,
    tx: Sender<Result<SynthesisOutput, ServiceError>>,
}

/// The running-job registry entry (for degradation victims).
struct RunningJob {
    id: u64,
    priority: u8,
    cancel: CancelFlag,
}

struct State {
    queue: Vec<QueuedJob>,
    running: Vec<RunningJob>,
    shutdown: Option<Shutdown>,
    next_id: u64,
    next_seq: u64,
    metrics: ServiceMetrics,
    /// Recent completed-job durations (seconds), for the
    /// `retry_after` estimate. Bounded ring.
    recent_secs: VecDeque<f64>,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on new work, shutdown, and backoff-gate changes.
    work: Condvar,
    config: ServiceConfig,
    /// The shared synthesis cache, opened once per instance when
    /// [`ServiceConfig::cache_dir`] is set. Every job's session attaches
    /// to this handle, so hits cross job boundaries.
    cache: Option<Arc<SynthesisCache>>,
}

/// A running synthesis service: a bounded admission queue in front of a
/// shared worker pool. See the crate docs for the queueing, retry, and
/// recovery contracts.
pub struct SynthesisService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for SynthesisService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SynthesisService").field("workers", &self.workers.len()).finish()
    }
}

impl SynthesisService {
    /// Starts the worker pool. Creates the journal directory if
    /// configured and missing (creation failure disables journaling for
    /// the instance rather than failing startup — the same fail-open
    /// stance the journal writer takes).
    #[must_use]
    pub fn start(config: ServiceConfig) -> SynthesisService {
        let mut config = config;
        config.workers = config.workers.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        if let Some(dir) = &config.journal_dir {
            if std::fs::create_dir_all(dir).is_err() {
                config.journal_dir = None;
            }
        }
        if let Some(dir) = &config.cache_dir {
            if std::fs::create_dir_all(dir).is_err() {
                config.cache_dir = None;
            }
        }
        // The store itself is fail-open too: an unwritable or foreign
        // file degrades to a memory-only cache rather than failing
        // startup.
        let cache = config.cache_store_path().map(|path| {
            Arc::new(SynthesisCache::open(
                &path,
                CacheConfig {
                    faults: config.fault_plan.clone(),
                    tracer: config.tracer.clone(),
                    ..CacheConfig::default()
                },
            ))
        });
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: Vec::new(),
                running: Vec::new(),
                shutdown: None,
                next_id: 0,
                next_seq: 0,
                metrics: ServiceMetrics::default(),
                recent_secs: VecDeque::new(),
            }),
            work: Condvar::new(),
            config,
            cache,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("owl-service-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        SynthesisService { shared, workers }
    }

    /// Restarts a service after a crash and re-adopts `jobs`: every job
    /// is admitted unconditionally (these jobs were already admitted
    /// once — recovery must not re-apply admission control) and, when
    /// journaling is configured, resumes from its journal so completed
    /// instructions replay instead of re-solving. Jobs whose journal is
    /// incomplete count toward [`ServiceMetrics::recovered`].
    #[must_use]
    pub fn recover(config: ServiceConfig, jobs: Vec<JobSpec>) -> (SynthesisService, Vec<JobHandle>) {
        let service = SynthesisService::start(config);
        let mut adopted = 0u64;
        for job in &jobs {
            let Some(path) = service.shared.config.journal_path(&job.name) else { continue };
            if !path.exists() {
                continue;
            }
            let mut io = FileJournal::new(&path, None);
            if !read_journal(&mut io).complete {
                adopted += 1;
            }
        }
        let handles = {
            let mut state = service.shared.state.lock().expect("service state poisoned");
            state.metrics.recovered += adopted;
            jobs.into_iter().map(|job| service.admit(&mut state, job)).collect()
        };
        service.shared.work.notify_all();
        (service, handles)
    }

    /// Submits a job through admission control.
    ///
    /// When the queue is full, in order: (1) the lowest-ranked queued
    /// job strictly below the newcomer's priority is shed (it resolves
    /// with [`ServiceError::Shed`]); (2) failing that, a running job
    /// strictly below the newcomer's priority is degraded to
    /// partial-result mode via its cancel flag and the newcomer is
    /// admitted over capacity (bounded overshoot: one per freed
    /// worker); (3) otherwise the submission is rejected with
    /// [`ServiceError::Overloaded`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] as above, or
    /// [`ServiceError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// began.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.shutdown.is_some() {
            return Err(ServiceError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.config.queue_capacity {
            // (1) Shed the cheapest-to-retry queued job the newcomer
            // outranks: lowest priority first, youngest (least queue
            // wait lost) within a priority. Shed jobs never started, so
            // the client can resubmit at no lost work.
            let victim = state
                .queue
                .iter()
                .enumerate()
                .filter(|(_, q)| q.spec.priority < spec.priority)
                .min_by_key(|(_, q)| (q.spec.priority, std::cmp::Reverse(q.seq)))
                .map(|(i, _)| i);
            if let Some(i) = victim {
                let shed = state.queue.remove(i);
                let tracer = &self.shared.config.tracer;
                if tracer.is_enabled() {
                    tracer.instant("service", format!("shed:{}", shed.spec.name));
                    tracer.count("service", "shed", 1);
                }
                let _ = shed.tx.send(Err(ServiceError::Shed));
                state.metrics.shed += 1;
            } else if let Some(r) = state
                .running
                .iter()
                .filter(|r| r.priority < spec.priority && !r.cancel.is_cancelled())
                .min_by_key(|r| r.priority)
            {
                // (2) Degrade: the victim finishes early with whatever
                // it has (partial-result mode), freeing its worker.
                r.cancel.cancel();
                let tracer = &self.shared.config.tracer;
                if tracer.is_enabled() {
                    tracer.instant("service", format!("degrade:job-{}", r.id));
                    tracer.count("service", "degraded", 1);
                }
                state.metrics.degraded += 1;
            } else {
                // (3) Typed rejection with a backoff hint.
                let retry_after = estimate_retry_after(&state, &self.shared.config);
                state.metrics.rejected += 1;
                self.shared.config.tracer.count("service", "rejected", 1);
                return Err(ServiceError::Overloaded { retry_after });
            }
        }
        let handle = self.admit(&mut state, spec);
        drop(state);
        self.shared.work.notify_one();
        Ok(handle)
    }

    /// Unconditional admission (caller holds the lock and has already
    /// made room or decided to bypass capacity).
    fn admit(&self, state: &mut State, spec: JobSpec) -> JobHandle {
        let now = Instant::now();
        let id = state.next_id;
        state.next_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let (tx, rx) = channel();
        let handle = JobHandle { id, name: spec.name.clone(), rx };
        let deadline_at = spec.deadline.map(|d| now + d);
        state.queue.push(QueuedJob {
            id,
            seq,
            spec,
            enqueued: now,
            deadline_at,
            attempt: 0,
            eligible_at: now,
            cancel: CancelFlag::new(),
            tx,
        });
        state.metrics.submitted += 1;
        let tracer = &self.shared.config.tracer;
        if tracer.is_enabled() {
            tracer.instant("service", format!("admit:{}", handle.name));
            tracer.count("service", "submitted", 1);
        }
        handle
    }

    /// A snapshot of the service counters.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.state.lock().expect("service state poisoned").metrics.clone()
    }

    /// Queued (not running) jobs right now.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().expect("service state poisoned").queue.len()
    }

    /// Stops the service and joins the worker pool.
    ///
    /// [`Shutdown::Drain`] finishes every queued and running job first;
    /// [`Shutdown::Abort`] cancels running jobs cooperatively (their
    /// journals keep the partial progress for a later
    /// [`recover`](Self::recover)) and fails queued jobs with
    /// [`ServiceError::ShuttingDown`]. Returns the final metrics.
    #[must_use]
    pub fn shutdown(mut self, mode: Shutdown) -> ServiceMetrics {
        self.begin_shutdown(mode);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.state.lock().expect("service state poisoned").metrics.clone()
    }

    fn begin_shutdown(&self, mode: Shutdown) {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.shutdown.is_none() {
            state.shutdown = Some(mode);
        }
        if mode == Shutdown::Abort {
            for running in &state.running {
                running.cancel.cancel();
            }
            for queued in state.queue.drain(..) {
                let _ = queued.tx.send(Err(ServiceError::ShuttingDown));
            }
        }
        drop(state);
        self.shared.work.notify_all();
    }
}

impl Drop for SynthesisService {
    /// Dropping without [`shutdown`](SynthesisService::shutdown) aborts:
    /// running jobs are cancelled cooperatively and the pool is joined,
    /// so no worker thread outlives the handle.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.begin_shutdown(Shutdown::Abort);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// `retry_after` heuristic: (jobs ahead / workers) × the mean recent
/// job duration, floored at the base backoff.
fn estimate_retry_after(state: &State, config: &ServiceConfig) -> Duration {
    let in_flight = state.queue.len() + state.running.len();
    let waves = in_flight.div_ceil(config.workers).max(1) as f64;
    let mean = if state.recent_secs.is_empty() {
        config.base_backoff.as_secs_f64().max(0.001)
    } else {
        state.recent_secs.iter().sum::<f64>() / state.recent_secs.len() as f64
    };
    Duration::from_secs_f64((waves * mean).max(config.base_backoff.as_secs_f64()))
}

/// Ranks `queue[i]` for dispatch; smaller is better. Over-age jobs are
/// served strictly FIFO ahead of everything (anti-starvation), then
/// priority (higher first), then EDF (earlier absolute deadline first,
/// deadline-free jobs last), then admission order.
fn rank(q: &QueuedJob, now: Instant, max_age: Duration) -> (u8, u64, u8, u128, u64) {
    let over_age = now.duration_since(q.enqueued) > max_age;
    if over_age {
        (0, q.seq, 0, 0, 0)
    } else {
        let deadline_key = match q.deadline_at {
            Some(d) => d.saturating_duration_since(now).as_nanos(),
            None => u128::MAX,
        };
        (1, 0, u8::MAX - q.spec.priority, deadline_key, q.seq)
    }
}

/// The dispatch decision a worker made while holding the lock.
enum Picked {
    /// Run this job (removed from the queue); `inject_panic` carries a
    /// [`ServiceFault::WorkerPanic`] drawn for this decision.
    Job(Box<QueuedJob>, bool),
    /// Nothing eligible before this instant (backoff gates pending).
    WaitUntil(Instant),
    /// Queue empty — park until signalled.
    Park,
    /// Shut down this worker.
    Exit,
}

fn pick(state: &mut State, config: &ServiceConfig) -> Picked {
    match state.shutdown {
        Some(Shutdown::Abort) => return Picked::Exit,
        Some(Shutdown::Drain) if state.queue.is_empty() => return Picked::Exit,
        _ => {}
    }
    if state.queue.is_empty() {
        return Picked::Park;
    }
    let now = Instant::now();
    let eligible: Vec<usize> = (0..state.queue.len())
        .filter(|&i| state.queue[i].eligible_at <= now)
        .collect();
    if eligible.is_empty() {
        let soonest = state
            .queue
            .iter()
            .map(|q| q.eligible_at)
            .min()
            .expect("non-empty queue has a soonest gate");
        return Picked::WaitUntil(soonest);
    }
    // One draw from the service fault channel per dispatch decision.
    let fault = config.fault_plan.as_ref().and_then(|p| p.next_service_fault());
    let mut inject_panic = false;
    let mut skew = Duration::ZERO;
    let mut corrupt = false;
    match fault {
        Some(ServiceFault::WorkerPanic) => inject_panic = true,
        Some(ServiceFault::SkewDeadline(ms)) => skew = Duration::from_millis(ms),
        Some(ServiceFault::QueueCorrupt) => corrupt = true,
        None => {}
    }
    let max_age = config.max_queue_age;
    let key = |i: &&usize| rank(&state.queue[**i], now, max_age);
    let chosen = if corrupt {
        // Corrupted ranking: the *worst* job is dispatched. Latency
        // ordering degrades; correctness must not.
        *eligible.iter().max_by_key(key).expect("eligible non-empty")
    } else {
        *eligible.iter().min_by_key(key).expect("eligible non-empty")
    };
    let job = state.queue.remove(chosen);
    // Deadline enforcement at dequeue, under (possibly skewed) time.
    if let Some(deadline) = job.deadline_at {
        if deadline <= now + skew {
            state.metrics.expired += 1;
            let tracer = &config.tracer;
            if tracer.is_enabled() {
                tracer.instant("service", format!("expired:{}", job.spec.name));
                tracer.count("service", "expired", 1);
            }
            let _ = job.tx.send(Err(ServiceError::Expired));
            // The decision dispatched nothing; look again immediately.
            return pick(state, config);
        }
    }
    Picked::Job(Box::new(job), inject_panic)
}

/// What a finished run means for the job: deliver or retry.
enum RunVerdict {
    Deliver(Result<SynthesisOutput, ServiceError>),
    Retry(CoreError),
}

/// Applies the retry classification to one run's result.
fn classify_run(
    result: std::thread::Result<Result<SynthesisOutput, CoreError>>,
    attempt_no: u32,
) -> RunVerdict {
    match result {
        // Worker panic (injected or real): isolated, transient.
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panic".to_string());
            RunVerdict::Retry(CoreError::Internal { instr: "<service>".to_string(), message })
        }
        Ok(Err(error)) => match error.class() {
            // Validation failures reproduce under any retry.
            ErrorClass::Permanent | ErrorClass::GlobalStop => {
                RunVerdict::Deliver(Err(ServiceError::Failed { attempts: attempt_no, error }))
            }
            ErrorClass::Transient => RunVerdict::Retry(error),
        },
        Ok(Ok(output)) => {
            // A deadline or degradation stop is the *contract* of
            // partial-result mode: deliver what completed.
            if output.interrupted.is_some() {
                return RunVerdict::Deliver(Ok(output));
            }
            // Otherwise retry whole-job only for transient
            // per-instruction failures (solver exhaustion, stalls).
            let transient = output.outcomes.iter().find_map(|o| match &o.status {
                owl_core::InstrStatus::Failed(e) if e.class() == ErrorClass::Transient => {
                    Some(e.clone())
                }
                _ => None,
            });
            match transient {
                Some(error) => RunVerdict::Retry(error),
                None => RunVerdict::Deliver(Ok(output)),
            }
        }
    }
}

/// Backoff before retry `attempt` (1-based): `base · 2^(attempt-1)`
/// plus up to one extra `base` of deterministic jitter, capped.
fn backoff(config: &ServiceConfig, job_id: u64, attempt: u32) -> Duration {
    let base = config.base_backoff.max(Duration::from_micros(1));
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let jitter_num = splitmix64(config.retry_seed ^ (job_id << 17) ^ u64::from(attempt)) % 1000;
    let jitter = base.mul_f64(jitter_num as f64 / 1000.0);
    (exp + jitter).min(config.max_backoff)
}

fn worker_loop(shared: &Shared) {
    loop {
        let (job, inject_panic) = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                match pick(&mut state, &shared.config) {
                    Picked::Exit => return,
                    Picked::Job(job, inject) => {
                        state.running.push(RunningJob {
                            id: job.id,
                            priority: job.spec.priority,
                            cancel: job.cancel.clone(),
                        });
                        break (job, inject);
                    }
                    Picked::WaitUntil(when) => {
                        let timeout = when.saturating_duration_since(Instant::now());
                        let (next, _) = shared
                            .work
                            .wait_timeout(state, timeout.max(Duration::from_micros(100)))
                            .expect("service state poisoned");
                        state = next;
                    }
                    Picked::Park => {
                        state = shared.work.wait(state).expect("service state poisoned");
                    }
                }
            }
        };
        let started = Instant::now();
        let mut job = *job;
        job.attempt += 1;
        let attempt_no = job.attempt;
        let tracer = &shared.config.tracer;
        // The queue-wait span covers admission (or retry requeue) to
        // dispatch, backoff gates included.
        if tracer.is_enabled() {
            tracer.span_from("service", format!("queue-wait:{}", job.spec.name), job.enqueued);
        }
        let _job_span = if tracer.is_enabled() {
            Some(tracer.span("service", format!("job:{}:attempt-{attempt_no}", job.spec.name)))
        } else {
            None
        };

        // Session config for this attempt: the service owns the cancel
        // flag, and the remaining deadline clamps the time budget so a
        // job that reaches its deadline mid-run degrades to a partial
        // output instead of overstaying.
        let mut config = job.spec.config.clone();
        config.cancel = job.cancel.clone();
        if let Some(deadline) = job.deadline_at {
            let remaining = deadline.saturating_duration_since(started);
            config.time_budget = Some(config.time_budget.map_or(remaining, |t| t.min(remaining)));
        }
        let journal = shared.config.journal_path(&job.spec.name);

        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected service fault: worker panic");
            }
            let mut session = SynthesisSession::new(&job.spec.design, &job.spec.ila, &job.spec.alpha)
                .config(config)
                .parallelism(job.spec.parallelism)
                .tracer(shared.config.tracer.clone());
            if let Some(path) = &journal {
                session = session.resume(path);
            }
            if let Some(cache) = &shared.cache {
                session = session.cache(Arc::clone(cache));
            }
            session.run()
        }));
        let panicked = result.is_err();
        let verdict = classify_run(result, attempt_no);

        let mut state = shared.state.lock().expect("service state poisoned");
        state.running.retain(|r| r.id != job.id);
        if panicked {
            state.metrics.worker_panics += 1;
            tracer.count("service", "worker_panics", 1);
        }
        match verdict {
            RunVerdict::Retry(error)
                if attempt_no <= shared.config.retry_limit
                    && state.shutdown != Some(Shutdown::Abort) =>
            {
                state.metrics.retried += 1;
                // A journaled transient failure would replay as Failed
                // on resume; clear it so the retry genuinely re-solves.
                // (Panic journals hold only intact completed records and
                // are kept — resume replays them for free.)
                if !panicked {
                    if let Some(path) = &journal {
                        let _ = std::fs::remove_file(path);
                    }
                }
                let _ = error;
                let wait = backoff(&shared.config, job.id, attempt_no);
                if tracer.is_enabled() {
                    tracer.instant(
                        "service",
                        format!(
                            "retry-backoff:{}:attempt-{attempt_no}:{}ms",
                            job.spec.name,
                            wait.as_millis()
                        ),
                    );
                    tracer.count("service", "retried", 1);
                }
                job.eligible_at = Instant::now() + wait;
                state.queue.push(job);
                drop(state);
                shared.work.notify_all();
                continue;
            }
            RunVerdict::Retry(error) => {
                state.metrics.failed += 1;
                tracer.count("service", "failed", 1);
                let _ = job.tx.send(Err(ServiceError::Failed { attempts: attempt_no, error }));
            }
            RunVerdict::Deliver(outcome) => {
                match &outcome {
                    Ok(output) => {
                        state.metrics.completed += 1;
                        tracer.count("service", "completed", 1);
                        state.metrics.cache_hits += output.stats.cache.hits;
                        state.metrics.cache_misses += output.stats.cache.misses;
                        state.metrics.cache_verify_rejected += output.stats.cache.verify_rejected;
                        let secs = started.elapsed().as_secs_f64();
                        state.recent_secs.push_back(secs);
                        if state.recent_secs.len() > 32 {
                            state.recent_secs.pop_front();
                        }
                    }
                    Err(_) => {
                        state.metrics.failed += 1;
                        tracer.count("service", "failed", 1);
                    }
                }
                let _ = job.tx.send(outcome);
            }
        }
        drop(state);
        shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone_in_expectation() {
        let config = ServiceConfig::default();
        assert_eq!(backoff(&config, 7, 1), backoff(&config, 7, 1));
        assert_ne!(backoff(&config, 7, 1), backoff(&config, 8, 1));
        // The exponential term dominates the one-base jitter.
        assert!(backoff(&config, 7, 3) > backoff(&config, 7, 1));
        assert!(backoff(&config, 7, 60) <= config.max_backoff);
    }

    #[test]
    fn sanitize_keeps_journal_stems_filesystem_safe() {
        assert_eq!(sanitize("rv32i/add v2"), "rv32i_add_v2");
        assert_eq!(sanitize("ok-name_9"), "ok-name_9");
    }

    #[test]
    fn journal_path_derives_from_name() {
        let config = ServiceConfig::default().journal_dir("/tmp/owl-svc");
        assert_eq!(
            config.journal_path("job one"),
            Some(PathBuf::from("/tmp/owl-svc/job_one.journal"))
        );
        assert_eq!(ServiceConfig::default().journal_path("job one"), None);
    }

    #[test]
    fn error_display_is_actionable() {
        let e = ServiceError::Overloaded { retry_after: Duration::from_millis(1500) };
        assert_eq!(e.to_string(), "service overloaded; retry after 1.500s");
        let f = ServiceError::Failed {
            attempts: 3,
            error: CoreError::SolverExhausted { instr: "add".to_string() },
        };
        assert!(f.to_string().contains("after 3 attempt(s)"));
    }
}
