//! Service-semantics tests: typed overload behavior, EDF dispatch under
//! contention, drain-vs-abort shutdown, classified retries, service
//! fault injection, and the crash-recovery matrix (abort mid-run,
//! recover, byte-identical outputs). Process-level SIGKILL chaos lives
//! in CI (`service-chaos`), driving `bench_owl --service`.

use owl_core::{
    CoreError, Fault, FaultPlan, ServiceFault, SynthesisConfig, SynthesisOutput, SynthesisSession,
};
use owl_service::{
    scan_journals, JobSpec, ServiceConfig, ServiceError, Shutdown, SynthesisService,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A fresh per-test journal directory under the system temp dir.
fn journal_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("owl_service_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A job over the accumulator case study.
fn accumulator_job(name: &str) -> JobSpec {
    let cs = owl_cores::accumulator::case_study();
    JobSpec::new(name, cs.sketch, cs.spec, cs.alpha)
}

/// A job whose every solver call first sleeps `ms` — same results,
/// slower wall-clock; the lever for keeping workers busy on demand.
fn slow_job(name: &str, ms: u64) -> JobSpec {
    let plan = (0..64).fold(FaultPlan::new(), |p, i| p.at(i, Fault::StallMillis(ms)));
    let config = SynthesisConfig::builder().fault_plan(Arc::new(plan)).certify(false).build();
    accumulator_job(name).config(config)
}

/// The byte-identical contract from `tests/durability.rs`, applied to
/// service-recovered outputs (`stats.replayed`/`elapsed` are
/// provenance, outside the contract).
fn assert_outputs_identical(label: &str, a: &SynthesisOutput, b: &SynthesisOutput) {
    assert_eq!(a.solutions.len(), b.solutions.len(), "{label}: solution count");
    for (x, y) in a.solutions.iter().zip(&b.solutions) {
        assert_eq!(x.instr, y.instr, "{label}: solution order");
        assert_eq!(x.holes, y.holes, "{label}: hole values for {}", x.instr);
    }
    assert_eq!(
        format!("{:?}", a.outcomes),
        format!("{:?}", b.outcomes),
        "{label}: per-instruction outcomes"
    );
    assert_eq!(a.stats.solver_calls, b.stats.solver_calls, "{label}: solver calls");
    assert_eq!(a.stats.cex_rounds, b.stats.cex_rounds, "{label}: CEGIS rounds");
    assert_eq!(a.stats.escalations, b.stats.escalations, "{label}: escalations");
    match (&a.certificate, &b.certificate) {
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.to_string(), cb.to_string(), "{label}: certificates")
        }
        (None, None) => {}
        _ => panic!("{label}: one run certified, the other did not"),
    }
    assert_eq!(
        format!("{:?}", a.interrupted),
        format!("{:?}", b.interrupted),
        "{label}: interrupt"
    );
}

/// A full queue with nothing to shed rejects with a typed
/// `Overloaded { retry_after }` — no panic, no deadlock, no unbounded
/// queue growth — and the service stays healthy for later work.
#[test]
fn overload_is_typed_not_fatal() {
    let service = SynthesisService::start(
        ServiceConfig::default().workers(1).queue_capacity(1),
    );
    // Occupy the single worker, then fill the single queue slot.
    let busy = service.submit(slow_job("busy", 200)).expect("admitted");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = service.submit(slow_job("queued", 10)).expect("admitted");
    // Same priority as everything queued: nothing to shed, so the
    // submission must bounce with a backoff hint.
    let err = service.submit(accumulator_job("rejected")).expect_err("queue is full");
    match err {
        ServiceError::Overloaded { retry_after } => {
            assert!(retry_after > Duration::ZERO, "retry_after must be a usable hint")
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The rejection must not have wedged anything.
    assert!(busy.wait().is_ok(), "running job survives overload");
    assert!(queued.wait().is_ok(), "queued job survives overload");
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.shed, 0);
    assert_eq!(metrics.completed, 2);
}

/// Under pressure a strictly higher-priority newcomer sheds the
/// cheapest queued job (which resolves with `Shed`, never silently
/// vanishes), and the newcomer takes its place.
#[test]
fn higher_priority_sheds_queued_work() {
    let service = SynthesisService::start(
        ServiceConfig::default().workers(1).queue_capacity(1),
    );
    let busy = service.submit(slow_job("busy", 200)).expect("admitted");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim = service.submit(accumulator_job("victim").priority(1)).expect("admitted");
    let vip = service.submit(accumulator_job("vip").priority(5)).expect("outranks the victim");
    assert!(matches!(victim.wait(), Err(ServiceError::Shed)));
    assert!(vip.wait().is_ok(), "the shedding beneficiary completes");
    assert!(busy.wait().is_ok());
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.shed, 1);
    assert_eq!(metrics.rejected, 0);
}

/// When only *running* work is below the newcomer's priority, the
/// lowest-priority running job is degraded to partial-result mode via
/// its cancel flag (typed, cooperative) and the newcomer is admitted.
#[test]
fn pressure_degrades_running_jobs_to_partial_results() {
    let service = SynthesisService::start(
        ServiceConfig::default().workers(1).queue_capacity(1),
    );
    let low = service.submit(slow_job("low", 400).priority(0)).expect("admitted");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let high_queued = service.submit(accumulator_job("queued-high").priority(9)).expect("admitted");
    // Queue full; the queued job outranks the newcomer, but the
    // *running* job does not — so the running job is downgraded.
    let newcomer = service.submit(accumulator_job("mid").priority(5)).expect("admitted via degrade");
    let degraded = low.wait().expect("degradation is partial results, not an error");
    assert!(
        matches!(degraded.interrupted, Some(CoreError::Cancelled)),
        "the degraded job reports its cooperative stop, got {:?}",
        degraded.interrupted
    );
    assert!(high_queued.wait().is_ok());
    assert!(newcomer.wait().is_ok());
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.degraded, 1);
    assert_eq!(metrics.shed, 0);
}

/// Dispatch under contention: with one worker pinned, queued jobs run
/// highest-priority first, EDF within a priority, and a job older than
/// `max_queue_age` jumps the whole ranking (anti-starvation).
#[test]
fn dispatch_is_edf_with_priority_and_aging() {
    let service = SynthesisService::start(
        ServiceConfig::default()
            .workers(1)
            .queue_capacity(8)
            .max_queue_age(Duration::from_secs(3600)),
    );
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let watch = |name: &'static str, handle: owl_service::JobHandle| {
        let order = Arc::clone(&order);
        std::thread::spawn(move || {
            handle.wait().expect("job completes");
            order.lock().unwrap().push(name);
        })
    };
    // Pin the worker so every later submission queues up behind it.
    let blocker = service.submit(slow_job("blocker", 300)).expect("admitted");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Same priority, different deadlines: EDF picks the tighter one
    // first and the deadline-free job last... (Jobs are slowed so the
    // completion-order observers can't race each other.)
    let loose = watch("loose", service.submit(slow_job("loose", 60).deadline(Duration::from_secs(600))).expect("ok"));
    let tight = watch("tight", service.submit(slow_job("tight", 60).deadline(Duration::from_secs(60))).expect("ok"));
    let free = watch("free", service.submit(slow_job("free", 60)).expect("ok"));
    // ...except that priority dominates deadlines entirely.
    let vip = watch("vip", service.submit(slow_job("vip", 60).priority(9)).expect("ok"));
    blocker.wait().expect("blocker completes");
    for t in [vip, tight, loose, free] {
        t.join().expect("watcher");
    }
    assert_eq!(*order.lock().unwrap(), vec!["vip", "tight", "loose", "free"]);
    let _ = service.shutdown(Shutdown::Drain);
}

/// Anti-starvation: a job queued past `max_queue_age` is served FIFO
/// ahead of younger, higher-priority arrivals.
#[test]
fn over_age_jobs_cannot_be_starved() {
    let service = SynthesisService::start(
        ServiceConfig::default()
            .workers(1)
            .queue_capacity(8)
            .max_queue_age(Duration::from_millis(50)),
    );
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let watch = |name: &'static str, handle: owl_service::JobHandle| {
        let order = Arc::clone(&order);
        std::thread::spawn(move || {
            handle.wait().expect("job completes");
            order.lock().unwrap().push(name);
        })
    };
    let blocker = service.submit(slow_job("blocker", 200)).expect("admitted");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let elder = watch("elder", service.submit(slow_job("elder", 60).priority(0)).expect("ok"));
    // Let the elder age past the threshold while the blocker runs.
    std::thread::sleep(Duration::from_millis(80));
    let vip = watch("vip", service.submit(slow_job("vip", 60).priority(9)).expect("ok"));
    blocker.wait().expect("blocker completes");
    for t in [elder, vip] {
        t.join().expect("watcher");
    }
    assert_eq!(*order.lock().unwrap(), vec!["elder", "vip"]);
    let _ = service.shutdown(Shutdown::Drain);
}

/// Drain finishes everything; abort cancels running work cooperatively
/// (partial results, journaled) and fails queued work with a typed
/// `ShuttingDown`.
#[test]
fn drain_finishes_and_abort_cuts_losses() {
    // Drain.
    let service = SynthesisService::start(ServiceConfig::default().workers(2));
    let a = service.submit(accumulator_job("a")).expect("ok");
    let b = service.submit(accumulator_job("b")).expect("ok");
    let metrics = service.shutdown(Shutdown::Drain);
    assert!(a.wait().expect("drained").is_complete());
    assert!(b.wait().expect("drained").is_complete());
    assert_eq!(metrics.completed, 2);

    // Abort: one running (degrades to a partial output), one queued
    // (typed failure).
    let service = SynthesisService::start(ServiceConfig::default().workers(1).queue_capacity(2));
    let running = service.submit(slow_job("running", 300)).expect("ok");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = service.submit(accumulator_job("queued")).expect("ok");
    let metrics = service.shutdown(Shutdown::Abort);
    let partial = running.wait().expect("abort degrades the running job, not an error");
    assert!(
        matches!(partial.interrupted, Some(CoreError::Cancelled)),
        "got {:?}",
        partial.interrupted
    );
    assert!(matches!(queued.wait(), Err(ServiceError::ShuttingDown)));
    assert_eq!(metrics.completed, 1, "the aborted running job still delivered");
    // New submissions after shutdown are rejected, not queued forever.
    // (The handle is consumed by shutdown; a fresh service proves the
    // typed rejection.)
    let service = SynthesisService::start(ServiceConfig::default());
    let m = service.shutdown(Shutdown::Drain);
    assert_eq!(m.submitted, 0);
}

/// Transient failures (solver exhaustion) are retried with backoff and
/// succeed on a clean attempt; the retry count is observable.
#[test]
fn transient_failures_retry_and_recover() {
    // Every early solver call answers Unknown: with no escalation
    // ladder, attempt 1 fails with `SolverExhausted` (transient). The
    // retry runs on later fault-plan indices and succeeds.
    // The case study needs ~2 solver calls per clean attempt, so four
    // faults cover the first attempt (and a possible rebalance retry)
    // while leaving later attempts clean.
    let plan = (0..4).fold(FaultPlan::new(), |p, i| p.at(i, Fault::ForceUnknown));
    let config = SynthesisConfig::builder()
        .fault_plan(Arc::new(plan))
        .max_escalations(0)
        .certify(false)
        .build();
    let service = SynthesisService::start(
        ServiceConfig::default()
            .workers(1)
            .retry_limit(6)
            .base_backoff(Duration::from_millis(1)),
    );
    let handle =
        service.submit(accumulator_job("flaky").config(config)).expect("admitted");
    let output = handle.wait().expect("the retry must succeed");
    assert!(output.is_complete(), "retried job completes cleanly");
    let metrics = service.shutdown(Shutdown::Drain);
    assert!(metrics.retried >= 1, "the transient failure was retried");
    assert_eq!(metrics.failed, 0);
}

/// Permanent failures (invalid inputs) are surfaced immediately —
/// exactly one attempt, no backoff loop.
#[test]
fn permanent_failures_surface_immediately() {
    let acc = owl_cores::accumulator::case_study();
    let alu = owl_cores::alu_machine::case_study();
    // An accumulator sketch against the ALU spec/abstraction is an
    // input-validation failure, not a solvable problem.
    let bad = JobSpec::new("mismatched", acc.sketch, alu.spec, alu.alpha);
    let service = SynthesisService::start(ServiceConfig::default().workers(1));
    let err = service.submit(bad).expect("admitted").wait().expect_err("must fail");
    match err {
        ServiceError::Failed { attempts, error } => {
            assert_eq!(attempts, 1, "permanent failures are not retried");
            assert!(matches!(error, CoreError::Invalid(_)), "got {error:?}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.retried, 0);
    assert_eq!(metrics.failed, 1);
}

/// Service-level fault injection: an injected worker panic is isolated
/// and retried; injected queue corruption degrades only latency
/// ordering; injected clock skew expires deadline-bound jobs early with
/// a typed error.
#[test]
fn injected_service_faults_are_survivable() {
    // Worker panic on the first dispatch decision.
    let service = SynthesisService::start(
        ServiceConfig::default()
            .workers(1)
            .base_backoff(Duration::from_millis(1))
            .fault_plan(Arc::new(FaultPlan::new().service_at(0, ServiceFault::WorkerPanic))),
    );
    let output = service.submit(accumulator_job("panicky")).expect("ok").wait();
    assert!(output.expect("panic is isolated and retried").is_complete());
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.worker_panics, 1);
    assert!(metrics.retried >= 1);

    // Queue-ranking corruption: the worst-ranked job dispatches first,
    // but every job still completes correctly.
    let service = SynthesisService::start(
        ServiceConfig::default()
            .workers(1)
            .queue_capacity(8)
            .fault_plan(Arc::new(FaultPlan::new().service_at(1, ServiceFault::QueueCorrupt))),
    );
    let blocker = service.submit(slow_job("blocker", 150)).expect("ok");
    while service.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let first = service.submit(accumulator_job("first").priority(9)).expect("ok");
    let second = service.submit(accumulator_job("second").priority(1)).expect("ok");
    assert!(blocker.wait().is_ok());
    assert!(first.wait().is_ok(), "corruption degrades ordering, not correctness");
    assert!(second.wait().is_ok());
    let _ = service.shutdown(Shutdown::Drain);

    // Clock skew: a comfortable deadline looks expired under a skewed
    // clock; the job gets a typed `Expired`, not a hang or a panic.
    let service = SynthesisService::start(
        ServiceConfig::default()
            .workers(1)
            .fault_plan(Arc::new(
                FaultPlan::new().service_at(0, ServiceFault::SkewDeadline(60_000)),
            )),
    );
    let doomed = service.submit(accumulator_job("doomed").deadline(Duration::from_secs(30)));
    assert!(matches!(doomed.expect("admitted").wait(), Err(ServiceError::Expired)));
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.expired, 1);
}

/// The crash-recovery matrix: ≥4 concurrent journaled jobs are aborted
/// mid-run (the in-process stand-in for SIGKILL — CI's `service-chaos`
/// job does the real kill), then `recover` re-adopts every journal and
/// each job's final output and certificate are byte-identical to an
/// uninterrupted run at the same parallelism.
#[test]
fn kill_and_recover_is_byte_identical() {
    let dir = journal_dir("recover");
    let make_jobs = |slow_ms: Option<u64>| -> Vec<JobSpec> {
        (0..4)
            .map(|i| {
                let name = format!("acc-{i}");
                let job = match slow_ms {
                    Some(ms) => {
                        // Call 0 runs clean so one instruction lands in
                        // the journal before the abort; every later
                        // call stalls far past the abort point.
                        let plan = (1..64)
                            .fold(FaultPlan::new(), |p, c| p.at(c, Fault::StallMillis(ms)));
                        // Stalls change wall-clock only; `certify` and
                        // every semantic knob match the reference, so
                        // the journal fingerprint matches too.
                        accumulator_job(&name)
                            .config(SynthesisConfig::builder().fault_plan(Arc::new(plan)).build())
                    }
                    None => accumulator_job(&name),
                };
                job.parallelism(2)
            })
            .collect()
    };
    // References: uninterrupted, journal-free runs at parallelism 2.
    let references: Vec<SynthesisOutput> = (0..4)
        .map(|_| {
            let cs = owl_cores::accumulator::case_study();
            SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
                .parallelism(2)
                .run()
                .expect("valid inputs")
        })
        .collect();

    // Phase 1: run all four concurrently, slowed down, and abort
    // mid-run. Journals keep whatever prefix each job reached.
    let config = ServiceConfig::default().workers(4).journal_dir(&dir);
    let service = SynthesisService::start(config.clone());
    let handles: Vec<_> = make_jobs(Some(1_000))
        .into_iter()
        .map(|j| service.submit(j).expect("admitted"))
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let metrics = service.shutdown(Shutdown::Abort);
    assert_eq!(metrics.submitted, 4);
    for handle in handles {
        // Aborted jobs deliver partial outputs; none may panic or hang.
        let _ = handle.wait();
    }
    let entries = scan_journals(&dir).expect("journal dir scans");
    assert_eq!(entries.len(), 4, "every job journals under its own name");
    assert!(
        entries.iter().all(|e| !e.complete),
        "the abort landed mid-run: {entries:?}"
    );

    // Phase 2: recover re-adopts all four and finishes them (full
    // speed — the fault plan is a resource knob, outside the journal
    // fingerprint).
    let (service, handles) = SynthesisService::recover(config, make_jobs(None));
    let outputs: Vec<SynthesisOutput> =
        handles.into_iter().map(|h| h.wait().expect("recovered job completes")).collect();
    let metrics = service.shutdown(Shutdown::Drain);
    assert_eq!(metrics.recovered, 4, "every incomplete journal was re-adopted");
    for (i, (output, reference)) in outputs.iter().zip(&references).enumerate() {
        assert!(output.is_complete(), "acc-{i} completes after recovery");
        assert_outputs_identical(&format!("recovered acc-{i}"), reference, output);
    }
    let entries = scan_journals(&dir).expect("journal dir scans");
    assert!(entries.iter().all(|e| e.complete), "recovered journals finish: {entries:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A randomized (but seeded) chaos schedule: repeated rounds of
/// overload, abort-mid-run, and recovery, with service faults injected
/// throughout. The invariant is total: every handle resolves to a
/// typed result, and the final recovered outputs are complete.
#[test]
fn chaos_schedule_converges() {
    let dir = journal_dir("chaos");
    let mut seed = 0xC4A0_5EEDu64;
    let mut next = move || {
        // splitmix64, inlined: the schedule must not depend on external
        // randomness sources.
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..3 {
        let plan = Arc::new(
            FaultPlan::new()
                .service_at(next() % 4, ServiceFault::WorkerPanic)
                .service_at(next() % 6, ServiceFault::QueueCorrupt)
                .service_at(next() % 8, ServiceFault::SkewDeadline(next() % 50)),
        );
        let config = ServiceConfig::default()
            .workers(2)
            .queue_capacity(3)
            .base_backoff(Duration::from_millis(1))
            .journal_dir(&dir)
            .fault_plan(plan);
        let service = SynthesisService::start(config.clone());
        let mut handles = Vec::new();
        for i in 0..5 {
            let slow = 50 + next() % 100;
            let job = slow_job(&format!("chaos-{round}-{i}"), slow).priority((next() % 3) as u8);
            match service.submit(job) {
                Ok(h) => handles.push(h),
                Err(ServiceError::Overloaded { .. }) => {}
                Err(other) => panic!("round {round}: unexpected admission error: {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(next() % 120));
        let _ = service.shutdown(if next() % 2 == 0 { Shutdown::Abort } else { Shutdown::Drain });
        for handle in handles {
            // Every fate is acceptable — but it must be a *typed* fate.
            match handle.wait() {
                Ok(_) => {}
                Err(
                    ServiceError::Shed
                    | ServiceError::Expired
                    | ServiceError::ShuttingDown
                    | ServiceError::Overloaded { .. }
                    | ServiceError::Failed { .. },
                ) => {}
            }
        }
    }
    // Final recovery pass: whatever journals the chaos left behind,
    // clean resubmissions finish them all.
    let config = ServiceConfig::default().workers(2).journal_dir(&dir);
    let jobs: Vec<JobSpec> = (0..3)
        .flat_map(|round| {
            (0..5).map(move |i| {
                // Full speed, but the same *semantic* config the chaos
                // jobs used (certify off), so the fingerprints match.
                let config = SynthesisConfig::builder().certify(false).build();
                accumulator_job(&format!("chaos-{round}-{i}")).config(config)
            })
        })
        .collect();
    let (service, handles) = SynthesisService::recover(config, jobs);
    for handle in handles {
        assert!(
            handle.wait().expect("recovered chaos job completes").is_complete(),
            "chaos recovery must converge"
        );
    }
    let _ = service.shutdown(Shutdown::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}
