//! Formatting for [`BitVec`]: `Display` uses the Oyster constant syntax
//! `width'value` with a hex payload; `Binary`, `LowerHex` and `UpperHex`
//! give the raw digits.

use crate::BitVec;
use std::fmt;

impl BitVec {
    /// Hex digits of the value, without width annotation or leading zeros
    /// beyond the width's digit count.
    #[must_use]
    pub fn to_hex_string(&self) -> String {
        let ndigits = self.width.div_ceil(4);
        let mut s = String::with_capacity(ndigits as usize);
        for d in (0..ndigits).rev() {
            let lo = d * 4;
            let hi = (lo + 3).min(self.width - 1);
            let nib = self.extract(hi, lo).to_u64().expect("nibble fits in u64");
            s.push(char::from_digit(nib as u32, 16).expect("nibble is a hex digit"));
        }
        s
    }

    /// Binary digits of the value, MSB first, exactly `width` characters.
    #[must_use]
    pub fn to_binary_string(&self) -> String {
        (0..self.width).rev().map(|i| if self.bit(i) { '1' } else { '0' }).collect()
    }
}

impl fmt::Display for BitVec {
    /// Formats as an Oyster constant: `width'xHEX`, e.g. `8'xff`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'x{}", self.width, self.to_hex_string())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({self})")
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex_string())
    }
}

impl fmt::UpperHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex_string().to_uppercase())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0b", &self.to_binary_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_oyster_syntax() {
        assert_eq!(BitVec::from_u64(8, 0xFF).to_string(), "8'xff");
        assert_eq!(BitVec::from_u64(12, 0xABC).to_string(), "12'xabc");
        assert_eq!(BitVec::from_u64(1, 1).to_string(), "1'x1");
        assert_eq!(BitVec::from_u64(5, 0).to_string(), "5'x00");
    }

    #[test]
    fn hex_and_binary_format() {
        let v = BitVec::from_u64(10, 0x2AB);
        assert_eq!(format!("{v:x}"), "2ab");
        assert_eq!(format!("{v:X}"), "2AB");
        assert_eq!(format!("{v:b}"), "1010101011");
        assert_eq!(format!("{v:#x}"), "0x2ab");
    }

    #[test]
    fn debug_nonempty() {
        assert_eq!(format!("{:?}", BitVec::zero(1)), "BitVec(1'x0)");
    }

    #[test]
    fn wide_hex() {
        let v = BitVec::from_u128(128, 0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        assert_eq!(v.to_hex_string(), "0123456789abcdef0011223344556677");
    }
}
