//! Parsing of Oyster constant syntax into [`BitVec`].
//!
//! The accepted grammar is `width'payload` where `payload` is `xHEX`,
//! `bBIN`, or `dDEC` (decimal), plus a bare-decimal convenience form used
//! by the Oyster text parser when a width is implied.

use crate::{BitVec, MAX_WIDTH};
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a [`BitVec`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    message: String,
}

impl ParseBitVecError {
    fn new(message: impl Into<String>) -> Self {
        ParseBitVecError { message: message.into() }
    }
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bitvector literal: {}", self.message)
    }
}

impl std::error::Error for ParseBitVecError {}

impl BitVec {
    /// Parses a decimal string into a bitvector of the given width,
    /// wrapping modulo `2^width`.
    ///
    /// # Errors
    ///
    /// Returns an error if `text` is empty or contains a non-digit, or the
    /// width is invalid.
    pub fn parse_decimal(width: u32, text: &str) -> Result<Self, ParseBitVecError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(ParseBitVecError::new(format!("bad width {width}")));
        }
        if text.is_empty() {
            return Err(ParseBitVecError::new("empty decimal payload"));
        }
        let ten = BitVec::from_u64(width.max(4), 10).resize_zext(width);
        let mut acc = BitVec::zero(width);
        for c in text.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseBitVecError::new(format!("bad decimal digit {c:?}")))?;
            acc = acc.mul(&ten).add(&BitVec::from_u64(width, u64::from(d)));
        }
        Ok(acc)
    }

    /// Parses a hex string into a bitvector of the given width, wrapping
    /// modulo `2^width`.
    ///
    /// # Errors
    ///
    /// Returns an error if `text` is empty or contains a non-hex-digit, or
    /// the width is invalid.
    pub fn parse_hex(width: u32, text: &str) -> Result<Self, ParseBitVecError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(ParseBitVecError::new(format!("bad width {width}")));
        }
        if text.is_empty() {
            return Err(ParseBitVecError::new("empty hex payload"));
        }
        let mut acc = BitVec::zero(width);
        for c in text.chars() {
            if c == '_' {
                continue;
            }
            let d = c
                .to_digit(16)
                .ok_or_else(|| ParseBitVecError::new(format!("bad hex digit {c:?}")))?;
            acc = acc.shl_amount(4).or(&BitVec::from_u64(width, u64::from(d)));
        }
        Ok(acc)
    }

    /// Parses a binary string into a bitvector of the given width,
    /// wrapping modulo `2^width`.
    ///
    /// # Errors
    ///
    /// Returns an error if `text` is empty or contains a non-binary digit,
    /// or the width is invalid.
    pub fn parse_binary(width: u32, text: &str) -> Result<Self, ParseBitVecError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(ParseBitVecError::new(format!("bad width {width}")));
        }
        if text.is_empty() {
            return Err(ParseBitVecError::new("empty binary payload"));
        }
        let mut acc = BitVec::zero(width);
        for c in text.chars() {
            if c == '_' {
                continue;
            }
            let d = c
                .to_digit(2)
                .ok_or_else(|| ParseBitVecError::new(format!("bad binary digit {c:?}")))?;
            acc = acc.shl_amount(1).or(&BitVec::from_u64(width, u64::from(d)));
        }
        Ok(acc)
    }
}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    /// Parses Oyster constant syntax `width'payload`.
    ///
    /// ```
    /// use owl_bitvec::BitVec;
    ///
    /// # fn main() -> Result<(), owl_bitvec::ParseBitVecError> {
    /// let a: BitVec = "8'xff".parse()?;
    /// let b: BitVec = "8'd255".parse()?;
    /// let c: BitVec = "8'b11111111".parse()?;
    /// let d: BitVec = "8'255".parse()?; // bare payload is decimal
    /// assert!(a == b && b == c && c == d);
    /// # Ok(())
    /// # }
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (width_str, payload) = s
            .split_once('\'')
            .ok_or_else(|| ParseBitVecError::new(format!("missing width separator in {s:?}")))?;
        let width: u32 = width_str
            .parse()
            .map_err(|_| ParseBitVecError::new(format!("bad width {width_str:?}")))?;
        match payload.as_bytes().first() {
            Some(b'x' | b'X') => BitVec::parse_hex(width, &payload[1..]),
            Some(b'b' | b'B') => BitVec::parse_binary(width, &payload[1..]),
            Some(b'd' | b'D') => BitVec::parse_decimal(width, &payload[1..]),
            Some(_) => BitVec::parse_decimal(width, payload),
            None => Err(ParseBitVecError::new("empty payload")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms_agree() {
        let expect = BitVec::from_u64(12, 0xABC);
        assert_eq!("12'xabc".parse::<BitVec>().unwrap(), expect);
        assert_eq!("12'xAbC".parse::<BitVec>().unwrap(), expect);
        assert_eq!("12'd2748".parse::<BitVec>().unwrap(), expect);
        assert_eq!("12'2748".parse::<BitVec>().unwrap(), expect);
        assert_eq!("12'b101010111100".parse::<BitVec>().unwrap(), expect);
    }

    #[test]
    fn display_round_trip() {
        for (w, v) in [(1u32, 1u64), (7, 99), (32, 0xDEAD_BEEF), (64, u64::MAX)] {
            let bv = BitVec::from_u64(w, v);
            assert_eq!(bv.to_string().parse::<BitVec>().unwrap(), bv);
        }
    }

    #[test]
    fn underscores_allowed() {
        assert_eq!(
            "32'xdead_beef".parse::<BitVec>().unwrap(),
            BitVec::from_u64(32, 0xDEAD_BEEF)
        );
    }

    #[test]
    fn parse_wide_decimal() {
        // 2^80 = 1208925819614629174706176
        let v = BitVec::parse_decimal(100, "1208925819614629174706176").unwrap();
        assert_eq!(v, BitVec::one(100).shl_amount(80));
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BitVec>().is_err());
        assert!("8".parse::<BitVec>().is_err());
        assert!("8'".parse::<BitVec>().is_err());
        assert!("8'xzz".parse::<BitVec>().is_err());
        assert!("8'b12".parse::<BitVec>().is_err());
        assert!("0'x0".parse::<BitVec>().is_err());
        assert!("abc'x0".parse::<BitVec>().is_err());
        let err = "8'xzz".parse::<BitVec>().unwrap_err();
        assert!(err.to_string().contains("invalid bitvector literal"));
    }

    #[test]
    fn decimal_wraps_modulo_width() {
        assert_eq!(BitVec::parse_decimal(4, "255").unwrap(), BitVec::from_u64(4, 0xF));
    }
}
