//! Unsigned and signed comparisons on [`BitVec`].
//!
//! Note that the derived `Ord`/`PartialOrd` on `BitVec` order by
//! `(width, limbs)` for use in collections; the *numeric* comparisons live
//! here and require equal widths, matching SMT-LIB `bvult`/`bvslt`/etc.

use crate::BitVec;
use std::cmp::Ordering;

impl BitVec {
    /// Unsigned numeric comparison.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ucmp(&self, rhs: &BitVec) -> Ordering {
        self.assert_same_width(rhs, "ucmp");
        for (l, r) in self.limbs.iter().rev().zip(rhs.limbs.iter().rev()) {
            match l.cmp(r) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Signed (two's complement) numeric comparison.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn scmp(&self, rhs: &BitVec) -> Ordering {
        self.assert_same_width(rhs, "scmp");
        match (self.msb(), rhs.msb()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.ucmp(rhs),
        }
    }

    /// Unsigned less-than (`bvult`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ult(&self, rhs: &BitVec) -> bool {
        self.ucmp(rhs) == Ordering::Less
    }

    /// Unsigned less-or-equal (`bvule`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ule(&self, rhs: &BitVec) -> bool {
        self.ucmp(rhs) != Ordering::Greater
    }

    /// Signed less-than (`bvslt`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn slt(&self, rhs: &BitVec) -> bool {
        self.scmp(rhs) == Ordering::Less
    }

    /// Signed less-or-equal (`bvsle`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn sle(&self, rhs: &BitVec) -> bool {
        self.scmp(rhs) != Ordering::Greater
    }

    /// Unsigned greater-than (`bvugt`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ugt(&self, rhs: &BitVec) -> bool {
        rhs.ult(self)
    }

    /// Unsigned greater-or-equal (`bvuge`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn uge(&self, rhs: &BitVec) -> bool {
        rhs.ule(self)
    }

    /// Signed greater-than (`bvsgt`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn sgt(&self, rhs: &BitVec) -> bool {
        rhs.slt(self)
    }

    /// Signed greater-or-equal (`bvsge`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn sge(&self, rhs: &BitVec) -> bool {
        rhs.sle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(w: u32, v: u64) -> BitVec {
        BitVec::from_u64(w, v)
    }

    #[test]
    fn unsigned_comparisons() {
        assert!(bv(8, 1).ult(&bv(8, 2)));
        assert!(!bv(8, 2).ult(&bv(8, 2)));
        assert!(bv(8, 2).ule(&bv(8, 2)));
        assert!(bv(8, 0xFF).ugt(&bv(8, 0)));
        assert!(bv(8, 0xFF).uge(&bv(8, 0xFF)));
    }

    #[test]
    fn signed_comparisons() {
        // 0xFF is -1 signed, so it is less than 0.
        assert!(bv(8, 0xFF).slt(&bv(8, 0)));
        assert!(bv(8, 0).sgt(&bv(8, 0xFF)));
        assert!(bv(8, 0x80).slt(&bv(8, 0x7F))); // -128 < 127
        assert!(bv(8, 0xFE).slt(&bv(8, 0xFF))); // -2 < -1
        assert!(bv(8, 0xFF).sle(&bv(8, 0xFF)));
        assert!(bv(8, 5).sge(&bv(8, 5)));
    }

    #[test]
    fn multi_limb_comparisons() {
        let big = BitVec::from_u128(128, 1u128 << 100);
        let small = BitVec::from_u128(128, u128::from(u64::MAX));
        assert!(small.ult(&big));
        assert!(big.ugt(&small));
        // big has MSB clear (bit 100 of 128), still positive.
        assert!(small.slt(&big));
    }
}
