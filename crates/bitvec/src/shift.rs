//! Shifts and rotates on [`BitVec`].
//!
//! Two flavours are provided: `_amount` variants taking a Rust integer
//! shift count (used by the interpreter fast paths and by the Zbkb
//! rotate-immediate instructions), and bitvector-operand variants matching
//! SMT-LIB `bvshl`/`bvlshr`/`bvashr`, where a count at or above the width
//! saturates to zero (or to the sign fill for `ashr`).

use crate::BitVec;

impl BitVec {
    /// Logical left shift by a static amount; counts `>= width` give zero.
    #[must_use]
    pub fn shl_amount(&self, amount: u32) -> BitVec {
        if amount >= self.width {
            return BitVec::zero(self.width);
        }
        let bits: Vec<bool> =
            (0..self.width).map(|i| i >= amount && self.bit(i - amount)).collect();
        BitVec::from_bits_lsb0(&bits)
    }

    /// Logical right shift by a static amount; counts `>= width` give zero.
    #[must_use]
    pub fn lshr_amount(&self, amount: u32) -> BitVec {
        if amount >= self.width {
            return BitVec::zero(self.width);
        }
        let bits: Vec<bool> =
            (0..self.width).map(|i| i + amount < self.width && self.bit(i + amount)).collect();
        BitVec::from_bits_lsb0(&bits)
    }

    /// Arithmetic right shift by a static amount; counts `>= width`
    /// replicate the sign bit everywhere.
    #[must_use]
    pub fn ashr_amount(&self, amount: u32) -> BitVec {
        let sign = self.msb();
        if amount >= self.width {
            return if sign { BitVec::ones(self.width) } else { BitVec::zero(self.width) };
        }
        let bits: Vec<bool> = (0..self.width)
            .map(|i| if i + amount < self.width { self.bit(i + amount) } else { sign })
            .collect();
        BitVec::from_bits_lsb0(&bits)
    }

    /// Rotate left by a static amount (modulo the width).
    #[must_use]
    pub fn rol_amount(&self, amount: u32) -> BitVec {
        let amount = amount % self.width;
        let bits: Vec<bool> = (0..self.width)
            .map(|i| self.bit((i + self.width - amount) % self.width))
            .collect();
        BitVec::from_bits_lsb0(&bits)
    }

    /// Rotate right by a static amount (modulo the width).
    #[must_use]
    pub fn ror_amount(&self, amount: u32) -> BitVec {
        let amount = amount % self.width;
        self.rol_amount(self.width - amount)
    }

    /// Extracts a shift count from a bitvector operand, saturating at
    /// `u32::MAX` for enormous counts (anything `>= width` behaves the
    /// same for the SMT-LIB shifts).
    fn shift_count(count: &BitVec) -> u32 {
        count.to_u64().map_or(u32::MAX, |v| u32::try_from(v).unwrap_or(u32::MAX))
    }

    /// SMT-LIB `bvshl`: left shift by a bitvector count.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn shl(&self, count: &BitVec) -> BitVec {
        self.assert_same_width(count, "shl");
        self.shl_amount(Self::shift_count(count).min(self.width))
    }

    /// SMT-LIB `bvlshr`: logical right shift by a bitvector count.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn lshr(&self, count: &BitVec) -> BitVec {
        self.assert_same_width(count, "lshr");
        self.lshr_amount(Self::shift_count(count).min(self.width))
    }

    /// SMT-LIB `bvashr`: arithmetic right shift by a bitvector count.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ashr(&self, count: &BitVec) -> BitVec {
        self.assert_same_width(count, "ashr");
        self.ashr_amount(Self::shift_count(count).min(self.width))
    }

    /// Rotate left by a bitvector count, taken modulo the width
    /// (RISC-V `rol` semantics for the low `log2(width)` bits).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn rol(&self, count: &BitVec) -> BitVec {
        self.assert_same_width(count, "rol");
        let c = count.to_u64().map_or(0, |v| (v % u64::from(self.width)) as u32);
        self.rol_amount(c)
    }

    /// Rotate right by a bitvector count, taken modulo the width
    /// (RISC-V `ror` semantics for the low `log2(width)` bits).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ror(&self, count: &BitVec) -> BitVec {
        self.assert_same_width(count, "ror");
        let c = count.to_u64().map_or(0, |v| (v % u64::from(self.width)) as u32);
        self.ror_amount(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(w: u32, v: u64) -> BitVec {
        BitVec::from_u64(w, v)
    }

    #[test]
    fn shl_basic() {
        assert_eq!(bv(8, 0b0000_0101).shl_amount(2), bv(8, 0b0001_0100));
        assert_eq!(bv(8, 0xFF).shl_amount(8), bv(8, 0));
        assert_eq!(bv(8, 0xFF).shl_amount(200), bv(8, 0));
    }

    #[test]
    fn lshr_basic() {
        assert_eq!(bv(8, 0b1010_0000).lshr_amount(4), bv(8, 0b0000_1010));
        assert_eq!(bv(8, 0xFF).lshr_amount(9), bv(8, 0));
    }

    #[test]
    fn ashr_sign_fill() {
        assert_eq!(bv(8, 0b1000_0000).ashr_amount(3), bv(8, 0b1111_0000));
        assert_eq!(bv(8, 0b0100_0000).ashr_amount(3), bv(8, 0b0000_1000));
        assert_eq!(bv(8, 0x80).ashr_amount(100), bv(8, 0xFF));
        assert_eq!(bv(8, 0x7F).ashr_amount(100), bv(8, 0));
    }

    #[test]
    fn rotates() {
        assert_eq!(bv(8, 0b1000_0001).rol_amount(1), bv(8, 0b0000_0011));
        assert_eq!(bv(8, 0b1000_0001).ror_amount(1), bv(8, 0b1100_0000));
        assert_eq!(bv(8, 0xAB).rol_amount(8), bv(8, 0xAB));
        let v = bv(32, 0x1234_5678);
        assert_eq!(v.rol_amount(12).ror_amount(12), v);
    }

    #[test]
    fn bitvector_count_variants() {
        let v = bv(8, 0b0000_1111);
        assert_eq!(v.shl(&bv(8, 2)), bv(8, 0b0011_1100));
        assert_eq!(v.lshr(&bv(8, 2)), bv(8, 0b0000_0011));
        assert_eq!(bv(8, 0x80).ashr(&bv(8, 1)), bv(8, 0xC0));
        // Oversized count saturates.
        assert_eq!(v.shl(&bv(8, 0xFF)), bv(8, 0));
        // Rotate count is modulo width.
        assert_eq!(v.rol(&bv(8, 9)), v.rol_amount(1));
        assert_eq!(v.ror(&bv(8, 9)), v.ror_amount(1));
    }

    #[test]
    fn shifts_across_limbs() {
        let v = BitVec::from_u128(128, 1);
        assert_eq!(v.shl_amount(100).to_u128(), Some(1u128 << 100));
        assert_eq!(v.shl_amount(100).lshr_amount(100), v);
    }
}
