//! Modular arithmetic on [`BitVec`]: add, sub, neg, mul, udiv, urem,
//! and carry-less multiplication (for the Zbkc `clmul` instructions).

use crate::BitVec;

impl BitVec {
    /// Addition modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn add(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "add");
        let mut out = BitVec::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        out.mask_top();
        out
    }

    /// Subtraction modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn sub(&self, rhs: &BitVec) -> BitVec {
        self.add(&rhs.neg())
    }

    /// Two's-complement negation.
    #[must_use]
    pub fn neg(&self) -> BitVec {
        self.not().add(&BitVec::one(self.width))
    }

    /// Multiplication modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn mul(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "mul");
        let n = self.limbs.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let prod = u128::from(self.limbs[i]) * u128::from(rhs.limbs[j])
                    + u128::from(acc[i + j])
                    + carry;
                acc[i + j] = prod as u64;
                carry = prod >> 64;
            }
        }
        let mut out = BitVec { width: self.width, limbs: acc };
        out.mask_top();
        out
    }

    /// Unsigned division, with the SMT-LIB convention that division by
    /// zero yields the all-ones value.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn udiv(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "udiv");
        if rhs.is_zero() {
            return BitVec::ones(self.width);
        }
        self.divmod(rhs).0
    }

    /// Unsigned remainder, with the SMT-LIB convention that remainder by
    /// zero yields the dividend.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn urem(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "urem");
        if rhs.is_zero() {
            return self.clone();
        }
        self.divmod(rhs).1
    }

    /// Schoolbook restoring division (bit-serial; widths here are small).
    fn divmod(&self, rhs: &BitVec) -> (BitVec, BitVec) {
        let mut quotient = BitVec::zero(self.width);
        let mut remainder = BitVec::zero(self.width);
        for i in (0..self.width).rev() {
            remainder = remainder.shl_amount(1);
            if self.bit(i) {
                remainder = remainder.with_bit(0, true);
            }
            if !remainder.ult(rhs) {
                remainder = remainder.sub(rhs);
                quotient = quotient.with_bit(i, true);
            }
        }
        (quotient, remainder)
    }

    /// Carry-less multiplication producing the low `width` bits
    /// (the RISC-V Zbkc `clmul` semantics).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn clmul(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "clmul");
        let mut acc = BitVec::zero(self.width);
        for i in 0..self.width {
            if rhs.bit(i) {
                acc = acc.xor(&self.shl_amount(i));
            }
        }
        acc
    }

    /// Carry-less multiplication producing the high `width` bits
    /// (the RISC-V Zbkc `clmulh` semantics: bits `2w-1 .. w` of the
    /// carry-less product, so bit `w-1` of the result is always zero for
    /// `w`-bit inputs).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn clmulh(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "clmulh");
        let w = self.width;
        let a = self.zext(2 * w);
        let mut acc = BitVec::zero(2 * w);
        for i in 0..w {
            if rhs.bit(i) {
                acc = acc.xor(&a.shl_amount(i));
            }
        }
        acc.extract(2 * w - 1, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(w: u32, v: u64) -> BitVec {
        BitVec::from_u64(w, v)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(bv(8, 0xFF).add(&bv(8, 1)), bv(8, 0));
        assert_eq!(bv(8, 0x80).add(&bv(8, 0x81)), bv(8, 0x01));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BitVec::from_u128(128, u128::from(u64::MAX));
        let b = BitVec::from_u128(128, 1);
        assert_eq!(a.add(&b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(bv(8, 5).sub(&bv(8, 7)), bv(8, 0xFE));
        assert_eq!(bv(8, 1).neg(), bv(8, 0xFF));
        assert_eq!(bv(8, 0).neg(), bv(8, 0));
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(bv(8, 16).mul(&bv(8, 16)), bv(8, 0));
        assert_eq!(bv(8, 7).mul(&bv(8, 9)), bv(8, 63));
        let a = BitVec::from_u128(128, 0x1_0000_0001);
        let b = BitVec::from_u128(128, 0x1_0000_0001);
        assert_eq!(a.mul(&b).to_u128(), Some(0x1_0000_0002_0000_0001));
    }

    #[test]
    fn udiv_urem() {
        assert_eq!(bv(8, 100).udiv(&bv(8, 7)), bv(8, 14));
        assert_eq!(bv(8, 100).urem(&bv(8, 7)), bv(8, 2));
        // SMT-LIB division-by-zero conventions.
        assert_eq!(bv(8, 100).udiv(&bv(8, 0)), bv(8, 0xFF));
        assert_eq!(bv(8, 100).urem(&bv(8, 0)), bv(8, 100));
    }

    #[test]
    fn clmul_known_values() {
        // (x^2 + x)(x + 1) = x^3 + x (carry-less 6 * 3 = 10).
        assert_eq!(bv(8, 0b110).clmul(&bv(8, 0b11)), bv(8, 0b1010));
        assert_eq!(bv(32, 0).clmul(&bv(32, 0xFFFF_FFFF)), bv(32, 0));
    }

    #[test]
    fn clmulh_known_values() {
        // 0x80000000 clmul 2 = 0x1_00000000, so the high word is 1.
        assert_eq!(bv(32, 0x8000_0000).clmulh(&bv(32, 2)), bv(32, 1));
        assert_eq!(bv(32, 3).clmulh(&bv(32, 3)), bv(32, 0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn add_width_mismatch_panics() {
        let _ = bv(8, 1).add(&bv(9, 1));
    }
}
