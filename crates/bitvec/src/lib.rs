//! Arbitrary-width bitvector values.
//!
//! [`BitVec`] is the value domain shared by every layer of the OWL
//! toolchain: Oyster IR constants, the cycle-accurate interpreter, ILA
//! specification evaluation, SMT-level constant folding, SAT models and the
//! gate-level netlist simulator all compute over `BitVec`.
//!
//! A `BitVec` is a fixed-width unsigned binary word; two's-complement views
//! are provided for the signed operations (`ashr`, `slt`, `sle`, `sext`).
//! All arithmetic is modulo `2^width`, mirroring SMT-LIB `QF_BV` semantics.
//!
//! # Examples
//!
//! ```
//! use owl_bitvec::BitVec;
//!
//! let a = BitVec::from_u64(8, 0xF0);
//! let b = BitVec::from_u64(8, 0x21);
//! assert_eq!(a.add(&b), BitVec::from_u64(8, 0x11)); // wraps mod 2^8
//! assert_eq!(a.concat(&b).width(), 16);
//! assert_eq!(a.extract(7, 4), BitVec::from_u64(4, 0xF));
//! ```

mod arith;
mod cmp;
mod fmt;
mod logic;
mod parse;
mod shift;

pub use parse::ParseBitVecError;

/// Number of bits stored per limb.
const LIMB_BITS: u32 = 64;

/// Maximum supported bitvector width.
///
/// Wide enough for AES round state (128 bits), SHA-256 words, and the
/// widest buses in the case studies, with a large safety margin.
pub const MAX_WIDTH: u32 = 1 << 16;

/// A fixed-width bitvector value.
///
/// Bit 0 is the least significant bit. Unused high bits of the final limb
/// are always kept zero (a canonical-form invariant relied on by `Eq` and
/// `Hash`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    width: u32,
    limbs: Vec<u64>,
}

impl BitVec {
    /// Creates the zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "bitvector width must be positive");
        assert!(width <= MAX_WIDTH, "bitvector width {width} exceeds MAX_WIDTH");
        let n = width.div_ceil(LIMB_BITS) as usize;
        BitVec { width, limbs: vec![0; n] }
    }

    /// Creates the value 1 of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn one(width: u32) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = 1;
        v.mask_top();
        v
    }

    /// Creates the all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn ones(width: u32) -> Self {
        let mut v = Self::zero(width);
        for l in &mut v.limbs {
            *l = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Creates a bitvector from the low bits of `value`, truncating to
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = value;
        v.mask_top();
        v
    }

    /// Creates a bitvector from the low bits of `value`, truncating to
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = value as u64;
        if v.limbs.len() > 1 {
            v.limbs[1] = (value >> 64) as u64;
        }
        v.mask_top();
        v
    }

    /// Creates a 1-bit bitvector from a boolean.
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        Self::from_u64(1, u64::from(value))
    }

    /// Creates a bitvector from bits given LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or longer than [`MAX_WIDTH`].
    #[must_use]
    pub fn from_bits_lsb0(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "bitvector must have at least one bit");
        let mut v = Self::zero(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.limbs[i / LIMB_BITS as usize] |= 1 << (i as u32 % LIMB_BITS);
            }
        }
        v
    }

    /// The width of this bitvector in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns bit `i` (bit 0 is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.limbs[(i / LIMB_BITS) as usize] >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn with_bit(&self, i: u32, value: bool) -> Self {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let mut v = self.clone();
        let limb = &mut v.limbs[(i / LIMB_BITS) as usize];
        if value {
            *limb |= 1 << (i % LIMB_BITS);
        } else {
            *limb &= !(1 << (i % LIMB_BITS));
        }
        v
    }

    /// Iterates over the bits LSB-first.
    pub fn bits_lsb0(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(|i| self.bit(i))
    }

    /// True if every bit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True if this is the value 1.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs[0] == 1 && self.limbs[1..].iter().all(|&l| l == 0)
    }

    /// True if every bit is one.
    #[must_use]
    pub fn is_ones(&self) -> bool {
        *self == Self::ones(self.width)
    }

    /// True iff the value is nonzero, matching Oyster's "nonzero is true"
    /// conditional semantics.
    #[must_use]
    pub fn is_true(&self) -> bool {
        !self.is_zero()
    }

    /// The value as `u64` if it fits, regardless of declared width.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// The value as `u128` if it fits, regardless of declared width.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 2 && self.limbs[2..].iter().any(|&l| l != 0) {
            return None;
        }
        let lo = self.limbs[0] as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        Some(lo | (hi << 64))
    }

    /// The value interpreted as a signed two's-complement integer, if it
    /// fits in `i64` *after* sign extension from `self.width()`.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        let sext = self.sext(64.max(self.width));
        let low = sext.limbs[0];
        let fits = if low >> 63 == 1 {
            sext.limbs[1..].iter().all(|&l| l == u64::MAX) && sext.msb()
        } else {
            sext.limbs[1..].iter().all(|&l| l == 0)
        };
        fits.then_some(low as i64)
    }

    /// Sign bit (the most significant bit).
    #[must_use]
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Concatenation: `self` becomes the high bits, `low` the low bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn concat(&self, low: &BitVec) -> Self {
        let width = self.width + low.width;
        assert!(width <= MAX_WIDTH, "concat width {width} exceeds MAX_WIDTH");
        let mut out = Self::zero(width);
        for i in 0..low.width {
            if low.bit(i) {
                out.limbs[(i / LIMB_BITS) as usize] |= 1 << (i % LIMB_BITS);
            }
        }
        for i in 0..self.width {
            if self.bit(i) {
                let j = i + low.width;
                out.limbs[(j / LIMB_BITS) as usize] |= 1 << (j % LIMB_BITS);
            }
        }
        out
    }

    /// Extracts bits `high..=low` (inclusive), producing a value of width
    /// `high - low + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `high < low` or `high >= self.width()`.
    #[must_use]
    pub fn extract(&self, high: u32, low: u32) -> Self {
        assert!(high >= low, "extract high {high} below low {low}");
        assert!(high < self.width, "extract high {high} out of range for width {}", self.width);
        let mut out = Self::zero(high - low + 1);
        for i in 0..out.width {
            if self.bit(i + low) {
                out.limbs[(i / LIMB_BITS) as usize] |= 1 << (i % LIMB_BITS);
            }
        }
        out
    }

    /// Zero-extends (or returns a copy, if already that width) to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()` or `width` exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn zext(&self, width: u32) -> Self {
        assert!(width >= self.width, "zext target {width} below current width {}", self.width);
        let mut out = Self::zero(width);
        out.limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()` or `width` exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn sext(&self, width: u32) -> Self {
        assert!(width >= self.width, "sext target {width} below current width {}", self.width);
        if !self.msb() {
            return self.zext(width);
        }
        let mut out = Self::ones(width);
        for i in 0..self.width {
            if !self.bit(i) {
                out.limbs[(i / LIMB_BITS) as usize] &= !(1 << (i % LIMB_BITS));
            }
        }
        out
    }

    /// Truncates to the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > self.width()`.
    #[must_use]
    pub fn truncate(&self, width: u32) -> Self {
        assert!(width <= self.width, "truncate target {width} above current width {}", self.width);
        self.extract(width - 1, 0)
    }

    /// Resizes by truncation or zero-extension as needed.
    #[must_use]
    pub fn resize_zext(&self, width: u32) -> Self {
        if width <= self.width {
            self.truncate(width)
        } else {
            self.zext(width)
        }
    }

    /// Bit-reversal of the whole word (bit 0 swaps with bit `width-1`).
    #[must_use]
    pub fn reverse_bits(&self) -> Self {
        let bits: Vec<bool> = (0..self.width).rev().map(|i| self.bit(i)).collect();
        Self::from_bits_lsb0(&bits)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Clears any bits above `width` in the top limb, restoring canonical
    /// form after limb-level operations.
    fn mask_top(&mut self) {
        let rem = self.width % LIMB_BITS;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    fn assert_same_width(&self, other: &BitVec, op: &str) {
        assert!(
            self.width == other.width,
            "{op}: width mismatch ({} vs {})",
            self.width,
            other.width
        );
    }
}

impl From<bool> for BitVec {
    fn from(value: bool) -> Self {
        BitVec::from_bool(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_one_ones() {
        let z = BitVec::zero(65);
        assert!(z.is_zero());
        assert_eq!(z.width(), 65);
        let o = BitVec::one(65);
        assert!(o.is_one());
        assert!(!o.is_zero());
        let f = BitVec::ones(65);
        assert!(f.is_ones());
        assert_eq!(f.count_ones(), 65);
    }

    #[test]
    fn from_u64_truncates() {
        let v = BitVec::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    fn from_u128_round_trip() {
        let x = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128;
        let v = BitVec::from_u128(128, x);
        assert_eq!(v.to_u128(), Some(x));
    }

    #[test]
    fn bit_get_set() {
        let v = BitVec::from_u64(8, 0b1010_0101);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(7));
        let w = v.with_bit(1, true).with_bit(0, false);
        assert_eq!(w.to_u64(), Some(0b1010_0110));
    }

    #[test]
    fn concat_extract() {
        let hi = BitVec::from_u64(8, 0xAB);
        let lo = BitVec::from_u64(4, 0xC);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 12);
        assert_eq!(c.to_u64(), Some(0xABC));
        assert_eq!(c.extract(11, 4), hi);
        assert_eq!(c.extract(3, 0), lo);
    }

    #[test]
    fn concat_across_limbs() {
        let hi = BitVec::from_u64(40, 0xDE_ADBE_EF00);
        let lo = BitVec::from_u64(40, 0xCA_FEBA_BE11);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 80);
        assert_eq!(c.extract(79, 40), hi);
        assert_eq!(c.extract(39, 0), lo);
    }

    #[test]
    fn zext_sext() {
        let v = BitVec::from_u64(4, 0b1010);
        assert_eq!(v.zext(8).to_u64(), Some(0b0000_1010));
        assert_eq!(v.sext(8).to_u64(), Some(0b1111_1010));
        let p = BitVec::from_u64(4, 0b0101);
        assert_eq!(p.sext(8).to_u64(), Some(0b0000_0101));
    }

    #[test]
    fn sext_across_limbs() {
        let v = BitVec::from_u64(32, 0x8000_0000);
        let s = v.sext(96);
        assert!(s.msb());
        assert_eq!(s.extract(31, 0), v);
        assert!(s.extract(95, 32).is_ones());
    }

    #[test]
    fn to_i64_signed_views() {
        assert_eq!(BitVec::from_u64(4, 0xF).to_i64(), Some(-1));
        assert_eq!(BitVec::from_u64(4, 0x7).to_i64(), Some(7));
        assert_eq!(BitVec::from_u64(64, u64::MAX).to_i64(), Some(-1));
        assert_eq!(BitVec::from_u128(100, 1u128 << 90).to_i64(), None);
    }

    #[test]
    fn reverse_bits_small() {
        let v = BitVec::from_u64(8, 0b1100_0001);
        assert_eq!(v.reverse_bits().to_u64(), Some(0b1000_0011));
    }

    #[test]
    fn from_bits_lsb0_round_trip() {
        let bits = [true, false, true, true, false];
        let v = BitVec::from_bits_lsb0(&bits);
        let back: Vec<bool> = v.bits_lsb0().collect();
        assert_eq!(back, bits);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = BitVec::zero(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = BitVec::zero(8).bit(8);
    }

    #[test]
    fn truncate_and_resize() {
        let v = BitVec::from_u64(16, 0xABCD);
        assert_eq!(v.truncate(8).to_u64(), Some(0xCD));
        assert_eq!(v.resize_zext(24).to_u64(), Some(0xABCD));
        assert_eq!(v.resize_zext(4).to_u64(), Some(0xD));
    }

    #[test]
    fn to_u128_none_when_too_wide() {
        let v = BitVec::one(200).shl_amount(150);
        assert_eq!(v.to_u128(), None);
        assert_eq!(v.to_u64(), None);
    }
}
