//! Bitwise logic on [`BitVec`], plus the Zbkb permutation primitives
//! (`rev8`, `brev8`, `zip`, `unzip`, `pack`, `packh`).

use crate::BitVec;

impl BitVec {
    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        for l in &mut out.limbs {
            *l = !*l;
        }
        out.mask_top();
        out
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn and(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "and");
        let mut out = self.clone();
        for (l, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *l &= r;
        }
        out
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn or(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "or");
        let mut out = self.clone();
        for (l, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *l |= r;
        }
        out
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn xor(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "xor");
        let mut out = self.clone();
        for (l, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *l ^= r;
        }
        out
    }

    /// Byte-order reversal (RISC-V Zbkb `rev8`).
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8.
    #[must_use]
    pub fn rev8(&self) -> BitVec {
        assert!(self.width.is_multiple_of(8), "rev8 requires a byte-multiple width, got {}", self.width);
        let nbytes = self.width / 8;
        let mut out = self.extract(7, 0);
        for b in 1..nbytes {
            out = out.concat(&self.extract(b * 8 + 7, b * 8));
        }
        out
    }

    /// Bit reversal within each byte (RISC-V Zbkb `brev8` / `rev.b`).
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8.
    #[must_use]
    pub fn brev8(&self) -> BitVec {
        assert!(self.width.is_multiple_of(8), "brev8 requires a byte-multiple width, got {}", self.width);
        let nbytes = self.width / 8;
        let mut out: Option<BitVec> = None;
        for b in (0..nbytes).rev() {
            let byte = self.extract(b * 8 + 7, b * 8).reverse_bits();
            out = Some(match out {
                Some(acc) => acc.concat(&byte),
                None => byte,
            });
        }
        out.expect("width checked nonzero")
    }

    /// Interleaves the lower half with the upper half (RISC-V Zbkb `zip`):
    /// output bit `2i` is input bit `i`, output bit `2i+1` is input bit
    /// `i + width/2`.
    ///
    /// # Panics
    ///
    /// Panics if the width is odd.
    #[must_use]
    pub fn zip(&self) -> BitVec {
        assert!(self.width.is_multiple_of(2), "zip requires an even width, got {}", self.width);
        let half = self.width / 2;
        let bits: Vec<bool> = (0..self.width)
            .map(|i| if i % 2 == 0 { self.bit(i / 2) } else { self.bit(i / 2 + half) })
            .collect();
        BitVec::from_bits_lsb0(&bits)
    }

    /// De-interleaves even bits into the lower half and odd bits into the
    /// upper half (RISC-V Zbkb `unzip`): the inverse of [`BitVec::zip`].
    ///
    /// # Panics
    ///
    /// Panics if the width is odd.
    #[must_use]
    pub fn unzip(&self) -> BitVec {
        assert!(self.width.is_multiple_of(2), "unzip requires an even width, got {}", self.width);
        let half = self.width / 2;
        let mut bits = vec![false; self.width as usize];
        for i in 0..self.width {
            if self.bit(i) {
                let j = if i % 2 == 0 { i / 2 } else { i / 2 + half };
                bits[j as usize] = true;
            }
        }
        BitVec::from_bits_lsb0(&bits)
    }

    /// Packs the lower halves of two words (RISC-V Zbkb `pack`): the
    /// result's low half is `self`'s low half, its high half is `rhs`'s
    /// low half.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or odd width.
    #[must_use]
    pub fn pack(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "pack");
        assert!(self.width.is_multiple_of(2), "pack requires an even width, got {}", self.width);
        let half = self.width / 2;
        rhs.extract(half - 1, 0).concat(&self.extract(half - 1, 0))
    }

    /// Packs the low bytes of two words into the low 16 bits, zero-extended
    /// (RISC-V Zbkb `packh`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or width below 16 bits.
    #[must_use]
    pub fn packh(&self, rhs: &BitVec) -> BitVec {
        self.assert_same_width(rhs, "packh");
        assert!(self.width >= 16, "packh requires width >= 16, got {}", self.width);
        rhs.extract(7, 0).concat(&self.extract(7, 0)).zext(self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(w: u32, v: u64) -> BitVec {
        BitVec::from_u64(w, v)
    }

    #[test]
    fn not_and_or_xor() {
        let a = bv(8, 0b1100_1010);
        let b = bv(8, 0b1010_0110);
        assert_eq!(a.not(), bv(8, 0b0011_0101));
        assert_eq!(a.and(&b), bv(8, 0b1000_0010));
        assert_eq!(a.or(&b), bv(8, 0b1110_1110));
        assert_eq!(a.xor(&b), bv(8, 0b0110_1100));
    }

    #[test]
    fn not_respects_canonical_form() {
        let a = bv(5, 0);
        assert_eq!(a.not(), bv(5, 0b11111));
        // Double negation is identity in canonical form.
        assert_eq!(a.not().not(), a);
    }

    #[test]
    fn rev8_swaps_bytes() {
        assert_eq!(bv(32, 0x1234_5678).rev8(), bv(32, 0x7856_3412));
        assert_eq!(bv(16, 0xAB_CD).rev8(), bv(16, 0xCD_AB));
    }

    #[test]
    fn brev8_reverses_within_bytes() {
        assert_eq!(bv(8, 0b1000_0000).brev8(), bv(8, 0b0000_0001));
        assert_eq!(bv(16, 0x0180).brev8(), bv(16, 0x8001));
    }

    #[test]
    fn zip_unzip_inverse() {
        let v = bv(32, 0xDEAD_BEEF);
        assert_eq!(v.zip().unzip(), v);
        assert_eq!(v.unzip().zip(), v);
    }

    #[test]
    fn zip_interleaves() {
        // low half = 0b11, high half = 0b00 (width 4)
        assert_eq!(bv(4, 0b0011).zip(), bv(4, 0b0101));
        // low half = 0b00, high half = 0b11
        assert_eq!(bv(4, 0b1100).zip(), bv(4, 0b1010));
    }

    #[test]
    fn pack_packh() {
        let a = bv(32, 0x1111_2222);
        let b = bv(32, 0x3333_4444);
        assert_eq!(a.pack(&b), bv(32, 0x4444_2222));
        assert_eq!(a.packh(&b), bv(32, 0x0000_4422));
    }
}
