//! The declarative QF_BV rewrite-rule set.
//!
//! Each rule is a function over one `(class, node)` pair from a
//! saturation snapshot; it matches a pattern rooted at that node and
//! unions the class with an equivalent (usually cheaper) form. Constant
//! folding itself lives in the e-graph's analysis ([`EGraph::add`]), so
//! the rules here only need to expose foldable shapes.
//!
//! [`bv_rules`] is the full set used by `owl-smt` before bit-blasting;
//! [`bool_rules`] is the Boolean subset shared with `owl-netlist`'s
//! gate-level pass.

use crate::graph::EGraph;
use crate::node::{EBinOp, ENode, EUnOp, Id};
use owl_bitvec::BitVec;

/// One named rewrite rule.
#[derive(Clone, Copy)]
pub struct Rule {
    /// Rule name, for reports and debugging.
    pub name: &'static str,
    /// Applies the rule to one snapshot node of class `id`. The node is
    /// already canonicalized.
    pub apply: fn(&mut EGraph, Id, &ENode),
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule").field("name", &self.name).finish()
    }
}

/// The full QF_BV rule set: ite collapsing, and/or/xor identities and
/// absorption, double negation, shift-by-constant lowering,
/// extract/concat fusion, constant reassociation, and comparison
/// identities.
#[must_use]
pub fn bv_rules() -> Vec<Rule> {
    let mut rules = bool_rules();
    rules.extend([
        Rule { name: "ite", apply: rw_ite },
        Rule { name: "neg", apply: rw_neg },
        Rule { name: "add", apply: rw_add },
        Rule { name: "sub", apply: rw_sub },
        Rule { name: "mul", apply: rw_mul },
        Rule { name: "shift-const", apply: rw_shift_const },
        Rule { name: "extract", apply: rw_extract },
        Rule { name: "concat", apply: rw_concat },
        Rule { name: "ext", apply: rw_ext },
        Rule { name: "redor", apply: rw_redor },
        Rule { name: "cmp", apply: rw_cmp },
    ]);
    rules
}

/// The Boolean subset (and/or/xor/not identities, idempotence,
/// annihilators, complementation, absorption, constant reassociation),
/// valid on any width and complete for `owl-netlist`'s 1-bit gate sea.
#[must_use]
pub fn bool_rules() -> Vec<Rule> {
    vec![
        Rule { name: "and", apply: rw_and },
        Rule { name: "or", apply: rw_or },
        Rule { name: "xor", apply: rw_xor },
        Rule { name: "not", apply: rw_not },
        Rule { name: "reassoc-const", apply: rw_reassoc_const },
    ]
}

/// Does class `x` contain `Not(y)` for `y == target`?
fn is_complement(g: &EGraph, x: Id, target: Id) -> bool {
    let target = g.find(target);
    g.find_in(x, |n| match n {
        ENode::Unary(EUnOp::Not, a) if *a == target => Some(()),
        _ => None,
    })
    .is_some()
}

/// The operand of a `Not` node in class `x`, if any.
fn not_operand(g: &EGraph, x: Id) -> Option<Id> {
    g.find_in(x, |n| match n {
        ENode::Unary(EUnOp::Not, a) => Some(*a),
        _ => None,
    })
}

fn rw_and(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(EBinOp::And, a, b) = *node else { return };
    let w = g.width_of(id);
    if a == b {
        g.union(id, a);
        return;
    }
    for (x, y) in [(a, b), (b, a)] {
        if let Some(c) = g.const_of(x) {
            if c.is_zero() {
                let z = g.add_const(BitVec::zero(w));
                g.union(id, z);
            } else if c.is_ones() {
                g.union(id, y);
            }
            return;
        }
        // a & ¬a = 0
        if is_complement(g, x, y) {
            let z = g.add_const(BitVec::zero(w));
            g.union(id, z);
            return;
        }
        // Idempotence and annihilation through a nested chain (the
        // associativity the rule set otherwise avoids):
        // a & (a & b) = a & b, and a & (¬a & b) = 0.
        let and_arms = g.find_in(x, |n| match n {
            ENode::Bin(EBinOp::And, p, q) => Some((*p, *q)),
            _ => None,
        });
        if let Some((p, q)) = and_arms {
            let yf = g.find(y);
            if p == yf || q == yf {
                g.union(id, x);
                return;
            }
            for arm in [p, q] {
                if is_complement(g, arm, y) {
                    let z = g.add_const(BitVec::zero(w));
                    g.union(id, z);
                    return;
                }
            }
        }
        // Absorption a & (a | b) = a, and the dual-with-complement
        // a & (¬a | b) = a & b.
        let or_arms = g.find_in(x, |n| match n {
            ENode::Bin(EBinOp::Or, p, q) => Some((*p, *q)),
            _ => None,
        });
        if let Some((p, q)) = or_arms {
            if p == y || q == y {
                g.union(id, y);
                return;
            }
            for (arm, other) in [(p, q), (q, p)] {
                if is_complement(g, arm, y) {
                    let n = g.add(ENode::Bin(EBinOp::And, y, other));
                    g.union(id, n);
                    return;
                }
            }
        }
    }
}

fn rw_or(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(EBinOp::Or, a, b) = *node else { return };
    let w = g.width_of(id);
    if a == b {
        g.union(id, a);
        return;
    }
    for (x, y) in [(a, b), (b, a)] {
        if let Some(c) = g.const_of(x) {
            if c.is_ones() {
                let o = g.add_const(BitVec::ones(w));
                g.union(id, o);
            } else if c.is_zero() {
                g.union(id, y);
            }
            return;
        }
        // a | ¬a = 1…1
        if is_complement(g, x, y) {
            let o = g.add_const(BitVec::ones(w));
            g.union(id, o);
            return;
        }
        // Chain idempotence/annihilation: a | (a | b) = a | b, and
        // a | (¬a | b) = 1…1.
        let or_arms = g.find_in(x, |n| match n {
            ENode::Bin(EBinOp::Or, p, q) => Some((*p, *q)),
            _ => None,
        });
        if let Some((p, q)) = or_arms {
            let yf = g.find(y);
            if p == yf || q == yf {
                g.union(id, x);
                return;
            }
            for arm in [p, q] {
                if is_complement(g, arm, y) {
                    let o = g.add_const(BitVec::ones(w));
                    g.union(id, o);
                    return;
                }
            }
        }
        // Absorption a | (a & b) = a, and a | (¬a & b) = a | b.
        let and_arms = g.find_in(x, |n| match n {
            ENode::Bin(EBinOp::And, p, q) => Some((*p, *q)),
            _ => None,
        });
        if let Some((p, q)) = and_arms {
            if p == y || q == y {
                g.union(id, y);
                return;
            }
            for (arm, other) in [(p, q), (q, p)] {
                if is_complement(g, arm, y) {
                    let n = g.add(ENode::Bin(EBinOp::Or, y, other));
                    g.union(id, n);
                    return;
                }
            }
        }
    }
}

fn rw_xor(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(EBinOp::Xor, a, b) = *node else { return };
    let w = g.width_of(id);
    if a == b {
        let z = g.add_const(BitVec::zero(w));
        g.union(id, z);
        return;
    }
    for (x, y) in [(a, b), (b, a)] {
        if let Some(c) = g.const_of(x) {
            if c.is_zero() {
                g.union(id, y);
            } else if c.is_ones() {
                let n = g.add(ENode::Unary(EUnOp::Not, y));
                g.union(id, n);
            }
            return;
        }
        // a ^ ¬a = 1…1
        if is_complement(g, x, y) {
            let o = g.add_const(BitVec::ones(w));
            g.union(id, o);
            return;
        }
        // ¬a ^ ¬b = a ^ b
        if let (Some(na), Some(nb)) = (not_operand(g, x), not_operand(g, y)) {
            let n = g.add(ENode::Bin(EBinOp::Xor, na, nb));
            g.union(id, n);
            return;
        }
        // Chain cancellation: a ^ (a ^ b) = b, and a ^ (¬a ^ b) = ¬b.
        let xor_arms = g.find_in(x, |n| match n {
            ENode::Bin(EBinOp::Xor, p, q) => Some((*p, *q)),
            _ => None,
        });
        if let Some((p, q)) = xor_arms {
            let yf = g.find(y);
            for (arm, other) in [(p, q), (q, p)] {
                if arm == yf {
                    g.union(id, other);
                    return;
                }
                if is_complement(g, arm, y) {
                    let n = g.add(ENode::Unary(EUnOp::Not, other));
                    g.union(id, n);
                    return;
                }
            }
        }
    }
}

fn rw_not(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Unary(EUnOp::Not, a) = *node else { return };
    // ¬¬x = x
    if let Some(x) = not_operand(g, a) {
        g.union(id, x);
    }
}

fn rw_neg(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Unary(EUnOp::Neg, a) = *node else { return };
    let inner = g.find_in(a, |n| match n {
        ENode::Unary(EUnOp::Neg, x) => Some(*x),
        _ => None,
    });
    if let Some(x) = inner {
        g.union(id, x);
    }
}

/// Reassociates a constant operand outward for the associative-
/// commutative operators: `(x ⋄ c1) ⋄ c2 → x ⋄ (c1 ⋄ c2)`, which the
/// analysis then folds. Covers And/Or/Xor/Add/Mul.
fn rw_reassoc_const(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(op, a, b) = *node else { return };
    if !matches!(op, EBinOp::And | EBinOp::Or | EBinOp::Xor | EBinOp::Add | EBinOp::Mul) {
        return;
    }
    for (x, y) in [(a, b), (b, a)] {
        if g.const_of(y).is_none() {
            continue;
        }
        let inner = g.find_in(x, |n| match n {
            ENode::Bin(o2, p, q) if *o2 == op => Some((*p, *q)),
            _ => None,
        });
        let Some((p, q)) = inner else { continue };
        for (var, konst) in [(p, q), (q, p)] {
            if g.const_of(konst).is_some() {
                let folded = g.add(ENode::Bin(op, konst, y));
                let n = g.add(ENode::Bin(op, var, folded));
                g.union(id, n);
                return;
            }
        }
    }
}

fn rw_ite(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Ite(c, t, e) = *node else { return };
    if let Some(cv) = g.const_of(c) {
        let taken = if cv.is_true() { t } else { e };
        g.union(id, taken);
        return;
    }
    if t == e {
        g.union(id, t);
        return;
    }
    if g.width_of(id) == 1 {
        let (tc, ec) = (g.const_of(t).cloned(), g.const_of(e).cloned());
        // ite(c, 1, 0) = c and ite(c, 0, 1) = ¬c.
        if let (Some(tv), Some(ev)) = (&tc, &ec) {
            if tv.is_true() && ev.is_zero() {
                g.union(id, c);
                return;
            }
            if tv.is_zero() && ev.is_true() {
                let n = g.add(ENode::Unary(EUnOp::Not, c));
                g.union(id, n);
                return;
            }
        }
        // One constant arm turns the 1-bit mux into a single gate:
        // ite(c, 1, e) = c | e, ite(c, 0, e) = ¬c & e,
        // ite(c, t, 1) = ¬c | t, ite(c, t, 0) = c & t.
        if let Some(tv) = &tc {
            let n = if tv.is_true() {
                g.add(ENode::Bin(EBinOp::Or, c, e))
            } else {
                let nc = g.add(ENode::Unary(EUnOp::Not, c));
                g.add(ENode::Bin(EBinOp::And, nc, e))
            };
            g.union(id, n);
            return;
        }
        if let Some(ev) = &ec {
            let n = if ev.is_true() {
                let nc = g.add(ENode::Unary(EUnOp::Not, c));
                g.add(ENode::Bin(EBinOp::Or, nc, t))
            } else {
                g.add(ENode::Bin(EBinOp::And, c, t))
            };
            g.union(id, n);
            return;
        }
    }
    // ite(¬c, a, b) = ite(c, b, a)
    if let Some(c2) = not_operand(g, c) {
        let n = g.add(ENode::Ite(c2, e, t));
        g.union(id, n);
        return;
    }
    // Collapse a repeated condition in either branch:
    // ite(c, ite(c, t2, _), e) = ite(c, t2, e), and dually.
    let cf = g.find(c);
    let nested_t = g.find_in(t, |n| match n {
        ENode::Ite(c2, t2, _) if *c2 == cf => Some(*t2),
        _ => None,
    });
    if let Some(t2) = nested_t {
        let n = g.add(ENode::Ite(c, t2, e));
        g.union(id, n);
        return;
    }
    let nested_e = g.find_in(e, |n| match n {
        ENode::Ite(c2, _, e2) if *c2 == cf => Some(*e2),
        _ => None,
    });
    if let Some(e2) = nested_e {
        let n = g.add(ENode::Ite(c, t, e2));
        g.union(id, n);
        return;
    }
    // Fuse muxes that share an adjacent arm — common in one-hot
    // selector chains where several cases pick the same source:
    // ite(c1, t, ite(c2, t, e2)) = ite(c1 | c2, t, e2), and
    // ite(c1, ite(c2, t2, e), e) = ite(c1 & c2, t2, e).
    let tf = g.find(t);
    let shared_then = g.find_in(e, |n| match n {
        ENode::Ite(c2, t2, e2) if *t2 == tf => Some((*c2, *e2)),
        _ => None,
    });
    if let Some((c2, e2)) = shared_then {
        let cc = g.add(ENode::Bin(EBinOp::Or, c, c2));
        let n = g.add(ENode::Ite(cc, t, e2));
        g.union(id, n);
        return;
    }
    let ef = g.find(e);
    let shared_else = g.find_in(t, |n| match n {
        ENode::Ite(c2, t2, e2) if *e2 == ef => Some((*c2, *t2)),
        _ => None,
    });
    if let Some((c2, t2)) = shared_else {
        let cc = g.add(ENode::Bin(EBinOp::And, c, c2));
        let n = g.add(ENode::Ite(cc, t2, e));
        g.union(id, n);
    }
}

fn rw_add(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(EBinOp::Add, a, b) = *node else { return };
    for (x, y) in [(a, b), (b, a)] {
        if g.const_of(x).is_some_and(BitVec::is_zero) {
            g.union(id, y);
            return;
        }
    }
}

fn rw_sub(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(EBinOp::Sub, a, b) = *node else { return };
    let w = g.width_of(id);
    if a == b {
        let z = g.add_const(BitVec::zero(w));
        g.union(id, z);
        return;
    }
    if g.const_of(b).is_some_and(BitVec::is_zero) {
        g.union(id, a);
        return;
    }
    if g.const_of(a).is_some_and(BitVec::is_zero) {
        let n = g.add(ENode::Unary(EUnOp::Neg, b));
        g.union(id, n);
        return;
    }
    // x - c = x + (-c): normalizes toward Add so constants reassociate.
    if let Some(c) = g.const_of(b).cloned() {
        let nc = g.add_const(c.neg());
        let n = g.add(ENode::Bin(EBinOp::Add, a, nc));
        g.union(id, n);
    }
}

fn rw_mul(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(EBinOp::Mul, a, b) = *node else { return };
    let w = g.width_of(id);
    for (x, y) in [(a, b), (b, a)] {
        let Some(c) = g.const_of(x).cloned() else { continue };
        if c.is_zero() {
            let z = g.add_const(BitVec::zero(w));
            g.union(id, z);
        } else if c.is_one() {
            g.union(id, y);
        } else if c.count_ones() == 1 {
            // ×2^k = shift left by k, which the shift rule then lowers
            // to pure wiring.
            let k = (0..w).find(|&i| c.bit(i)).unwrap_or(0);
            let kc = g.add_const(BitVec::from_u64(w, u64::from(k)));
            let n = g.add(ENode::Bin(EBinOp::Shl, y, kc));
            g.union(id, n);
        }
        return;
    }
}

/// Lowers shifts by a constant amount to extract/concat/extension
/// wiring, which costs nothing after bit-blasting.
fn rw_shift_const(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(op, a, b) = *node else { return };
    if !matches!(op, EBinOp::Shl | EBinOp::Lshr | EBinOp::Ashr) {
        return;
    }
    let w = g.width_of(id);
    let Some(cnt) = g.const_of(b).and_then(BitVec::to_u64) else { return };
    if cnt == 0 {
        g.union(id, a);
        return;
    }
    let over = cnt >= u64::from(w);
    let c = u32::try_from(cnt.min(u64::from(w))).expect("count fits");
    let n = match op {
        EBinOp::Shl => {
            if over {
                g.add_const(BitVec::zero(w))
            } else {
                // Low c bits zero, upper bits from a[w-1-c:0].
                let hi = g.add(ENode::Extract(a, w - 1 - c, 0));
                let lo = g.add_const(BitVec::zero(c));
                g.add(ENode::Concat(hi, lo))
            }
        }
        EBinOp::Lshr => {
            if over {
                g.add_const(BitVec::zero(w))
            } else {
                let hi = g.add(ENode::Extract(a, w - 1, c));
                g.add(ENode::ZExt(hi, w))
            }
        }
        EBinOp::Ashr => {
            // Shifting by ≥ w replicates the sign bit everywhere.
            let lo = if over { w - 1 } else { c };
            let hi = g.add(ENode::Extract(a, w - 1, lo));
            g.add(ENode::SExt(hi, w))
        }
        _ => unreachable!(),
    };
    g.union(id, n);
}

fn rw_extract(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Extract(a, h, l) = *node else { return };
    let aw = g.width_of(a);
    if l == 0 && h == aw - 1 {
        g.union(id, a);
        return;
    }
    // extract(extract(x, _, il), h, l) = extract(x, il+h, il+l)
    let inner = g.find_in(a, |n| match n {
        ENode::Extract(x, _, il) => Some((*x, *il)),
        _ => None,
    });
    if let Some((x, il)) = inner {
        let n = g.add(ENode::Extract(x, il + h, il + l));
        g.union(id, n);
        return;
    }
    // Route an extract through a concat when the slice lands entirely in
    // one half.
    let halves = g.find_in(a, |n| match n {
        ENode::Concat(hi, lo) => Some((*hi, *lo)),
        _ => None,
    });
    if let Some((hi, lo)) = halves {
        let lw = g.width_of(lo);
        if h < lw {
            let n = g.add(ENode::Extract(lo, h, l));
            g.union(id, n);
            return;
        }
        if l >= lw {
            let n = g.add(ENode::Extract(hi, h - lw, l - lw));
            g.union(id, n);
            return;
        }
    }
    // Route through zero/sign extension when the slice stays inside the
    // original operand (or, for zext, lands entirely in the zero pad).
    let ext = g.find_in(a, |n| match n {
        ENode::ZExt(x, _) => Some((*x, false)),
        ENode::SExt(x, _) => Some((*x, true)),
        _ => None,
    });
    if let Some((x, signed)) = ext {
        let xw = g.width_of(x);
        if h < xw {
            let n = g.add(ENode::Extract(x, h, l));
            g.union(id, n);
            return;
        }
        if !signed && l >= xw {
            let z = g.add_const(BitVec::zero(h - l + 1));
            g.union(id, z);
            return;
        }
        if !signed && l < xw {
            // Straddles the boundary: upper part is zeros.
            let keep = g.add(ENode::Extract(x, xw - 1, l));
            let n = g.add(ENode::ZExt(keep, h - l + 1));
            g.union(id, n);
            return;
        }
    }
    // Distribute over a mux so slices of selected buses shrink early.
    let mux = g.find_in(a, |n| match n {
        ENode::Ite(c, t, e) => Some((*c, *t, *e)),
        _ => None,
    });
    if let Some((c, t, e)) = mux {
        let ts = g.add(ENode::Extract(t, h, l));
        let es = g.add(ENode::Extract(e, h, l));
        let n = g.add(ENode::Ite(c, ts, es));
        g.union(id, n);
    }
}

fn rw_concat(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Concat(hi, lo) = *node else { return };
    // concat(extract(x, h1, l1), extract(x, l1-1, l2)) = extract(x, h1, l2)
    let top = g.find_in(hi, |n| match n {
        ENode::Extract(x, h1, l1) => Some((*x, *h1, *l1)),
        _ => None,
    });
    if let Some((x, h1, l1)) = top {
        let xf = g.find(x);
        let bot = g.find_in(lo, |n| match n {
            ENode::Extract(x2, h2, l2) if *x2 == xf && l1 == *h2 + 1 => Some(*l2),
            _ => None,
        });
        if let Some(l2) = bot {
            let n = g.add(ENode::Extract(x, h1, l2));
            g.union(id, n);
            return;
        }
    }
    // concat(0, x) = zext(x); lets the extension rules fire.
    if g.const_of(hi).is_some_and(BitVec::is_zero) {
        let n = g.add(ENode::ZExt(lo, g.width_of(id)));
        g.union(id, n);
    }
}

fn rw_ext(g: &mut EGraph, id: Id, node: &ENode) {
    match *node {
        ENode::ZExt(a, w) => {
            if g.width_of(a) == w {
                g.union(id, a);
                return;
            }
            // zext(zext(x)) = zext(x) and zext(sext-free) composition.
            let inner = g.find_in(a, |n| match n {
                ENode::ZExt(x, _) => Some(*x),
                _ => None,
            });
            if let Some(x) = inner {
                let n = g.add(ENode::ZExt(x, w));
                g.union(id, n);
            }
        }
        ENode::SExt(a, w) => {
            if g.width_of(a) == w {
                g.union(id, a);
                return;
            }
            let inner = g.find_in(a, |n| match n {
                ENode::SExt(x, _) => Some((*x, false)),
                // sext(zext(x, m), w) = zext(x, w) when the zext grew the
                // value (its MSB is a pad zero).
                ENode::ZExt(x, m) if g.width_of(*x) < *m => Some((*x, true)),
                _ => None,
            });
            if let Some((x, via_zext)) = inner {
                let n = if via_zext {
                    g.add(ENode::ZExt(x, w))
                } else {
                    g.add(ENode::SExt(x, w))
                };
                g.union(id, n);
            }
        }
        _ => {}
    }
}

fn rw_redor(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Unary(EUnOp::RedOr, a) = *node else { return };
    if g.width_of(a) == 1 {
        g.union(id, a);
        return;
    }
    // redor(concat(h, l)) = redor(h) | redor(l)
    let halves = g.find_in(a, |n| match n {
        ENode::Concat(h, l) => Some((*h, *l)),
        _ => None,
    });
    if let Some((h, l)) = halves {
        let rh = g.add(ENode::Unary(EUnOp::RedOr, h));
        let rl = g.add(ENode::Unary(EUnOp::RedOr, l));
        let n = g.add(ENode::Bin(EBinOp::Or, rh, rl));
        g.union(id, n);
        return;
    }
    // redor(zext(x)) = redor(x): padding zeros never matter.
    let inner = g.find_in(a, |n| match n {
        ENode::ZExt(x, _) => Some(*x),
        _ => None,
    });
    if let Some(x) = inner {
        let n = g.add(ENode::Unary(EUnOp::RedOr, x));
        g.union(id, n);
    }
}

fn rw_cmp(g: &mut EGraph, id: Id, node: &ENode) {
    let ENode::Bin(op, a, b) = *node else { return };
    if !op.is_predicate() {
        return;
    }
    let tru = BitVec::from_bool(true);
    let fls = BitVec::from_bool(false);
    match op {
        EBinOp::Eq => {
            if a == b {
                let t = g.add_const(tru);
                g.union(id, t);
                return;
            }
            // On 1-bit operands an equality is just the value (or its
            // complement).
            if g.width_of(a) == 1 {
                for (x, y) in [(a, b), (b, a)] {
                    if let Some(c) = g.const_of(x).cloned() {
                        if c.is_true() {
                            g.union(id, y);
                        } else {
                            let n = g.add(ENode::Unary(EUnOp::Not, y));
                            g.union(id, n);
                        }
                        return;
                    }
                }
            }
            // x == 0 over wide x is ¬redor(x); the redor rules then chew
            // through concats and extensions.
            for (x, y) in [(a, b), (b, a)] {
                if g.const_of(x).is_some_and(BitVec::is_zero) && g.width_of(y) > 1 {
                    let r = g.add(ENode::Unary(EUnOp::RedOr, y));
                    let n = g.add(ENode::Unary(EUnOp::Not, r));
                    g.union(id, n);
                    return;
                }
            }
        }
        EBinOp::Ult => {
            if a == b || g.const_of(b).is_some_and(BitVec::is_zero) {
                let f = g.add_const(fls);
                g.union(id, f);
            } else if g.const_of(a).is_some_and(BitVec::is_zero) {
                // 0 < b ⇔ b ≠ 0 ⇔ redor(b)
                let n = g.add(ENode::Unary(EUnOp::RedOr, b));
                g.union(id, n);
            }
        }
        EBinOp::Ule
            if a == b
                || g.const_of(a).is_some_and(BitVec::is_zero)
                || g.const_of(b).is_some_and(BitVec::is_ones) =>
        {
            let t = g.add_const(tru);
            g.union(id, t);
        }
        EBinOp::Slt if a == b => {
            let f = g.add_const(fls);
            g.union(id, f);
        }
        EBinOp::Sle if a == b => {
            let t = g.add_const(tru);
            g.union(id, t);
        }
        _ => {}
    }
}
