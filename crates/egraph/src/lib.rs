//! `owl-egraph` — a hash-consed e-graph with equality saturation for
//! the OWL toolchain.
//!
//! The synthesis loop's queries reach the bit-blaster exactly as the
//! symbolic evaluator produced them: redundant muxes, shifts by
//! constants, sign-extension chains and all. This crate provides the
//! shared rewrite engine that both `owl-smt` (simplify the QF_BV term
//! graph before bit-blasting, shrinking the CNF) and `owl-netlist`
//! (shrink the emitted gate sea) run before doing expensive work:
//!
//! - [`EGraph`]: hash-consed nodes over union-find e-classes with
//!   worklist congruence closure and a constant-folding analysis;
//! - [`bv_rules`] / [`bool_rules`]: the declarative QF_BV rewrite set
//!   and its Boolean subset;
//! - [`saturate`]: bounded equality saturation governed by the shared
//!   [`Budget`] (deadline/cancellation polled mid-run, graceful partial
//!   results, fault injection via the budget's `FaultPlan`);
//! - [`Extractor`] with [`TermCost`] / [`GateCost`]: cost-based
//!   extraction of the cheapest equivalent term.

mod extract;
mod graph;
mod node;
mod rules;
mod saturate;

pub use extract::{CostModel, Extractor, GateCost, TermCost};
pub use graph::{EClass, EGraph};
pub use node::{EBinOp, ENode, EUnOp, Id};
pub use rules::{bool_rules, bv_rules, Rule};
pub use saturate::{saturate, SaturationLimits, SaturationReport};

// Re-exported so clients can drive saturation without a direct
// `owl-sat` dependency.
pub use owl_sat::{Budget, CancelFlag, Fault, FaultPlan, StopReason};

// Observability: the tracer rides the budget into saturation, so the
// handle (and the reporting API) re-export alongside it.
pub use owl_sat::{Report, Section, Tracer, Value};

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use std::sync::Arc;
    use std::time::Duration;

    fn c8(g: &mut EGraph, v: u64) -> Id {
        g.add_const(BitVec::from_u64(8, v))
    }

    fn run(g: &mut EGraph) -> SaturationReport {
        saturate(g, &bv_rules(), &Budget::unlimited(), &SaturationLimits::default())
    }

    /// Extracts and asserts the class reduces to the given constant.
    fn assert_const(g: &EGraph, id: Id, width: u32, value: u64) {
        let ex = Extractor::new(g, &TermCost);
        match ex.best(g, id) {
            ENode::Const(v) => assert_eq!(*v, BitVec::from_u64(width, value)),
            other => panic!("expected constant, extracted {other:?}"),
        }
    }

    #[test]
    fn hashcons_dedups_and_sorts_commutative() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let b = g.add(ENode::Leaf(1, 8));
        let ab = g.add(ENode::Bin(EBinOp::And, a, b));
        let ba = g.add(ENode::Bin(EBinOp::And, b, a));
        assert_eq!(ab, ba);
        assert_eq!(g.width_of(ab), 8);
    }

    #[test]
    fn constant_folding_in_add() {
        let mut g = EGraph::new();
        let x = c8(&mut g, 3);
        let y = c8(&mut g, 5);
        let s = g.add(ENode::Bin(EBinOp::Add, x, y));
        assert_eq!(g.const_of(s), Some(&BitVec::from_u64(8, 8)));
    }

    #[test]
    fn congruence_merges_parents() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let b = g.add(ENode::Leaf(1, 8));
        let na = g.add(ENode::Unary(EUnOp::Not, a));
        let nb = g.add(ENode::Unary(EUnOp::Not, b));
        assert_ne!(g.find(na), g.find(nb));
        g.union(a, b);
        g.rebuild();
        assert_eq!(g.find(na), g.find(nb), "congruence closure merges ¬a and ¬b");
    }

    #[test]
    fn absorption_and_identities() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let b = g.add(ENode::Leaf(1, 8));
        let a_or_b = g.add(ENode::Bin(EBinOp::Or, a, b));
        let absorbed = g.add(ENode::Bin(EBinOp::And, a, a_or_b));
        run(&mut g);
        assert_eq!(g.find(absorbed), g.find(a), "a & (a | b) = a");
    }

    #[test]
    fn double_negation_collapses() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let n1 = g.add(ENode::Unary(EUnOp::Not, a));
        let n2 = g.add(ENode::Unary(EUnOp::Not, n1));
        run(&mut g);
        assert_eq!(g.find(n2), g.find(a));
    }

    #[test]
    fn complement_annihilates() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let na = g.add(ENode::Unary(EUnOp::Not, a));
        let and = g.add(ENode::Bin(EBinOp::And, a, na));
        let or = g.add(ENode::Bin(EBinOp::Or, a, na));
        run(&mut g);
        assert_const(&g, and, 8, 0);
        assert_const(&g, or, 8, 0xff);
    }

    #[test]
    fn ite_same_condition_collapses() {
        let mut g = EGraph::new();
        let c = g.add(ENode::Leaf(0, 1));
        let x = g.add(ENode::Leaf(1, 8));
        let y = g.add(ENode::Leaf(2, 8));
        let z = g.add(ENode::Leaf(3, 8));
        let inner = g.add(ENode::Ite(c, x, y));
        let outer = g.add(ENode::Ite(c, inner, z));
        run(&mut g);
        let direct = g.add(ENode::Ite(c, x, z));
        assert_eq!(g.find(outer), g.find(direct), "ite(c, ite(c, x, y), z) = ite(c, x, z)");
    }

    #[test]
    fn shift_by_constant_becomes_wiring() {
        let mut g = EGraph::new();
        let x = g.add(ENode::Leaf(0, 8));
        let two = c8(&mut g, 2);
        let shifted = g.add(ENode::Bin(EBinOp::Shl, x, two));
        run(&mut g);
        let ex = Extractor::new(&g, &TermCost);
        assert_eq!(ex.cost(&g, shifted), Some(0), "shl by constant extracts as free wiring");
    }

    #[test]
    fn extract_of_concat_routes() {
        let mut g = EGraph::new();
        let hi = g.add(ENode::Leaf(0, 8));
        let lo = g.add(ENode::Leaf(1, 8));
        let cat = g.add(ENode::Concat(hi, lo));
        let top = g.add(ENode::Extract(cat, 15, 8));
        run(&mut g);
        assert_eq!(g.find(top), g.find(hi));
    }

    #[test]
    fn concat_of_adjacent_extracts_fuses() {
        let mut g = EGraph::new();
        let x = g.add(ENode::Leaf(0, 8));
        let top = g.add(ENode::Extract(x, 7, 4));
        let bot = g.add(ENode::Extract(x, 3, 0));
        let cat = g.add(ENode::Concat(top, bot));
        run(&mut g);
        assert_eq!(g.find(cat), g.find(x), "concat(x[7:4], x[3:0]) = x");
    }

    #[test]
    fn reassociated_constants_fold() {
        let mut g = EGraph::new();
        let x = g.add(ENode::Leaf(0, 8));
        let one = c8(&mut g, 1);
        let two = c8(&mut g, 2);
        let x1 = g.add(ENode::Bin(EBinOp::Add, x, one));
        let x12 = g.add(ENode::Bin(EBinOp::Add, x1, two));
        run(&mut g);
        let three = c8(&mut g, 3);
        let direct = g.add(ENode::Bin(EBinOp::Add, x, three));
        assert_eq!(g.find(x12), g.find(direct), "(x + 1) + 2 = x + 3");
    }

    #[test]
    fn saturation_reports_fixpoint() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 4));
        let b = g.add(ENode::Leaf(1, 4));
        g.add(ENode::Bin(EBinOp::Xor, a, b));
        let report = run(&mut g);
        assert!(report.saturated);
        assert!(report.stop.is_none());
    }

    #[test]
    fn expired_deadline_stops_immediately_and_graph_stays_extractable() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let na = g.add(ENode::Unary(EUnOp::Not, a));
        let nna = g.add(ENode::Unary(EUnOp::Not, na));
        let budget = Budget::unlimited().with_deadline_in(Duration::ZERO);
        let report = saturate(&mut g, &bv_rules(), &budget, &SaturationLimits::default());
        assert_eq!(report.stop, Some(StopReason::Deadline));
        assert!(!report.saturated);
        // The untouched graph still extracts the original term.
        let ex = Extractor::new(&g, &TermCost);
        assert!(matches!(ex.best(&g, nna), ENode::Unary(EUnOp::Not, _)));
    }

    #[test]
    fn cancellation_stops_saturation() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        g.add(ENode::Unary(EUnOp::Not, a));
        let cancel = CancelFlag::new();
        cancel.cancel();
        let budget = Budget::unlimited().with_cancel(cancel);
        let report = saturate(&mut g, &bv_rules(), &budget, &SaturationLimits::default());
        assert_eq!(report.stop, Some(StopReason::Cancelled));
    }

    #[test]
    fn forced_unknown_fault_aborts_without_panicking() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 8));
        let na = g.add(ENode::Unary(EUnOp::Not, a));
        g.add(ENode::Unary(EUnOp::Not, na));
        let plan = Arc::new(FaultPlan::new().at(0, Fault::ForceUnknown));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let report = saturate(&mut g, &bv_rules(), &budget, &SaturationLimits::default());
        assert_eq!(report.stop, Some(StopReason::FaultInjected));
        // Partial result is still a valid e-graph.
        let ex = Extractor::new(&g, &TermCost);
        assert!(ex.cost(&g, na).is_some());
    }

    #[test]
    fn stall_fault_lets_deadline_fire_mid_saturation() {
        let mut g = EGraph::new();
        // Enough structure that saturation would take several iterations.
        let mut prev = g.add(ENode::Leaf(0, 8));
        for i in 1..6 {
            let leaf = g.add(ENode::Leaf(i, 8));
            let node = g.add(ENode::Bin(EBinOp::And, prev, leaf));
            prev = g.add(ENode::Unary(EUnOp::Not, node));
        }
        let plan = Arc::new(FaultPlan::new().at(0, Fault::StallMillis(50)));
        let budget = Budget::unlimited()
            .with_deadline_in(Duration::from_millis(10))
            .with_fault_plan(plan);
        let report = saturate(&mut g, &bv_rules(), &budget, &SaturationLimits::default());
        assert_eq!(report.stop, Some(StopReason::Deadline), "stall pushes past the deadline");
        // Whatever was rewritten so far must still extract.
        let ex = Extractor::new(&g, &TermCost);
        assert!(ex.cost(&g, prev).is_some());
    }

    #[test]
    fn node_cap_bounds_growth() {
        let mut g = EGraph::new();
        let mut prev = g.add(ENode::Leaf(0, 8));
        for i in 1..20 {
            let leaf = g.add(ENode::Leaf(i, 8));
            prev = g.add(ENode::Bin(EBinOp::Add, prev, leaf));
        }
        let limits = SaturationLimits { max_iters: 64, max_nodes: 8 };
        let report = saturate(&mut g, &bv_rules(), &Budget::unlimited(), &limits);
        assert!(!report.saturated);
        assert!(report.stop.is_none());
    }

    #[test]
    fn gate_cost_prefers_fewer_gates() {
        let mut g = EGraph::new();
        let a = g.add(ENode::Leaf(0, 1));
        let b = g.add(ENode::Leaf(1, 1));
        let a_or_b = g.add(ENode::Bin(EBinOp::Or, a, b));
        let and = g.add(ENode::Bin(EBinOp::And, a, a_or_b));
        saturate(&mut g, &bool_rules(), &Budget::unlimited(), &SaturationLimits::default());
        let ex = Extractor::new(&g, &GateCost);
        assert_eq!(ex.cost(&g, and), Some(0), "absorption leaves a bare leaf");
    }
}
