//! The e-graph's node language: a small, self-contained mirror of the
//! QF_BV operators used by `owl-smt` and of the Boolean gate set used by
//! `owl-netlist`.
//!
//! The language is deliberately independent of both crates so the
//! dependency graph stays acyclic (`owl-smt` and `owl-netlist` depend on
//! `owl-egraph`, never the other way around). Clients map their own
//! leaves onto [`ENode::Leaf`] (variables, netlist inputs, flip-flop
//! outputs) and their uninterpreted operators onto [`ENode::Call`]
//! (array/ROM selects), keyed by opaque integers they choose.

use owl_bitvec::BitVec;

/// An e-class identifier. Canonical ids are resolved through the
/// e-graph's union-find; ids held across [`crate::EGraph::union`] calls
/// must be re-canonicalized with [`crate::EGraph::find`] before use as
/// map keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub(crate) u32);

impl Id {
    /// The raw index behind the id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Unary bitvector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EUnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// OR-reduction to a single bit.
    RedOr,
}

/// Binary bitvector operators. Comparisons produce a 1-bit result; all
/// other operators are width-preserving with equal-width operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EBinOp {
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Shl,
    Lshr,
    Ashr,
    Eq,
    Ult,
    Ule,
    Slt,
    Sle,
}

impl EBinOp {
    /// True for the comparison operators (1-bit result).
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(self, EBinOp::Eq | EBinOp::Ult | EBinOp::Ule | EBinOp::Slt | EBinOp::Sle)
    }

    /// True when operand order is irrelevant; the e-graph sorts the
    /// operands of commutative nodes by class id so `a ⋄ b` and `b ⋄ a`
    /// hash-cons to the same node.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            EBinOp::And | EBinOp::Or | EBinOp::Xor | EBinOp::Add | EBinOp::Mul | EBinOp::Eq
        )
    }
}

/// One operator application (or leaf) over e-class operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ENode {
    /// A bitvector constant.
    Const(BitVec),
    /// An opaque leaf `(key, width)` — a variable, netlist input, or
    /// flip-flop output. Two leaves are equal iff their keys are equal.
    Leaf(u32, u32),
    /// A unary operator.
    Unary(EUnOp, Id),
    /// A binary operator.
    Bin(EBinOp, Id, Id),
    /// `if cond { then } else { els }` with a 1-bit condition.
    Ite(Id, Id, Id),
    /// Bit slice `[high:low]` (inclusive, LSB 0).
    Extract(Id, u32, u32),
    /// `Concat(high, low)`; the low operand occupies the LSBs.
    Concat(Id, Id),
    /// Zero-extension to the given width.
    ZExt(Id, u32),
    /// Sign-extension to the given width.
    SExt(Id, u32),
    /// An uninterpreted call `(key, operands, width)` — array and ROM
    /// selects. Congruence still applies: equal keys with equivalent
    /// operands are merged.
    Call(u32, Vec<Id>, u32),
}

impl ENode {
    /// Visits each operand id in order.
    pub fn for_each_child(&self, mut f: impl FnMut(Id)) {
        match self {
            ENode::Const(_) | ENode::Leaf(..) => {}
            ENode::Unary(_, a) | ENode::Extract(a, ..) | ENode::ZExt(a, _) | ENode::SExt(a, _) => {
                f(*a);
            }
            ENode::Bin(_, a, b) | ENode::Concat(a, b) => {
                f(*a);
                f(*b);
            }
            ENode::Ite(c, t, e) => {
                f(*c);
                f(*t);
                f(*e);
            }
            ENode::Call(_, args, _) => {
                for &a in args {
                    f(a);
                }
            }
        }
    }

    /// Rebuilds the node with each operand id mapped through `f`,
    /// sorting commutative operands so the result is canonical under
    /// hash-consing.
    #[must_use]
    pub fn map_children(&self, mut f: impl FnMut(Id) -> Id) -> ENode {
        match self {
            ENode::Const(v) => ENode::Const(v.clone()),
            ENode::Leaf(k, w) => ENode::Leaf(*k, *w),
            ENode::Unary(op, a) => ENode::Unary(*op, f(*a)),
            ENode::Bin(op, a, b) => {
                let (mut x, mut y) = (f(*a), f(*b));
                if op.is_commutative() && y < x {
                    std::mem::swap(&mut x, &mut y);
                }
                ENode::Bin(*op, x, y)
            }
            ENode::Ite(c, t, e) => ENode::Ite(f(*c), f(*t), f(*e)),
            ENode::Extract(a, h, l) => ENode::Extract(f(*a), *h, *l),
            ENode::Concat(a, b) => ENode::Concat(f(*a), f(*b)),
            ENode::ZExt(a, w) => ENode::ZExt(f(*a), *w),
            ENode::SExt(a, w) => ENode::SExt(f(*a), *w),
            ENode::Call(k, args, w) => ENode::Call(*k, args.iter().map(|&a| f(a)).collect(), *w),
        }
    }
}
