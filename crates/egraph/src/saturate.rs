//! Bounded equality saturation under the shared resource [`Budget`].
//!
//! Saturation is always total: whatever stops it — fixpoint, iteration
//! cap, node cap, deadline, cancellation, or an injected fault — the
//! e-graph it leaves behind is a sound (possibly partially saturated)
//! state, and extraction can still recover at least the original terms.

use crate::graph::EGraph;
use crate::rules::Rule;
use owl_sat::{Budget, Fault, StopReason};

/// Structural caps on one saturation run, independent of the wall-clock
/// and cancellation governance the [`Budget`] provides.
#[derive(Debug, Clone, Copy)]
pub struct SaturationLimits {
    /// Maximum rule iterations (one iteration applies every rule to a
    /// snapshot of the whole graph).
    pub max_iters: usize,
    /// Stop growing once the graph holds this many nodes.
    pub max_nodes: usize,
}

impl Default for SaturationLimits {
    fn default() -> Self {
        SaturationLimits { max_iters: 8, max_nodes: 50_000 }
    }
}

/// What one saturation run did and why it stopped.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaturationReport {
    /// Completed rule iterations.
    pub iterations: usize,
    /// True when a fixpoint was reached (no rule changed the graph).
    pub saturated: bool,
    /// The budget stop that interrupted saturation, if any. `None` for
    /// fixpoint and structural-cap stops.
    pub stop: Option<StopReason>,
    /// Nodes in the graph when saturation finished.
    pub nodes: usize,
}

/// How often (in rule applications) the budget is re-polled inside one
/// iteration, so a deadline can interrupt even a single huge snapshot.
const POLL_STRIDE: usize = 1024;

/// Runs `rules` over `egraph` to fixpoint or until a limit fires.
///
/// The budget's deadline/cancellation is polled before every iteration
/// and every `POLL_STRIDE` (1024) rule applications within one. If the
/// budget
/// carries a fault plan, one fault index is consumed per iteration:
/// [`Fault::StallMillis`] sleeps (so deadline handling is testable) and
/// [`Fault::ForceUnknown`] abandons saturation with
/// [`StopReason::FaultInjected`]; other fault kinds are solver-specific
/// and ignored here.
pub fn saturate(
    egraph: &mut EGraph,
    rules: &[Rule],
    budget: &Budget,
    limits: &SaturationLimits,
) -> SaturationReport {
    // The tracer rides the budget (see `owl_sat::Budget::tracer`); a
    // disabled one makes both probes free.
    let tracer = budget.tracer().clone();
    let _span = tracer.span("egraph", "saturate");
    let mut report = SaturationReport::default();
    loop {
        report.nodes = egraph.node_count();
        if report.iterations >= limits.max_iters || report.nodes >= limits.max_nodes {
            break;
        }
        if let Some(reason) = budget.checkpoint() {
            report.stop = Some(reason);
            break;
        }
        match budget.next_fault() {
            Some(Fault::StallMillis(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                // The stall burned wall-clock; observe the deadline
                // before doing any more work.
                if let Some(reason) = budget.checkpoint() {
                    report.stop = Some(reason);
                    break;
                }
            }
            Some(Fault::ForceUnknown) => {
                report.stop = Some(StopReason::FaultInjected);
                break;
            }
            _ => {}
        }
        let before = egraph.version();
        let snapshot = egraph.snapshot();
        let mut applications = 0usize;
        let mut interrupted = false;
        'iteration: for (id, node) in &snapshot {
            for rule in rules {
                (rule.apply)(egraph, *id, node);
                applications += 1;
                if applications.is_multiple_of(POLL_STRIDE) {
                    if let Some(reason) = budget.checkpoint() {
                        report.stop = Some(reason);
                        interrupted = true;
                        break 'iteration;
                    }
                    if egraph.node_count() >= limits.max_nodes {
                        break 'iteration;
                    }
                }
            }
        }
        egraph.rebuild();
        egraph.materialize_constants();
        report.iterations += 1;
        report.nodes = egraph.node_count();
        if interrupted || report.stop.is_some() {
            break;
        }
        if egraph.version() == before {
            report.saturated = true;
            break;
        }
    }
    if tracer.is_enabled() {
        tracer.count("egraph", "iterations", report.iterations as u64);
        tracer.count("egraph", "saturations", 1);
    }
    report
}
