//! Cost-based extraction: picks the cheapest representative node per
//! e-class by a bottom-up fixpoint, yielding an acyclic term DAG.

use crate::graph::EGraph;
use crate::node::{EBinOp, ENode, EUnOp, Id};
use std::collections::HashMap;

/// A per-node cost function. The cost of a term is the node's own cost
/// plus the (shared-subterm-agnostic) cost of its chosen children, so
/// models should price what the node itself turns into downstream.
pub trait CostModel {
    /// The node's own cost, excluding children. `egraph` is available
    /// for operand widths.
    fn node_cost(&self, egraph: &EGraph, node: &ENode) -> u64;
}

/// CNF-oriented cost: prices a node by roughly how many Tseitin
/// variables/clauses the bit-blaster will spend on it. Wiring
/// (extract/concat/extensions/complement) is free, per-bit gates cost
/// their width, arithmetic and shifts cost their circuit depth, and
/// multiplication is quadratic.
#[derive(Debug, Clone, Copy, Default)]
pub struct TermCost;

impl CostModel for TermCost {
    fn node_cost(&self, egraph: &EGraph, node: &ENode) -> u64 {
        let w = |id: Id| u64::from(egraph.width_of(id));
        match node {
            ENode::Const(_) | ENode::Leaf(..) => 0,
            // Wiring: the blaster just routes literal vectors.
            ENode::Extract(..) | ENode::Concat(..) | ENode::ZExt(..) | ENode::SExt(..) => 0,
            ENode::Unary(EUnOp::Not, _) => 0,
            ENode::Unary(EUnOp::Neg, a) => 6 * w(*a),
            ENode::Unary(EUnOp::RedOr, a) => w(*a),
            ENode::Bin(op, a, b) => match op {
                EBinOp::And | EBinOp::Or | EBinOp::Xor => w(*a),
                EBinOp::Add | EBinOp::Sub => 6 * w(*a),
                EBinOp::Mul => 6 * w(*a) * w(*a),
                EBinOp::Shl | EBinOp::Lshr | EBinOp::Ashr => {
                    // A constant shift amount folds to wiring in the
                    // blaster; price it near-free (but above wiring, so
                    // the explicit extract/concat form still wins) and
                    // never let it look worth trading for real gates.
                    if egraph.const_of(*b).is_some() {
                        1
                    } else {
                        let wa = w(*a);
                        3 * wa * u64::from(u64::BITS - wa.leading_zeros())
                    }
                }
                EBinOp::Eq => 2 * w(*a),
                EBinOp::Ult | EBinOp::Ule | EBinOp::Slt | EBinOp::Sle => 4 * w(*a),
            },
            ENode::Ite(_, t, _) => 3 * w(*t),
            // Uninterpreted selects must be kept; give them a token cost
            // so ties prefer plain wiring.
            ENode::Call(..) => 1,
        }
    }
}

/// Gate-count cost for 1-bit netlists: every 2-input gate and inverter
/// costs one, leaves and constants are free. Operators outside the gate
/// set are priced prohibitively so extraction never invents them.
#[derive(Debug, Clone, Copy, Default)]
pub struct GateCost;

impl CostModel for GateCost {
    fn node_cost(&self, _egraph: &EGraph, node: &ENode) -> u64 {
        match node {
            ENode::Const(_) | ENode::Leaf(..) => 0,
            ENode::Unary(EUnOp::Not, _) => 1,
            ENode::Bin(EBinOp::And | EBinOp::Or | EBinOp::Xor, ..) => 1,
            ENode::Call(..) => 1,
            _ => 1 << 20,
        }
    }
}

/// The result of one extraction pass: the cheapest node (and its total
/// tree cost) for every extractable class.
#[derive(Debug)]
pub struct Extractor {
    best: HashMap<Id, (u64, ENode)>,
}

impl Extractor {
    /// Computes best nodes for every class by running the cost fixpoint
    /// to convergence (cycles introduced by unions resolve to whichever
    /// acyclic choice is cheapest).
    #[must_use]
    pub fn new(egraph: &EGraph, cost: &dyn CostModel) -> Self {
        let mut best: HashMap<Id, (u64, ENode)> = HashMap::new();
        let snapshot = egraph.snapshot();
        loop {
            let mut changed = false;
            for (id, node) in &snapshot {
                let id = egraph.find(*id);
                let mut total = cost.node_cost(egraph, node);
                let mut extractable = true;
                node.for_each_child(|c| {
                    match best.get(&egraph.find(c)) {
                        Some(&(child_cost, _)) => total = total.saturating_add(child_cost),
                        None => extractable = false,
                    }
                });
                if !extractable {
                    continue;
                }
                match best.get(&id) {
                    Some(&(old, _)) if old <= total => {}
                    _ => {
                        best.insert(id, (total, node.clone()));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Extractor { best }
    }

    /// The chosen node for a class.
    ///
    /// # Panics
    ///
    /// Panics if the class is not extractable. Classes reachable from
    /// any term that was added to the graph are always extractable.
    #[must_use]
    pub fn best(&self, egraph: &EGraph, id: Id) -> &ENode {
        &self.best[&egraph.find(id)].1
    }

    /// The total (DAG-unshared) cost of the chosen term for a class, or
    /// `None` when the class is not extractable.
    #[must_use]
    pub fn cost(&self, egraph: &EGraph, id: Id) -> Option<u64> {
        self.best.get(&egraph.find(id)).map(|&(c, _)| c)
    }
}
