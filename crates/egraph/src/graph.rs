//! The e-graph: hash-consed nodes over union-find e-classes, with a
//! worklist-based congruence-closure `rebuild` (the egg "rebuilding"
//! design) and a constant-value analysis attached to every class.

use crate::node::{EBinOp, ENode, EUnOp, Id};
use owl_bitvec::BitVec;
use std::collections::HashMap;

/// One equivalence class of nodes.
#[derive(Debug)]
pub struct EClass {
    /// The nodes in the class. Child ids may go stale after unions;
    /// canonicalize with [`EGraph::canonical`] before structural use.
    pub nodes: Vec<ENode>,
    /// Bit width of every node in the class.
    pub width: u32,
    /// The class's constant value, when the analysis has derived one.
    pub constant: Option<BitVec>,
    /// Uses of this class: `(parent node, parent class)` pairs, used by
    /// `rebuild` to restore congruence after unions.
    parents: Vec<(ENode, Id)>,
}

/// A hash-consed e-graph over [`ENode`]s.
#[derive(Debug, Default)]
pub struct EGraph {
    /// Union-find parent pointers, indexed by `Id`.
    uf: Vec<u32>,
    /// Per-class data; `None` for ids absorbed into another class.
    classes: Vec<Option<EClass>>,
    /// Canonicalized node → class. The single source of hash-consing.
    memo: HashMap<ENode, Id>,
    /// Classes whose parents must be re-canonicalized.
    worklist: Vec<Id>,
    /// Bumped on every structural change; equality saturation uses it to
    /// detect a fixpoint.
    version: u64,
}

impl EGraph {
    /// An empty e-graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of nodes across all live classes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.classes.iter().flatten().map(|c| c.nodes.len()).sum()
    }

    /// Number of live (canonical) classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.iter().flatten().count()
    }

    /// The structural-change counter (see [`EGraph`] field docs).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The canonical id for `id`.
    #[must_use]
    pub fn find(&self, id: Id) -> Id {
        let mut i = id.0;
        while self.uf[i as usize] != i {
            i = self.uf[i as usize];
        }
        Id(i)
    }

    fn find_compress(&mut self, id: Id) -> Id {
        let root = self.find(id);
        let mut i = id.0;
        while self.uf[i as usize] != root.0 {
            let next = self.uf[i as usize];
            self.uf[i as usize] = root.0;
            i = next;
        }
        root
    }

    /// The node with every child id canonicalized (and commutative
    /// operands sorted).
    #[must_use]
    pub fn canonical(&self, node: &ENode) -> ENode {
        node.map_children(|c| self.find(c))
    }

    /// The class data for a canonical id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not canonical (use [`EGraph::find`] first).
    #[must_use]
    pub fn class(&self, id: Id) -> &EClass {
        self.classes[id.index()].as_ref().expect("class id must be canonical")
    }

    /// Canonicalized clones of the nodes in `id`'s class.
    #[must_use]
    pub fn canon_nodes(&self, id: Id) -> Vec<ENode> {
        self.class(self.find(id)).nodes.iter().map(|n| self.canonical(n)).collect()
    }

    /// The width of the class.
    #[must_use]
    pub fn width_of(&self, id: Id) -> u32 {
        self.class(self.find(id)).width
    }

    /// The class's constant value, if the analysis derived one.
    #[must_use]
    pub fn const_of(&self, id: Id) -> Option<&BitVec> {
        self.class(self.find(id)).constant.as_ref()
    }

    /// First node in `id`'s class for which `f` returns `Some`, after
    /// canonicalizing the node's children. Rules use this for nested
    /// pattern matching.
    pub fn find_in<T>(&self, id: Id, mut f: impl FnMut(&ENode) -> Option<T>) -> Option<T> {
        self.class(self.find(id)).nodes.iter().find_map(|n| f(&self.canonical(n)))
    }

    /// Adds (or finds) the class of a constant.
    pub fn add_const(&mut self, value: BitVec) -> Id {
        self.add(ENode::Const(value))
    }

    /// Adds `node` to the e-graph, returning its class. Hash-consing
    /// dedups structurally equal nodes; the constant analysis folds
    /// nodes whose operands are all constant into a [`ENode::Const`]
    /// class immediately.
    pub fn add(&mut self, node: ENode) -> Id {
        let node = self.canonical(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find_compress(id);
        }
        // Constant folding: an all-constant application is the same
        // class as its folded value.
        if !matches!(node, ENode::Const(_)) {
            if let Some(v) = self.fold(&node) {
                let cid = self.add_const(v);
                self.attach(&node, cid);
                return cid;
            }
        }
        let id = Id(u32::try_from(self.uf.len()).expect("e-graph id overflow"));
        self.uf.push(id.0);
        let width = self.node_width(&node);
        let constant = match &node {
            ENode::Const(v) => Some(v.clone()),
            _ => None,
        };
        self.classes.push(Some(EClass {
            nodes: vec![node.clone()],
            width,
            constant,
            parents: Vec::new(),
        }));
        self.attach(&node, id);
        id
    }

    /// Registers `node` (already canonical) as living in class `id`:
    /// memoizes it and records it as a parent of each operand class.
    fn attach(&mut self, node: &ENode, id: Id) {
        self.memo.insert(node.clone(), id);
        let mut children: Vec<Id> = Vec::new();
        node.for_each_child(|c| children.push(c));
        children.dedup();
        for c in children {
            let c = self.find(c);
            self.classes[c.index()]
                .as_mut()
                .expect("operand class is live")
                .parents
                .push((node.clone(), id));
        }
        self.version += 1;
    }

    /// Merges the classes of `a` and `b`, deferring congruence repair to
    /// [`EGraph::rebuild`]. Returns the surviving root.
    ///
    /// # Panics
    ///
    /// Panics if the classes have different widths (an unsound rule).
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        let a = self.find_compress(a);
        let b = self.find_compress(b);
        if a == b {
            return a;
        }
        let (root, other) = if self.class(a).parents.len() >= self.class(b).parents.len() {
            (a, b)
        } else {
            (b, a)
        };
        assert_eq!(
            self.class(root).width,
            self.class(other).width,
            "union of classes with different widths"
        );
        self.uf[other.index()] = root.0;
        let absorbed = self.classes[other.index()].take().expect("other class is live");
        let rc = self.classes[root.index()].as_mut().expect("root class is live");
        rc.nodes.extend(absorbed.nodes);
        rc.parents.extend(absorbed.parents);
        match (&rc.constant, absorbed.constant) {
            (None, Some(v)) => rc.constant = Some(v),
            (Some(x), Some(y)) => {
                debug_assert_eq!(*x, y, "constant analysis merge conflict (unsound rewrite)");
            }
            _ => {}
        }
        self.worklist.push(root);
        self.version += 1;
        root
    }

    /// Restores the congruence invariant after a batch of unions: every
    /// parent node of a merged class is re-canonicalized, and parents
    /// that became structurally identical have their classes merged.
    pub fn rebuild(&mut self) {
        while let Some(dirty) = self.worklist.pop() {
            let dirty = self.find(dirty);
            let parents = std::mem::take(
                &mut self.classes[dirty.index()].as_mut().expect("dirty class is live").parents,
            );
            let mut new_parents: Vec<(ENode, Id)> = Vec::with_capacity(parents.len());
            let mut merges: Vec<(Id, Id)> = Vec::new();
            for (pnode, pclass) in parents {
                self.memo.remove(&pnode);
                let canon = self.canonical(&pnode);
                let pclass = self.find(pclass);
                match self.memo.get(&canon) {
                    Some(&existing) if self.find(existing) != pclass => {
                        merges.push((existing, pclass));
                    }
                    _ => {
                        self.memo.insert(canon.clone(), pclass);
                    }
                }
                new_parents.push((canon, pclass));
            }
            new_parents.sort_by(|x, y| x.0.cmp_key().cmp(&y.0.cmp_key()).then(x.1.cmp(&y.1)));
            new_parents.dedup();
            let cls = self.classes[dirty.index()].as_mut().expect("dirty class is live");
            cls.parents.extend(new_parents);
            for (a, b) in merges {
                self.union(a, b);
            }
        }
    }

    /// Materializes a `Const` node in every class whose constant
    /// analysis has a value but which lacks one (this can happen when a
    /// union propagates a constant into a class). Keeps extraction able
    /// to pick the constant at zero cost.
    pub fn materialize_constants(&mut self) {
        let todo: Vec<(Id, BitVec)> = self
            .classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.as_ref()?;
                let v = c.constant.clone()?;
                if c.nodes.iter().any(|n| matches!(n, ENode::Const(_))) {
                    None
                } else {
                    Some((Id(u32::try_from(i).expect("id fits")), v))
                }
            })
            .collect();
        for (id, v) in todo {
            let cid = self.add_const(v);
            self.union(id, cid);
        }
        self.rebuild();
    }

    /// Snapshot of `(class, node)` pairs for one saturation iteration,
    /// in deterministic id order with canonicalized nodes.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Id, ENode)> {
        let mut out = Vec::with_capacity(self.node_count());
        for (i, cls) in self.classes.iter().enumerate() {
            let Some(cls) = cls else { continue };
            let id = Id(u32::try_from(i).expect("id fits"));
            for node in &cls.nodes {
                out.push((id, self.canonical(node)));
            }
        }
        out
    }

    /// Width of a node whose operands are already in the graph.
    fn node_width(&self, node: &ENode) -> u32 {
        match node {
            ENode::Const(v) => v.width(),
            ENode::Leaf(_, w) | ENode::Call(_, _, w) | ENode::ZExt(_, w) | ENode::SExt(_, w) => *w,
            ENode::Unary(EUnOp::RedOr, _) => 1,
            ENode::Unary(_, a) => self.width_of(*a),
            ENode::Bin(op, a, _) => {
                if op.is_predicate() {
                    1
                } else {
                    self.width_of(*a)
                }
            }
            ENode::Ite(_, t, _) => self.width_of(*t),
            ENode::Extract(_, h, l) => h - l + 1,
            ENode::Concat(a, b) => self.width_of(*a) + self.width_of(*b),
        }
    }

    /// Evaluates a node whose operands all have constant values.
    fn fold(&self, node: &ENode) -> Option<BitVec> {
        let c = |id: Id| self.const_of(id);
        Some(match node {
            ENode::Const(v) => v.clone(),
            ENode::Leaf(..) | ENode::Call(..) => return None,
            ENode::Unary(op, a) => {
                let a = c(*a)?;
                match op {
                    EUnOp::Not => a.not(),
                    EUnOp::Neg => a.neg(),
                    EUnOp::RedOr => BitVec::from_bool(!a.is_zero()),
                }
            }
            ENode::Bin(op, a, b) => {
                let (a, b) = (c(*a)?, c(*b)?);
                match op {
                    EBinOp::And => a.and(b),
                    EBinOp::Or => a.or(b),
                    EBinOp::Xor => a.xor(b),
                    EBinOp::Add => a.add(b),
                    EBinOp::Sub => a.sub(b),
                    EBinOp::Mul => a.mul(b),
                    EBinOp::Shl => a.shl(b),
                    EBinOp::Lshr => a.lshr(b),
                    EBinOp::Ashr => a.ashr(b),
                    EBinOp::Eq => BitVec::from_bool(a == b),
                    EBinOp::Ult => BitVec::from_bool(a.ult(b)),
                    EBinOp::Ule => BitVec::from_bool(a.ule(b)),
                    EBinOp::Slt => BitVec::from_bool(a.slt(b)),
                    EBinOp::Sle => BitVec::from_bool(a.sle(b)),
                }
            }
            ENode::Ite(cond, t, e) => {
                let cond = c(*cond)?;
                // Fold on a constant condition even when only the taken
                // branch is constant.
                let taken = if cond.is_true() { *t } else { *e };
                c(taken)?.clone()
            }
            ENode::Extract(a, h, l) => c(*a)?.extract(*h, *l),
            ENode::Concat(a, b) => c(*a)?.concat(c(*b)?),
            ENode::ZExt(a, w) => c(*a)?.zext(*w),
            ENode::SExt(a, w) => c(*a)?.sext(*w),
        })
    }
}

impl ENode {
    /// A cheap total-order key for deterministic parent sorting.
    fn cmp_key(&self) -> u64 {
        let disc: u64 = match self {
            ENode::Const(_) => 0,
            ENode::Leaf(k, _) => 1 + ((u64::from(*k)) << 8),
            ENode::Unary(_, a) => 2 + ((u64::from(a.0)) << 8),
            ENode::Bin(_, a, _) => 3 + ((u64::from(a.0)) << 8),
            ENode::Ite(c, _, _) => 4 + ((u64::from(c.0)) << 8),
            ENode::Extract(a, ..) => 5 + ((u64::from(a.0)) << 8),
            ENode::Concat(a, _) => 6 + ((u64::from(a.0)) << 8),
            ENode::ZExt(a, _) => 7 + ((u64::from(a.0)) << 8),
            ENode::SExt(a, _) => 8 + ((u64::from(a.0)) << 8),
            ENode::Call(k, _, _) => 9 + ((u64::from(*k)) << 8),
        };
        disc
    }
}
