//! The CEGIS synthesis engine (paper §3.3).
//!
//! Per-instruction mode implements the instruction-independence
//! optimization of §3.3.1: each instruction's `∃ holes ∀ state` problem is
//! solved separately (with the previous instruction's solution used as the
//! first candidate, which keeps shared encodings — FSM states — consistent
//! across instructions whenever possible), and the per-instruction
//! constants are later joined by the control union ⊔.
//!
//! Monolithic mode is the Equation (1) baseline: every hole is replaced by
//! a symbolic if-then-else chain over all instruction preconditions and a
//! single ∀ query conjoins every instruction's obligation — the
//! formulation whose solve times explode (Table 1's † rows).
//!
//! # Resource governance & graceful degradation
//!
//! Every solver call runs under a shared [`Budget`]: the wall-clock
//! deadline derived from [`SynthesisConfig::time_budget`] and the shared
//! [`CancelFlag`] are polled *inside* the CDCL loop, so a single hard
//! query cannot blow past the budget. Failures are per-instruction
//! outcomes, not run-aborting errors: a timeout mid-run returns the
//! already-solved prefix ([`SynthesisOutput::solutions`]) together with
//! typed [`InstrOutcome`]s and the interrupting [`CoreError`]. Before an
//! instruction is declared failed, the engine retries with escalating
//! conflict budgets (geometric doubling, in the spirit of Luby restart
//! schedules) and then falls back from the seeded candidate to a fresh
//! zero candidate.

use crate::abstraction::AbstractionFn;
use crate::certify::{panic_message, Certificate, QueryLog};
use crate::conditions::{ConditionBuilder, InstrConditions};
use crate::{CoreError, ErrorClass};
use owl_bitvec::BitVec;
use owl_ila::Ila;
use owl_oyster::{Design, SymbolicEvaluator};
use owl_smt::{
    solve, substitute, Budget, CancelFlag, CheckOpts, Env, FaultPlan, QueryCert, QueryStats,
    SmtResult, SolveSession, SolverConfig, StopReason, SymbolId, TermId, TermManager,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to decompose the synthesis problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthesisMode {
    /// Solve each instruction independently and union the results
    /// (requires instruction independence; the paper's optimization).
    #[default]
    PerInstruction,
    /// One joint query over all instructions (Equation (1) as written).
    Monolithic,
}

/// Tuning knobs for the synthesis engine.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Problem decomposition.
    pub mode: SynthesisMode,
    /// Maximum CEGIS refinement rounds per query before giving up.
    pub max_cex_rounds: usize,
    /// Optional SAT conflict budget per solver call (the base of the
    /// escalation ladder).
    pub conflict_budget: Option<u64>,
    /// Optional wall-clock budget for the whole synthesis run, enforced
    /// cooperatively inside solver calls.
    pub time_budget: Option<Duration>,
    /// Optional SAT decision limit per solver call.
    pub decision_budget: Option<u64>,
    /// Optional SAT propagation limit per solver call.
    pub propagation_budget: Option<u64>,
    /// Optional ceiling, in bytes, on each solver call's learned-clause
    /// database. Hitting the cap triggers aggressive clause-DB
    /// reduction; if the database still exceeds the cap the call stops
    /// with a typed [`CoreError::SolverExhausted`] — never an OOM kill.
    pub memory_budget: Option<u64>,
    /// Optional watchdog timeout for the parallel scheduler: a task
    /// whose solver heartbeat (conflict/decision progress) freezes for
    /// this long is cancelled with a typed [`CoreError::Stalled`], its
    /// fact is journaled, and its budget is donated to the phase-2
    /// rebalance. `None` (the default) disables the watchdog. Stall
    /// detection is wall-clock based, so — like deadlines and mid-run
    /// cancellation — it is a documented exception to the
    /// thread-count-invariance contract.
    pub stall_timeout: Option<Duration>,
    /// Shared cancellation flag; raise it from another thread to stop
    /// the run (and any in-flight query) cooperatively.
    pub cancel: CancelFlag,
    /// How many times a budget-exhausted instruction is retried with a
    /// doubled conflict budget before being declared failed.
    pub max_escalations: u32,
    /// Deterministic fault-injection plan (testing hook); `None` in
    /// production.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Certify results end to end (on by default): every SAT answer is
    /// model-checked at the term level, every UNSAT answer's clausal
    /// proof is replayed by an independent checker, and the synthesized
    /// control is differentially re-verified on the concrete interpreter
    /// against the golden model. Disable for raw-throughput runs
    /// (benchmarks) where the certificate is not consumed.
    pub certify: bool,
    /// Fresh concrete traces sampled per instruction during differential
    /// re-verification (0 skips the differential pass but keeps query
    /// certification).
    pub differential_samples: usize,
    /// PRNG seed for differential trace sampling, so certified runs are
    /// reproducible.
    pub differential_seed: u64,
    /// Simplify every query's term graph by bounded equality saturation
    /// before bit-blasting (on by default; see
    /// [`owl_smt::SolverConfig::simplify`]). Per-query node counts and
    /// CNF sizes land in each instruction's [`QueryLog`] either way, so
    /// the effect is observable in benchmarks.
    pub simplify: bool,
    /// Incremental CEGIS (on by default): each attempt's synthesis
    /// queries run on one persistent [`owl_smt::SolveSession`] — learned
    /// clauses survive across refinement rounds and already-blasted
    /// constraints are never re-encoded — and verification answers are
    /// memoized by content digest. Purely a performance knob: the
    /// solutions, outcomes and certificate are byte-identical with the
    /// flag on or off (only the reuse provenance counters in
    /// [`SynthesisStats`]/[`QueryLog`] differ), so it is deliberately
    /// excluded from journal and cache fingerprints.
    pub incremental: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            mode: SynthesisMode::PerInstruction,
            max_cex_rounds: 256,
            conflict_budget: None,
            time_budget: None,
            decision_budget: None,
            propagation_budget: None,
            memory_budget: None,
            stall_timeout: None,
            cancel: CancelFlag::new(),
            max_escalations: 3,
            fault_plan: None,
            certify: true,
            differential_samples: 2,
            differential_seed: 0xC0FFEE,
            simplify: true,
            incremental: true,
        }
    }
}

impl SynthesisConfig {
    /// A typed builder over the default configuration — the preferred
    /// spelling for call sites that tweak a few knobs:
    ///
    /// ```ignore
    /// let config = SynthesisConfig::builder()
    ///     .time_budget(Duration::from_secs(30))
    ///     .certify(false)
    ///     .build();
    /// ```
    pub fn builder() -> SynthesisConfigBuilder {
        SynthesisConfigBuilder { config: SynthesisConfig::default() }
    }

    /// The run-wide budget: deadline from `time_budget`, per-call work
    /// limits, the shared cancel flag and the fault plan.
    pub(crate) fn run_budget(&self, start: Instant) -> Budget {
        let mut budget = Budget::unlimited()
            .with_conflicts(self.conflict_budget)
            .with_decisions(self.decision_budget)
            .with_propagations(self.propagation_budget)
            .with_memory(self.memory_budget)
            .with_cancel(self.cancel.clone());
        if let Some(limit) = self.time_budget {
            budget = budget.with_deadline(start + limit);
        }
        if let Some(plan) = &self.fault_plan {
            budget = budget.with_fault_plan(plan.clone());
        }
        budget
    }

    /// The conflict limit for escalation `step` of the ladder:
    /// `conflict_budget * 2^step`, saturating.
    pub(crate) fn escalated_conflicts(&self, step: u32) -> Option<u64> {
        self.conflict_budget.map(|c| c.saturating_mul(1u64 << step.min(32)))
    }
}

/// Builder for [`SynthesisConfig`], created by
/// [`SynthesisConfig::builder`]. Every setter consumes and returns the
/// builder; [`build`](SynthesisConfigBuilder::build) yields the config.
#[derive(Debug, Clone)]
#[must_use = "call `.build()` to obtain the `SynthesisConfig`"]
pub struct SynthesisConfigBuilder {
    config: SynthesisConfig,
}

impl SynthesisConfigBuilder {
    /// Problem decomposition (default: per-instruction).
    pub fn mode(mut self, mode: SynthesisMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Maximum CEGIS refinement rounds per query.
    pub fn max_cex_rounds(mut self, rounds: usize) -> Self {
        self.config.max_cex_rounds = rounds;
        self
    }

    /// SAT conflict budget per solver call (the escalation-ladder base).
    pub fn conflict_budget(mut self, conflicts: impl Into<Option<u64>>) -> Self {
        self.config.conflict_budget = conflicts.into();
        self
    }

    /// Wall-clock budget for the whole run.
    pub fn time_budget(mut self, limit: impl Into<Option<Duration>>) -> Self {
        self.config.time_budget = limit.into();
        self
    }

    /// SAT decision limit per solver call.
    pub fn decision_budget(mut self, decisions: impl Into<Option<u64>>) -> Self {
        self.config.decision_budget = decisions.into();
        self
    }

    /// SAT propagation limit per solver call.
    pub fn propagation_budget(mut self, propagations: impl Into<Option<u64>>) -> Self {
        self.config.propagation_budget = propagations.into();
        self
    }

    /// Learned-clause memory ceiling per solver call, in bytes
    /// (default: none).
    pub fn memory_budget(mut self, bytes: impl Into<Option<u64>>) -> Self {
        self.config.memory_budget = bytes.into();
        self
    }

    /// Watchdog stall timeout for the parallel scheduler (default:
    /// none — the watchdog is off).
    pub fn stall_timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.config.stall_timeout = timeout.into();
        self
    }

    /// Shared cancellation flag for cooperative interruption.
    pub fn cancel(mut self, cancel: CancelFlag) -> Self {
        self.config.cancel = cancel;
        self
    }

    /// Conflict-budget escalation retries before an instruction fails.
    pub fn max_escalations(mut self, retries: u32) -> Self {
        self.config.max_escalations = retries;
        self
    }

    /// Deterministic fault-injection plan (testing hook).
    pub fn fault_plan(mut self, plan: impl Into<Option<Arc<FaultPlan>>>) -> Self {
        self.config.fault_plan = plan.into();
        self
    }

    /// End-to-end certification of every answer (default: on).
    pub fn certify(mut self, certify: bool) -> Self {
        self.config.certify = certify;
        self
    }

    /// Fresh differential traces sampled per instruction (0 disables
    /// the differential pass).
    pub fn differential_samples(mut self, samples: usize) -> Self {
        self.config.differential_samples = samples;
        self
    }

    /// PRNG seed for differential trace sampling.
    pub fn differential_seed(mut self, seed: u64) -> Self {
        self.config.differential_seed = seed;
        self
    }

    /// Equality-saturation simplification before bit-blasting
    /// (default: on).
    pub fn simplify(mut self, simplify: bool) -> Self {
        self.config.simplify = simplify;
        self
    }

    /// Incremental CEGIS: persistent solver sessions with clause
    /// retention and memoized bit-blasting (default: on). Results are
    /// identical either way; off re-solves every round from scratch.
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.config.incremental = incremental;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> SynthesisConfig {
        self.config
    }
}

/// Statistics from a synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SynthesisStats {
    /// Total CEGIS refinement rounds (counterexamples seen).
    pub cex_rounds: usize,
    /// Total solver invocations.
    pub solver_calls: usize,
    /// Instructions whose previous solutions were reused unchanged
    /// (incremental re-synthesis only).
    pub reused: usize,
    /// Conflict-budget escalation retries performed.
    pub escalations: usize,
    /// Instructions restored from a journal instead of re-solved
    /// (resumed sessions only). Like `elapsed`, this is provenance, not
    /// output: it is excluded from the byte-identical-resume contract.
    pub replayed: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Term-graph nodes across all queries before eqsat simplification.
    pub terms_before: usize,
    /// Term-graph nodes across all queries after simplification (equal
    /// to `terms_before` when [`SynthesisConfig::simplify`] is off).
    pub terms_after: usize,
    /// CNF variables created by bit-blasting, summed over all queries.
    pub cnf_vars: usize,
    /// CNF clauses created by bit-blasting, summed over all queries.
    pub cnf_clauses: usize,
    /// Learned clauses retained across warm incremental solver rounds,
    /// summed over all queries. Like `elapsed`, the reuse counters are
    /// provenance, not output: they are excluded from the
    /// byte-identical-output contract (they are 0 when
    /// [`SynthesisConfig::incremental`] is off).
    pub clauses_retained: usize,
    /// Bit-blast memo hits: constraints or whole verification queries
    /// whose CNF was reused instead of re-encoded.
    pub blast_cache_hits: usize,
    /// Queries answered on a warm persistent solver session.
    pub incremental_rounds: usize,
    /// Synthesis-cache behaviour for this run (hits are *verified*
    /// hits). Like `elapsed` and `replayed`, this is provenance, not
    /// output: it is excluded from the byte-identical-output contract.
    pub cache: owl_cache::CacheStats,
}

impl owl_trace::Report for SynthesisStats {
    fn report(&self) -> owl_trace::Section {
        owl_trace::Section::new()
            .with("cex_rounds", self.cex_rounds)
            .with("solver_calls", self.solver_calls)
            .with("reused", self.reused)
            .with("escalations", self.escalations)
            .with("replayed", self.replayed)
            .with("elapsed_secs", self.elapsed.as_secs_f64())
            .with("terms_before", self.terms_before)
            .with("terms_after", self.terms_after)
            .with("cnf_vars", self.cnf_vars)
            .with("cnf_clauses", self.cnf_clauses)
            .with("clauses_retained", self.clauses_retained)
            .with("blast_cache_hits", self.blast_cache_hits)
            .with("incremental_rounds", self.incremental_rounds)
            .with("cache", self.cache.report())
    }
}

/// One instruction's synthesized hole assignment.
#[derive(Debug, Clone)]
pub struct InstrSolution {
    /// Instruction name.
    pub instr: String,
    /// Concrete value per hole.
    pub holes: HashMap<String, BitVec>,
}

/// How one instruction fared.
#[derive(Debug, Clone)]
pub enum InstrStatus {
    /// Synthesized fresh (or repaired from a stale seed).
    Solved,
    /// A previous solution re-verified and was reused unchanged
    /// (incremental re-synthesis only).
    Reused,
    /// The instruction failed for the given reason; later instructions
    /// were still attempted unless the reason is a global stop.
    Failed(CoreError),
    /// Never attempted: the run was interrupted (timeout/cancellation)
    /// before reaching this instruction.
    Skipped,
}

/// Per-instruction outcome of a synthesis run, in specification order.
#[derive(Debug, Clone)]
pub struct InstrOutcome {
    /// Instruction name.
    pub instr: String,
    /// What happened.
    pub status: InstrStatus,
    /// Conflict-budget escalation retries this instruction needed.
    pub escalations: u32,
    /// Solver calls spent on this instruction.
    pub solver_calls: usize,
}

/// The result of a synthesis run — possibly partial.
///
/// A run no longer discards completed work on the first failure:
/// `solutions` holds every instruction solved (or reused) before the run
/// ended, `outcomes` records one typed status per instruction, and
/// `interrupted` carries the timeout/cancellation that cut the run short,
/// if any. Callers that need the historical all-or-nothing contract use
/// [`SynthesisOutput::require_complete`].
#[derive(Debug, Clone)]
pub struct SynthesisOutput {
    /// Per-instruction hole values for the solved prefix, in
    /// specification order.
    pub solutions: Vec<InstrSolution>,
    /// One outcome per specification instruction, in order.
    pub outcomes: Vec<InstrOutcome>,
    /// Run statistics.
    pub stats: SynthesisStats,
    /// The global stop (timeout or cancellation) that ended the run
    /// early, if any.
    pub interrupted: Option<CoreError>,
    /// The end-to-end certificate: per-instruction proof/model-check
    /// verdicts plus differential re-verification results. `None` when
    /// [`SynthesisConfig::certify`] is off.
    pub certificate: Option<Certificate>,
}

impl SynthesisOutput {
    /// True if every instruction was solved or reused.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.interrupted.is_none()
            && self
                .outcomes
                .iter()
                .all(|o| matches!(o.status, InstrStatus::Solved | InstrStatus::Reused))
    }

    /// The first failure of the run: the interrupting error, or the
    /// first per-instruction failure.
    #[must_use]
    pub fn first_error(&self) -> Option<&CoreError> {
        if let Some(e) = &self.interrupted {
            return Some(e);
        }
        self.outcomes.iter().find_map(|o| match &o.status {
            InstrStatus::Failed(e) => Some(e),
            _ => None,
        })
    }

    /// Converts a partial run into an error (the historical strict
    /// contract): `Ok(self)` when complete, otherwise the first failure.
    ///
    /// # Errors
    ///
    /// Returns the interrupting error or the first per-instruction
    /// failure.
    pub fn require_complete(self) -> Result<SynthesisOutput, CoreError> {
        match self.first_error() {
            Some(e) => Err(e.clone()),
            None => Ok(self),
        }
    }
}

/// The shared setup of every synthesis entry point: symbolic trace,
/// per-instruction conditions, and validated hole variables.
pub(crate) struct Prepared {
    pub(crate) all_conds: Vec<InstrConditions>,
    pub(crate) holes: Vec<(String, TermId, SymbolId)>,
}

pub(crate) fn prepare(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
) -> Result<Prepared, CoreError> {
    let trace = SymbolicEvaluator::run(mgr, design, alpha.cycles()).map_err(CoreError::from)?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(mgr);
    let mut all_conds = Vec::with_capacity(ila.instrs().len());
    for instr in ila.instrs() {
        all_conds.push(builder.instr_conditions(mgr, instr)?);
    }
    let holes = design
        .hole_names()
        .into_iter()
        .map(|name| {
            let t = *trace.holes.get(&name).ok_or_else(|| {
                CoreError::Invalid(format!("hole {name} is missing from the symbolic trace"))
            })?;
            let sym = mgr.as_var(t).ok_or_else(|| {
                CoreError::Invalid(format!(
                    "hole {name} is not a free variable in the symbolic trace"
                ))
            })?;
            Ok((name, t, sym))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(Prepared { all_conds, holes })
}

/// Maps a spent budget into the typed error, if the budget is spent.
fn stop_error(budget: &Budget, start: Instant) -> Option<CoreError> {
    budget.checkpoint().map(|r| CoreError::from_stop(r, "", start.elapsed()))
}

/// One solver call under the configured simplification and
/// certification policy: every call routes through
/// [`owl_smt::solve`], size statistics always land in `qlog`, and
/// certified runs additionally record the per-query verdict.
pub(crate) fn run_check(
    mgr: &mut TermManager,
    assertions: &[TermId],
    budget: &Budget,
    config: &SynthesisConfig,
    qlog: &mut QueryLog,
) -> SmtResult {
    let sconfig = solver_config(config);
    let outcome = solve(mgr, assertions, CheckOpts::new().with_budget(budget).with_config(sconfig));
    qlog.record_stats(&outcome.stats);
    if config.certify {
        qlog.record(&outcome.cert);
    }
    outcome.result
}

/// The per-query solver configuration derived from the synthesis knobs.
fn solver_config(config: &SynthesisConfig) -> SolverConfig {
    SolverConfig {
        simplify: config.simplify,
        certify: config.certify,
        incremental: config.incremental,
        ..SolverConfig::default()
    }
}

/// Salt for the CEGIS verification memo digests (distinct from every
/// other digest stream in the workspace).
const VERIFY_MEMO_SALT: u64 = 0xcec1_5ffe_d0_ba11;

/// A memoized *definite* verification answer: everything needed to
/// replay the query into the log without re-running the solver.
struct CachedCheck {
    /// `Some(cex)` for a Sat answer, `None` for Unsat. Unknown answers
    /// are never cached — they describe the budget, not the query.
    sat_env: Option<Env>,
    stats: QueryStats,
    cert: QueryCert,
}

/// One CEGIS verification call, memoized by content digest when
/// incremental CEGIS is on. Verification queries change with every
/// candidate, so within one attempt hits come only from duplicated
/// obligations (the monolithic encoding can produce textually identical
/// conditions) — but a hit then replays the first call's statistics and
/// certification verdict, so the query log stays identical to a
/// non-incremental run while the solver is skipped entirely.
///
/// Returns `Ok(None)` for Unsat (the obligation holds), `Ok(Some(cex))`
/// for a counterexample, and the stop reason for Unknown.
fn run_verify_check(
    mgr: &mut TermManager,
    assertions: &[TermId],
    budget: &Budget,
    config: &SynthesisConfig,
    qlog: &mut QueryLog,
    memo: &mut HashMap<u64, CachedCheck>,
) -> Result<Option<Env>, StopReason> {
    let key = config.incremental.then(|| mgr.term_digest(assertions, VERIFY_MEMO_SALT));
    if let Some(key) = key {
        if let Some(hit) = memo.get(&key) {
            qlog.record_stats(&hit.stats);
            if config.certify {
                qlog.record(&hit.cert);
            }
            qlog.blast_cache_hits += 1;
            return Ok(hit.sat_env.clone());
        }
    }
    let opts = CheckOpts::new().with_budget(budget).with_config(solver_config(config));
    let outcome = solve(mgr, assertions, opts);
    qlog.record_stats(&outcome.stats);
    if config.certify {
        qlog.record(&outcome.cert);
    }
    let answer = match outcome.result {
        SmtResult::Unsat => Ok(None),
        SmtResult::Sat(model) => Ok(Some(model.into_env())),
        SmtResult::Unknown(reason) => Err(reason),
    };
    if let (Some(key), Ok(env)) = (key, &answer) {
        memo.insert(
            key,
            CachedCheck { sat_env: env.clone(), stats: outcome.stats, cert: outcome.cert },
        );
    }
    answer
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn monolithic(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    all_conds: &[InstrConditions],
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
    stats: &mut SynthesisStats,
) -> (Vec<InstrSolution>, Vec<InstrOutcome>, Option<CoreError>, Vec<QueryLog>) {
    // Unknowns: one constant per (hole, instruction). Each original hole
    // variable is replaced by an ITE chain over the instruction
    // preconditions, then all obligations are conjoined into one query.
    let mut chain_vars: HashMap<(usize, usize), (TermId, SymbolId)> = HashMap::new();
    let mut hole_map: HashMap<SymbolId, TermId> = HashMap::new();
    for (h_idx, (hname, ht, hsym)) in holes.iter().enumerate() {
        let w = mgr.width(*ht);
        let mut chain = {
            let last = all_conds.len() - 1;
            let v = mgr.fresh_var(format!("c_{hname}_{}", all_conds[last].name), w);
            chain_vars.insert((h_idx, last), (v, mgr.as_var(v).expect("fresh var")));
            v
        };
        for (j, conds) in all_conds.iter().enumerate().rev().skip(1) {
            let v = mgr.fresh_var(format!("c_{hname}_{}", conds.name), w);
            chain_vars.insert((h_idx, j), (v, mgr.as_var(v).expect("fresh var")));
            let pre = mgr.and_many(&conds.pres);
            chain = mgr.ite(pre, v, chain);
        }
        hole_map.insert(*hsym, chain);
    }

    // Rewrite all conditions over the chained holes.
    let rewritten: Vec<InstrConditions> = all_conds
        .iter()
        .map(|c| InstrConditions {
            name: c.name.clone(),
            pres: c
                .pres
                .iter()
                .map(|&t| owl_smt::substitute_terms(mgr, t, &hole_map))
                .collect(),
            posts: c
                .posts
                .iter()
                .map(|&t| owl_smt::substitute_terms(mgr, t, &hole_map))
                .collect(),
        })
        .collect();

    // CEGIS over the chain variables.
    let unknowns: Vec<(String, TermId, SymbolId)> = chain_vars
        .iter()
        .map(|(&(h, j), &(t, s))| {
            (format!("{}@{}", holes[h].0, all_conds[j].name), t, s)
        })
        .collect();
    let initial = zero_candidate(mgr, &unknowns);
    let calls_before = stats.solver_calls;
    let mut qlog = QueryLog::default();
    // Panic isolation: the joint query has no per-instruction boundary,
    // so a panic fails every instruction with a typed internal error
    // instead of unwinding through the caller.
    let result = catch_unwind(AssertUnwindSafe(|| {
        solve_with_degradation(
            mgr,
            &unknowns,
            &rewritten,
            initial,
            "<monolithic>",
            config,
            budget,
            start,
            stats,
            &mut qlog,
        )
    }))
    .unwrap_or_else(|payload| {
        Err((
            CoreError::Internal {
                instr: "<monolithic>".to_string(),
                message: panic_message(&*payload),
            },
            0,
        ))
    });
    let calls = stats.solver_calls - calls_before;
    // The joint query's certification traffic is shared by every
    // instruction: each row carries the same log.
    let qlogs = vec![qlog; all_conds.len()];
    match result {
        Ok((solved, escalations)) => {
            // Repackage as per-instruction solutions.
            let mut solutions = Vec::with_capacity(all_conds.len());
            let mut outcomes = Vec::with_capacity(all_conds.len());
            for conds in all_conds.iter() {
                let mut map = HashMap::new();
                for (hname, ht, _) in holes.iter() {
                    let key = format!("{hname}@{}", conds.name);
                    let w = mgr.width(*ht);
                    let v = solved.get(&key).cloned().unwrap_or_else(|| BitVec::zero(w));
                    map.insert(hname.clone(), v);
                }
                solutions.push(InstrSolution { instr: conds.name.clone(), holes: map });
                outcomes.push(InstrOutcome {
                    instr: conds.name.clone(),
                    status: InstrStatus::Solved,
                    escalations,
                    solver_calls: calls,
                });
            }
            (solutions, outcomes, None, qlogs)
        }
        Err((e, escalations)) => {
            let interrupted = e.is_global_stop().then(|| e.clone());
            let outcomes = all_conds
                .iter()
                .map(|conds| InstrOutcome {
                    instr: conds.name.clone(),
                    status: InstrStatus::Failed(e.clone()),
                    escalations,
                    solver_calls: calls,
                })
                .collect();
            (Vec::new(), outcomes, interrupted, qlogs)
        }
    }
}

pub(crate) fn zero_candidate(
    mgr: &TermManager,
    holes: &[(String, TermId, SymbolId)],
) -> HashMap<String, BitVec> {
    holes
        .iter()
        .map(|(name, t, _)| (name.clone(), BitVec::zero(mgr.width(*t))))
        .collect()
}

/// Solves one set of obligations with the degradation policy wrapped
/// around [`cegis`]: attempts that fail with a *transient* error
/// ([`CoreError::class`]) are retried with a doubled conflict budget up
/// to [`SynthesisConfig::max_escalations`] times, and a failing
/// *seeded* candidate falls back to a fresh zero candidate before the
/// obligations are declared failed. Permanent errors (no solution,
/// invalid input, isolated panic) are never retried in place, and
/// neither is a watchdog stall: the per-task stall flag is latched, so
/// an in-place retry would stop again immediately — stalled work is
/// retried by the session rebalance or the service layer instead.
/// Returns the solved holes and the number of escalation retries used.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_with_degradation(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    obligations: &[InstrConditions],
    initial: HashMap<String, BitVec>,
    label: &str,
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
    stats: &mut SynthesisStats,
    qlog: &mut QueryLog,
) -> Result<(HashMap<String, BitVec>, u32), (CoreError, u32)> {
    let zero = zero_candidate(mgr, holes);
    let mut tried_zero = initial == zero;
    let mut candidate = initial;
    let mut escalations = 0u32;
    let mut step = 0u32; // escalation step within the current seed
    loop {
        let attempt_budget = budget.clone().with_conflicts(config.escalated_conflicts(step));
        let attempt = cegis(
            mgr,
            holes,
            obligations,
            candidate.clone(),
            label,
            config,
            &attempt_budget,
            start,
            stats,
            qlog,
        );
        let e = match attempt {
            Ok(solved) => return Ok((solved, escalations)),
            Err(e) => e,
        };
        match e.class() {
            // Deadline/cancellation belong to whoever set them.
            ErrorClass::GlobalStop => return Err((e, escalations)),
            // Transient exhaustion climbs the escalation ladder — but a
            // latched stall flag would re-stop the retry instantly, so
            // `Stalled` skips the in-place ladder entirely.
            ErrorClass::Transient
                if !matches!(e, CoreError::Stalled { .. }) && step < config.max_escalations =>
            {
                step += 1;
                escalations += 1;
                stats.escalations += 1;
            }
            // The seed may be steering CEGIS into a hard corner: an
            // exhausted or diverging *seeded* attempt degrades to a
            // fresh zero candidate with a reset ladder. Other permanent
            // failures (no solution, invalid input, isolated panic)
            // reproduce under any seed and are surfaced immediately.
            _ if matches!(
                e,
                CoreError::SolverExhausted { .. } | CoreError::NoConvergence { .. }
            ) && !tried_zero =>
            {
                tried_zero = true;
                candidate = zero.clone();
                step = 0;
            }
            ErrorClass::Transient | ErrorClass::Permanent => return Err((e, escalations)),
        }
    }
}

/// The CEGIS loop for one set of obligations: find hole constants such
/// that for every obligation, `∀ state. pres -> posts`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cegis(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    obligations: &[InstrConditions],
    initial: HashMap<String, BitVec>,
    label: &str,
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
    stats: &mut SynthesisStats,
    qlog: &mut QueryLog,
) -> Result<HashMap<String, BitVec>, CoreError> {
    let mut candidate = initial;
    let mut constraints: Vec<TermId> = Vec::new();
    // The synthesis-side persistent session: the accumulated constraint
    // set only ever grows, so each round re-asserts the full list and
    // the session blasts just the new suffix onto a warm solver
    // (learned clauses, variable activity and the whole CNF carry over;
    // with `config.incremental` off the session rebuilds from scratch
    // each round, producing byte-identical answers either way).
    let mut session = SolveSession::new(solver_config(config));
    // The verification-side memo: whole queries keyed by content digest.
    let mut verify_memo: HashMap<u64, CachedCheck> = HashMap::new();

    for _round in 0..config.max_cex_rounds {
        if let Some(e) = stop_error(budget, start) {
            return Err(e);
        }
        // Verification: any obligation falsifiable under the candidate?
        let cand_env = env_of(holes, &candidate);
        let mut cex: Option<Env> = None;
        for conds in obligations {
            let mut assertions: Vec<TermId> =
                conds.pres.iter().map(|&p| substitute(mgr, p, &cand_env)).collect();
            let posts: Vec<TermId> =
                conds.posts.iter().map(|&p| substitute(mgr, p, &cand_env)).collect();
            let post_conj = mgr.and_many(&posts);
            assertions.push(mgr.not(post_conj));
            stats.solver_calls += 1;
            match run_verify_check(mgr, &assertions, budget, config, qlog, &mut verify_memo) {
                Ok(None) => {}
                Ok(Some(env)) => {
                    cex = Some(env);
                    break;
                }
                Err(reason) => {
                    return Err(CoreError::from_stop(reason, label, start.elapsed()));
                }
            }
        }
        let Some(cex_env) = cex else {
            return Ok(candidate); // verified for all obligations
        };
        stats.cex_rounds += 1;

        // Refinement: the formula specialized to the counterexample
        // becomes a constraint over the holes.
        for conds in obligations {
            let pres: Vec<TermId> =
                conds.pres.iter().map(|&p| substitute(mgr, p, &cex_env)).collect();
            let posts: Vec<TermId> =
                conds.posts.iter().map(|&p| substitute(mgr, p, &cex_env)).collect();
            let pre_conj = mgr.and_many(&pres);
            let post_conj = mgr.and_many(&posts);
            let ob = mgr.implies(pre_conj, post_conj);
            if mgr.as_const(ob).is_none_or(|c| !c.is_true()) {
                constraints.push(ob);
            }
        }

        // Synthesis: find hole values satisfying all accumulated
        // constraints, on the persistent session (one warm solver call;
        // only constraints added this round are newly blasted).
        stats.solver_calls += 1;
        let outcome = session.solve(mgr, &constraints, budget);
        qlog.record_stats(&outcome.stats);
        if config.certify {
            qlog.record(&outcome.cert);
        }
        match outcome.result {
            SmtResult::Sat(model) => {
                for (name, t, sym) in holes {
                    let w = mgr.width(*t);
                    let v = model
                        .env()
                        .var(*sym)
                        .cloned()
                        .unwrap_or_else(|| BitVec::zero(w));
                    candidate.insert(name.clone(), v);
                }
            }
            SmtResult::Unsat => {
                return Err(CoreError::NoSolution { instr: label.to_string() });
            }
            SmtResult::Unknown(reason) => {
                return Err(CoreError::from_stop(reason, label, start.elapsed()));
            }
        }
    }
    Err(CoreError::NoConvergence { instr: label.to_string(), rounds: config.max_cex_rounds })
}

pub(crate) fn env_of(holes: &[(String, TermId, SymbolId)], values: &HashMap<String, BitVec>) -> Env {
    let mut env = Env::new();
    for (name, _, sym) in holes {
        if let Some(v) = values.get(name) {
            env.set_var(*sym, v.clone());
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::DatapathKind;
    use crate::session::SynthesisSession;
    use owl_ila::{Instr, SpecExpr};
    use owl_smt::Fault;

    // Test-local adapters over the session API: the whole suite
    // exercises the session path through these terse spellings.
    fn synthesize(
        mgr: &mut TermManager,
        design: &Design,
        ila: &Ila,
        alpha: &AbstractionFn,
        config: &SynthesisConfig,
    ) -> Result<SynthesisOutput, CoreError> {
        SynthesisSession::new(design, ila, alpha).config(config.clone()).run_with(mgr)
    }

    fn resynthesize(
        mgr: &mut TermManager,
        design: &Design,
        ila: &Ila,
        alpha: &AbstractionFn,
        config: &SynthesisConfig,
        previous: &[InstrSolution],
    ) -> Result<SynthesisOutput, CoreError> {
        SynthesisSession::new(design, ila, alpha)
            .config(config.clone())
            .seeded_with(previous)
            .run_with(mgr)
    }

    #[test]
    fn error_classification_partitions_every_variant() {
        use std::time::Duration;
        let cases = [
            (CoreError::Timeout { elapsed: Duration::from_secs(1) }, ErrorClass::GlobalStop),
            (CoreError::Cancelled, ErrorClass::GlobalStop),
            (CoreError::SolverExhausted { instr: "i".into() }, ErrorClass::Transient),
            (CoreError::Stalled { instr: "i".into() }, ErrorClass::Transient),
            (CoreError::NoSolution { instr: "i".into() }, ErrorClass::Permanent),
            (CoreError::NoConvergence { instr: "i".into(), rounds: 4 }, ErrorClass::Permanent),
            (CoreError::Invalid("bad".into()), ErrorClass::Permanent),
            (
                CoreError::Internal { instr: "i".into(), message: "boom".into() },
                ErrorClass::Permanent,
            ),
        ];
        for (err, class) in cases {
            assert_eq!(err.class(), class, "classification of {err:?}");
            // GlobalStop must stay in lock-step with is_global_stop(),
            // which the run loop uses to latch `interrupted`.
            assert_eq!(err.class() == ErrorClass::GlobalStop, err.is_global_stop());
        }
    }

    /// Spec: acc' = acc + val when go; acc' = 0 when rst (rst wins by
    /// disjoint decodes). Sketch: two holes select add-enable and reset.
    fn setup() -> (Ila, Design, AbstractionFn) {
        let mut ila = Ila::new("m");
        let go = ila.new_bv_input("go", 1);
        let rst = ila.new_bv_input("rst", 1);
        let val = ila.new_bv_input("val", 8);
        let acc = ila.new_bv_state("acc", 8);
        let mut i1 = Instr::new("ACCUM");
        i1.set_decode(
            go.clone()
                .eq(SpecExpr::const_u64(1, 1))
                .and(rst.clone().eq(SpecExpr::const_u64(1, 0))),
        );
        i1.set_update("acc", acc.clone().add(val));
        ila.add_instr(i1);
        let mut i2 = Instr::new("RESET");
        i2.set_decode(rst.eq(SpecExpr::const_u64(1, 1)));
        i2.set_update("acc", SpecExpr::const_u64(8, 0));
        ila.add_instr(i2);

        // Sketch: acc := if clear then 0 else (if en then acc + val else acc)
        let d: Design = "design dp\ninput go 1\ninput rst 1\ninput val 8\n\
                         hole clear 1\nhole en 1\nregister acc 8\n\
                         acc := if clear then 8'x00 else if en then acc + val else acc\n\
                         end\n"
            .parse()
            .unwrap();

        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map_input("rst", "rst");
        alpha.map_input("val", "val");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        (ila, d, alpha)
    }

    /// A two-instruction spec whose second instruction is impossible on
    /// the [`setup`] sketch (acc' = acc * 3 needs a multiplier).
    fn setup_with_impossible_second() -> (Ila, Design, AbstractionFn) {
        let (_, d, alpha) = setup();
        let mut ila = Ila::new("mixed");
        let go = ila.new_bv_input("go", 1);
        let rst = ila.new_bv_input("rst", 1);
        let val = ila.new_bv_input("val", 8);
        let acc = ila.new_bv_state("acc", 8);
        let mut ok = Instr::new("ACCUM");
        ok.set_decode(
            go.eq(SpecExpr::const_u64(1, 1)).and(rst.clone().eq(SpecExpr::const_u64(1, 0))),
        );
        ok.set_update("acc", acc.clone().add(val));
        ila.add_instr(ok);
        let mut bad = Instr::new("TRIPLE");
        bad.set_decode(rst.eq(SpecExpr::const_u64(1, 1)));
        bad.set_update("acc", acc.mul(SpecExpr::const_u64(8, 3)));
        ila.add_instr(bad);
        (ila, d, alpha)
    }

    #[test]
    fn per_instruction_synthesis_finds_controls() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.solutions.len(), 2);
        let accum = &out.solutions[0];
        assert_eq!(accum.instr, "ACCUM");
        assert_eq!(accum.holes["clear"].to_u64(), Some(0));
        assert_eq!(accum.holes["en"].to_u64(), Some(1));
        let reset = &out.solutions[1];
        assert_eq!(reset.holes["clear"].to_u64(), Some(1));
        assert!(out.stats.solver_calls > 0);
        assert!(out
            .outcomes
            .iter()
            .all(|o| matches!(o.status, InstrStatus::Solved)));
    }

    #[test]
    fn monolithic_synthesis_agrees() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let config = SynthesisConfig::builder().mode(SynthesisMode::Monolithic).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.solutions.len(), 2);
        assert_eq!(out.solutions[0].holes["clear"].to_u64(), Some(0));
        assert_eq!(out.solutions[0].holes["en"].to_u64(), Some(1));
        assert_eq!(out.solutions[1].holes["clear"].to_u64(), Some(1));
    }

    #[test]
    fn impossible_spec_reports_no_solution() {
        // Spec wants acc' = acc * 3 but the sketch can only add val or clear.
        let mut ila = Ila::new("bad");
        let go = ila.new_bv_input("go", 1);
        ila.new_bv_input("rst", 1);
        ila.new_bv_input("val", 8);
        let acc2 = ila.new_bv_state("acc", 8);
        let mut i = Instr::new("TRIPLE");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        let three = SpecExpr::const_u64(8, 3);
        i.set_update("acc", acc2.mul(three));
        ila.add_instr(i);

        let (_, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        assert!(!out.is_complete());
        let err = out.require_complete().unwrap_err();
        assert!(matches!(err, CoreError::NoSolution { ref instr } if instr == "TRIPLE"));
        assert!(err.to_string().contains("TRIPLE"));
    }

    #[test]
    fn partial_prefix_survives_a_failing_instruction() {
        let (ila, d, alpha) = setup_with_impossible_second();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        // ACCUM's solution is kept even though TRIPLE is unimplementable.
        assert!(!out.is_complete());
        assert!(out.interrupted.is_none(), "a semantic failure is not a global stop");
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0].instr, "ACCUM");
        assert!(matches!(out.outcomes[0].status, InstrStatus::Solved));
        assert!(matches!(
            out.outcomes[1].status,
            InstrStatus::Failed(CoreError::NoSolution { .. })
        ));
    }

    #[test]
    fn resynthesis_reuses_valid_solutions() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        // Re-synthesize against the unchanged design: everything reuses.
        let mut mgr2 = TermManager::new();
        let again = resynthesize(
            &mut mgr2,
            &d,
            &ila,
            &alpha,
            &SynthesisConfig::default(),
            &out.solutions,
        )
        .unwrap();
        assert_eq!(again.stats.reused, 2);
        assert_eq!(again.stats.cex_rounds, 0);
        assert_eq!(again.solutions[0].holes, out.solutions[0].holes);
        assert!(again
            .outcomes
            .iter()
            .all(|o| matches!(o.status, InstrStatus::Reused)));
    }

    #[test]
    fn resynthesis_repairs_stale_solutions() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let mut out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        // Corrupt one previous solution; re-synthesis must repair it.
        out.solutions[0].holes.insert("en".to_string(), BitVec::zero(1));
        out.solutions[0].holes.insert("clear".to_string(), BitVec::from_u64(1, 1));
        let mut mgr2 = TermManager::new();
        let again = resynthesize(
            &mut mgr2,
            &d,
            &ila,
            &alpha,
            &SynthesisConfig::default(),
            &out.solutions,
        )
        .unwrap();
        assert_eq!(again.stats.reused, 1); // only RESET reuses
        assert_eq!(again.solutions[0].holes["en"].to_u64(), Some(1));
        assert_eq!(again.solutions[0].holes["clear"].to_u64(), Some(0));
        assert!(matches!(again.outcomes[0].status, InstrStatus::Solved));
    }

    #[test]
    fn time_budget_enforced() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let config = SynthesisConfig::builder().time_budget(Duration::from_nanos(1)).build();
        // With a 1ns budget the run stops before the first instruction:
        // everything is skipped and the interrupt is a typed timeout.
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(matches!(out.interrupted, Some(CoreError::Timeout { .. })));
        assert!(out.solutions.is_empty());
        assert!(out
            .outcomes
            .iter()
            .all(|o| matches!(o.status, InstrStatus::Skipped)));
        let err = out.require_complete().unwrap_err();
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn timeout_fires_mid_query() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        // The first solver call stalls for 200ms against a 30ms budget:
        // the deadline must fire *inside* that call, not after it runs to
        // its natural end, and the outcome must be a typed timeout.
        let plan = Arc::new(FaultPlan::new().at(0, Fault::StallMillis(200)));
        let config = SynthesisConfig::builder()
            .time_budget(Duration::from_millis(30))
            .fault_plan(plan)
            .build();
        let start = Instant::now();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(matches!(out.interrupted, Some(CoreError::Timeout { .. })));
        // The first instruction was in flight (not skipped): the timeout
        // was observed mid-query.
        assert!(out.stats.solver_calls >= 1);
        assert!(matches!(
            out.outcomes[0].status,
            InstrStatus::Failed(CoreError::Timeout { .. })
        ));
        assert!(matches!(out.outcomes[1].status, InstrStatus::Skipped));
    }

    #[test]
    fn mid_run_timeout_returns_solved_prefix() {
        let (ila, d, alpha) = setup();
        // Probe run: how many solver calls does ACCUM (instruction 1)
        // need? The solver is deterministic, so the timed run below uses
        // the same count.
        let mut ila1 = Ila::new("probe");
        let go = ila1.new_bv_input("go", 1);
        let rst = ila1.new_bv_input("rst", 1);
        let val = ila1.new_bv_input("val", 8);
        let acc = ila1.new_bv_state("acc", 8);
        let mut i1 = Instr::new("ACCUM");
        i1.set_decode(
            go.eq(SpecExpr::const_u64(1, 1)).and(rst.eq(SpecExpr::const_u64(1, 0))),
        );
        i1.set_update("acc", acc.add(val));
        ila1.add_instr(i1);
        let mut mgr_probe = TermManager::new();
        let probe =
            synthesize(&mut mgr_probe, &d, &ila1, &alpha, &SynthesisConfig::default())
                .unwrap();
        assert!(probe.is_complete());
        let accum_calls = probe.outcomes[0].solver_calls as u64;

        // Timed run: stall RESET's first solver call past the deadline.
        let plan =
            Arc::new(FaultPlan::new().at(accum_calls, Fault::StallMillis(200)));
        let config = SynthesisConfig::builder()
            .time_budget(Duration::from_millis(60))
            .fault_plan(plan)
            .build();
        let mut mgr = TermManager::new();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(matches!(out.interrupted, Some(CoreError::Timeout { .. })));
        // The already-solved prefix (ACCUM) is returned.
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0].instr, "ACCUM");
        assert!(matches!(out.outcomes[0].status, InstrStatus::Solved));
        assert!(matches!(
            out.outcomes[1].status,
            InstrStatus::Failed(CoreError::Timeout { .. })
        ));
    }

    #[test]
    fn cancellation_stops_the_run() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let config = SynthesisConfig::default();
        config.cancel.cancel();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(matches!(out.interrupted, Some(CoreError::Cancelled)));
        assert!(out.solutions.is_empty());
    }

    #[test]
    fn cancellation_stops_a_long_monolithic_query() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        // The monolithic query stalls for 300ms; a controller thread
        // cancels after 20ms, which the stalled call observes on resume.
        let plan = Arc::new(FaultPlan::new().at(0, Fault::StallMillis(300)));
        let config = SynthesisConfig::builder()
            .mode(SynthesisMode::Monolithic)
            .fault_plan(plan)
            .build();
        let cancel = config.cancel.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cancel.cancel();
        });
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        canceller.join().unwrap();
        assert!(matches!(out.interrupted, Some(CoreError::Cancelled)));
        assert!(out.solutions.is_empty());
        assert!(out
            .outcomes
            .iter()
            .all(|o| matches!(o.status, InstrStatus::Failed(CoreError::Cancelled))));
    }

    #[test]
    fn escalation_recovers_from_injected_unknown() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        // The first solver call is forced to Unknown; the escalation
        // retry re-runs the query (fault indices advance) and succeeds.
        let plan = Arc::new(FaultPlan::new().at(0, Fault::ForceUnknown));
        let config = SynthesisConfig::builder().fault_plan(plan).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(out.is_complete(), "{:?}", out.first_error());
        assert!(out.stats.escalations >= 1);
        assert!(out.outcomes[0].escalations >= 1);
    }

    #[test]
    fn escalation_recovers_from_exhausted_conflict_budget() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        // 100 phantom conflicts against a base budget of 4: the first
        // call exhausts its limit; the doubled retry (a fresh call with
        // no fault) succeeds.
        let plan = Arc::new(FaultPlan::new().at(0, Fault::DelayConflicts(100)));
        let config =
            SynthesisConfig::builder().conflict_budget(4).fault_plan(plan).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(out.is_complete(), "{:?}", out.first_error());
        assert!(out.stats.escalations >= 1);
    }

    #[test]
    fn exhausted_escalation_ladder_reports_solver_exhausted() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        // Every call is forced to Unknown, so no amount of escalation
        // helps; the instruction must fail with a typed exhaustion error
        // and the run must still attempt the second instruction.
        let plan = Arc::new(
            (0..64).fold(FaultPlan::new(), |p, i| p.at(i, Fault::ForceUnknown)),
        );
        let config =
            SynthesisConfig::builder().max_escalations(2).fault_plan(plan).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(!out.is_complete());
        assert!(out.interrupted.is_none());
        assert!(matches!(
            out.outcomes[0].status,
            InstrStatus::Failed(CoreError::SolverExhausted { .. })
        ));
        assert!(matches!(
            out.outcomes[1].status,
            InstrStatus::Failed(CoreError::SolverExhausted { .. })
        ));
    }

    #[test]
    fn seeded_fault_plan_runs_to_completion_or_typed_failure() {
        // Smoke-test the seed-driven harness: whatever faults fire, the
        // result is a well-formed output, never a panic.
        let (ila, d, alpha) = setup();
        for seed in 0..4u64 {
            let mut mgr = TermManager::new();
            let config = SynthesisConfig::builder()
                .conflict_budget(1_000)
                .fault_plan(Arc::new(FaultPlan::seeded(seed, 3)))
                .build();
            let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
            assert_eq!(out.outcomes.len(), 2);
            if !out.is_complete() {
                assert!(out.first_error().is_some());
            }
        }
    }

    #[test]
    fn panic_fault_is_isolated_per_instruction() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        // The first solver call panics inside the CDCL loop. The panic
        // must be absorbed at the instruction boundary as a typed
        // internal error, and the second instruction must still solve.
        let plan = Arc::new(FaultPlan::new().at(0, Fault::Panic));
        let config = SynthesisConfig::builder().fault_plan(plan).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        match &out.outcomes[0].status {
            InstrStatus::Failed(CoreError::Internal { message, .. }) => {
                // The original panic text must survive the unwind (the
                // payload is behind a Box — downcast the contents, not
                // the box).
                assert!(message.contains("injected fault"), "lost panic text: {message}");
            }
            other => panic!("expected an isolated internal error, got {other:?}"),
        }
        assert!(matches!(out.outcomes[1].status, InstrStatus::Solved));
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0].instr, "RESET");
        assert!(out.interrupted.is_none(), "a panic is not a global stop");
        let err = out.first_error().unwrap();
        assert!(err.to_string().contains("internal error"));
    }

    #[test]
    fn panic_fault_is_isolated_in_resynthesis() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let mut out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        // Corrupt ACCUM's seed so its re-verification actually reaches
        // the SAT solver (a valid seed's query folds away structurally),
        // then panic that first solver call: the isolation boundary
        // covers seed verification too, and RESET still reuses.
        out.solutions[0].holes.insert("en".to_string(), BitVec::zero(1));
        out.solutions[0].holes.insert("clear".to_string(), BitVec::from_u64(1, 1));
        let plan = Arc::new(FaultPlan::new().at(0, Fault::Panic));
        let config = SynthesisConfig::builder().fault_plan(plan).build();
        let mut mgr2 = TermManager::new();
        let again =
            resynthesize(&mut mgr2, &d, &ila, &alpha, &config, &out.solutions).unwrap();
        assert!(matches!(
            again.outcomes[0].status,
            InstrStatus::Failed(CoreError::Internal { .. })
        ));
        assert!(matches!(again.outcomes[1].status, InstrStatus::Reused));
    }

    #[test]
    fn certified_run_produces_a_full_certificate() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        assert!(out.is_complete());
        let cert = out.certificate.as_ref().expect("certification is on by default");
        assert!(cert.is_fully_certified(), "{cert}");
        for entry in &cert.instrs {
            assert!(entry.queries.total() > 0, "{}: no queries certified", entry.instr);
            assert!(entry.solver.is_passed());
            assert!(
                entry.differential.is_passed(),
                "{}: differential {}",
                entry.instr,
                entry.differential
            );
        }
    }

    #[test]
    fn certification_can_be_disabled() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let config = SynthesisConfig::builder().certify(false).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(out.is_complete());
        assert!(out.certificate.is_none());
    }

    #[test]
    fn corrupt_proof_flips_the_certificate_without_panicking() {
        // A spec whose final CEGIS verification is a *search-requiring*
        // UNSAT: the sketch computes acc + val but the spec writes the
        // two's-complement rewriting acc - ~val - 1, so the equality is
        // semantic rather than structural and the solver must learn
        // clauses to refute its negation. Corrupting the clausal proof
        // log of every call makes that UNSAT answer carry a bogus proof,
        // which the independent checker rejects: the run still
        // completes, only the certificate flips.
        let mut ila = Ila::new("comm");
        let go = ila.new_bv_input("go", 1);
        ila.new_bv_input("rst", 1);
        let val = ila.new_bv_input("val", 8);
        let acc = ila.new_bv_state("acc", 8);
        let mut i = Instr::new("ACCUM");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        i.set_update("acc", acc.sub(val.not()).sub(SpecExpr::const_u64(8, 1)));
        ila.add_instr(i);
        let (_, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let plan = Arc::new(
            (0..256).fold(FaultPlan::new(), |p, i| p.at(i, Fault::CorruptProof)),
        );
        let config = SynthesisConfig::builder().fault_plan(plan).build();
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert!(out.is_complete(), "proof corruption garbles the log, not the answers");
        let cert = out.certificate.as_ref().unwrap();
        assert!(!cert.is_fully_certified(), "{cert}");
        assert!(
            cert.instrs.iter().any(|c| c.solver.is_failed()),
            "a corrupted proof must flip at least one solver verdict: {cert}"
        );
    }

    #[test]
    fn certified_resynthesis_attaches_a_certificate() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        let mut mgr2 = TermManager::new();
        let again = resynthesize(
            &mut mgr2,
            &d,
            &ila,
            &alpha,
            &SynthesisConfig::default(),
            &out.solutions,
        )
        .unwrap();
        let cert = again.certificate.as_ref().expect("certification is on by default");
        assert!(cert.is_fully_certified(), "{cert}");
        // Reused instructions are certified too: the reuse verification
        // query is itself certified (trivially, when the substituted
        // postcondition folds away structurally).
        assert!(cert.instrs.iter().all(|c| c.queries.total() >= 1), "{cert}");
    }

    #[test]
    fn parallel_output_is_thread_count_invariant() {
        let (ila, d, alpha) = setup();
        let runs: Vec<SynthesisOutput> = [1usize, 2, 8]
            .iter()
            .map(|&p| SynthesisSession::new(&d, &ila, &alpha).parallelism(p).run().unwrap())
            .collect();
        let reference = &runs[0];
        assert!(reference.is_complete());
        for out in &runs[1..] {
            assert_eq!(out.solutions.len(), reference.solutions.len());
            for (a, b) in out.solutions.iter().zip(&reference.solutions) {
                assert_eq!(a.instr, b.instr);
                assert_eq!(a.holes, b.holes);
            }
            assert_eq!(format!("{:?}", out.outcomes), format!("{:?}", reference.outcomes));
            assert_eq!(out.stats.solver_calls, reference.stats.solver_calls);
            assert_eq!(out.stats.cex_rounds, reference.stats.cex_rounds);
            assert_eq!(out.stats.escalations, reference.stats.escalations);
            assert_eq!(out.stats.cnf_clauses, reference.stats.cnf_clauses);
            assert_eq!(
                out.certificate.as_ref().unwrap().to_string(),
                reference.certificate.as_ref().unwrap().to_string()
            );
        }
    }

    #[test]
    fn parallel_run_isolates_a_failing_instruction() {
        let (ila, d, alpha) = setup_with_impossible_second();
        let out = SynthesisSession::new(&d, &ila, &alpha).parallelism(2).run().unwrap();
        assert!(!out.is_complete());
        assert!(out.interrupted.is_none());
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0].instr, "ACCUM");
        assert!(matches!(
            out.outcomes[1].status,
            InstrStatus::Failed(CoreError::NoSolution { .. })
        ));
    }

    #[test]
    fn rebalance_donates_leftover_quota_to_a_straggler() {
        let (ila, d, alpha) = setup();
        // Probe: how many solver calls does ACCUM alone need? (The
        // solver is deterministic, and at parallelism(1) the scheduler
        // runs tasks in specification order, so RESET's first call in
        // the governed run below sits at exactly this global index.)
        let mut ila1 = Ila::new("probe");
        let go = ila1.new_bv_input("go", 1);
        let rst = ila1.new_bv_input("rst", 1);
        let val = ila1.new_bv_input("val", 8);
        let acc = ila1.new_bv_state("acc", 8);
        let mut i1 = Instr::new("ACCUM");
        i1.set_decode(
            go.eq(SpecExpr::const_u64(1, 1)).and(rst.eq(SpecExpr::const_u64(1, 0))),
        );
        i1.set_update("acc", acc.add(val));
        ila1.add_instr(i1);
        let probe_config = SynthesisConfig::builder().certify(false).build();
        let probe = SynthesisSession::new(&d, &ila1, &alpha)
            .config(probe_config)
            .run()
            .unwrap();
        assert!(probe.is_complete());
        let accum_calls = probe.outcomes[0].solver_calls as u64;

        // Governed run: RESET's first call swallows 200 phantom
        // conflicts against a base quota of 150 with *no* escalation
        // ladder, so phase 1 leaves it SolverExhausted. ACCUM solved
        // under its base quota, so phase 2 donates ACCUM's 150 into the
        // boosted retry — a fresh call past the faulted index — which
        // succeeds.
        let plan = Arc::new(FaultPlan::new().at(accum_calls, Fault::DelayConflicts(200)));
        let config = SynthesisConfig::builder()
            .conflict_budget(150)
            .max_escalations(0)
            .fault_plan(plan)
            .certify(false)
            .build();
        let out = SynthesisSession::new(&d, &ila, &alpha).config(config).run().unwrap();
        assert!(out.is_complete(), "{:?}", out.first_error());
        assert!(matches!(out.outcomes[1].status, InstrStatus::Solved));
        assert!(
            out.outcomes[1].escalations >= 1,
            "the straggler's boosted retry must be recorded as an escalation"
        );
        assert_eq!(out.outcomes[0].escalations, 0, "the donor never escalated");
    }
}
