//! The CEGIS synthesis engine (paper §3.3).
//!
//! Per-instruction mode implements the instruction-independence
//! optimization of §3.3.1: each instruction's `∃ holes ∀ state` problem is
//! solved separately (with the previous instruction's solution used as the
//! first candidate, which keeps shared encodings — FSM states — consistent
//! across instructions whenever possible), and the per-instruction
//! constants are later joined by the control union ⊔.
//!
//! Monolithic mode is the Equation (1) baseline: every hole is replaced by
//! a symbolic if-then-else chain over all instruction preconditions and a
//! single ∀ query conjoins every instruction's obligation — the
//! formulation whose solve times explode (Table 1's † rows).

use crate::abstraction::AbstractionFn;
use crate::conditions::{ConditionBuilder, InstrConditions};
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::Ila;
use owl_oyster::{Design, SymbolicEvaluator, SymbolicTrace};
use owl_smt::{check, substitute, Env, SmtResult, SymbolId, TermId, TermManager};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How to decompose the synthesis problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthesisMode {
    /// Solve each instruction independently and union the results
    /// (requires instruction independence; the paper's optimization).
    #[default]
    PerInstruction,
    /// One joint query over all instructions (Equation (1) as written).
    Monolithic,
}

/// Tuning knobs for the synthesis engine.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Problem decomposition.
    pub mode: SynthesisMode,
    /// Maximum CEGIS refinement rounds per query before giving up.
    pub max_cex_rounds: usize,
    /// Optional SAT conflict budget per solver call.
    pub conflict_budget: Option<u64>,
    /// Optional wall-clock budget for the whole synthesis run.
    pub time_budget: Option<Duration>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            mode: SynthesisMode::PerInstruction,
            max_cex_rounds: 256,
            conflict_budget: None,
            time_budget: None,
        }
    }
}

/// Statistics from a synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SynthesisStats {
    /// Total CEGIS refinement rounds (counterexamples seen).
    pub cex_rounds: usize,
    /// Total solver invocations.
    pub solver_calls: usize,
    /// Instructions whose previous solutions were reused unchanged
    /// (incremental re-synthesis only).
    pub reused: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One instruction's synthesized hole assignment.
#[derive(Debug, Clone)]
pub struct InstrSolution {
    /// Instruction name.
    pub instr: String,
    /// Concrete value per hole.
    pub holes: HashMap<String, BitVec>,
}

/// The result of a successful synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutput {
    /// Per-instruction hole values, in specification order.
    pub solutions: Vec<InstrSolution>,
    /// Run statistics.
    pub stats: SynthesisStats,
}

/// Synthesizes control logic for `design`'s holes against `ila` via
/// `alpha`, returning per-instruction hole constants.
///
/// # Errors
///
/// Returns an error if inputs fail validation, no hole assignment exists
/// for some instruction (the datapath cannot implement the
/// specification), or a budget is exhausted.
pub fn synthesize(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    config: &SynthesisConfig,
) -> Result<SynthesisOutput, CoreError> {
    let start = Instant::now();
    let trace = SymbolicEvaluator::run(mgr, design, alpha.cycles()).map_err(CoreError::from)?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(mgr);
    let mut all_conds = Vec::with_capacity(ila.instrs().len());
    for instr in ila.instrs() {
        all_conds.push(builder.instr_conditions(mgr, instr)?);
    }
    let holes: Vec<(String, TermId, SymbolId)> = design
        .hole_names()
        .into_iter()
        .map(|name| {
            let t = trace.holes[&name];
            let sym = mgr.as_var(t).expect("holes are variables");
            (name, t, sym)
        })
        .collect();

    let mut stats = SynthesisStats::default();
    let solutions = match config.mode {
        SynthesisMode::PerInstruction => {
            per_instruction(mgr, &holes, &all_conds, config, start, &mut stats)?
        }
        SynthesisMode::Monolithic => {
            monolithic(mgr, &holes, &all_conds, &trace, config, start, &mut stats)?
        }
    };
    stats.elapsed = start.elapsed();
    Ok(SynthesisOutput { solutions, stats })
}

/// Incremental re-synthesis for agile iteration: like [`synthesize`],
/// but seeded with the solutions of a previous run (typically from an
/// earlier revision of the specification or sketch). Each previous
/// solution is first *verified* against the current design; if it still
/// holds it is reused outright, otherwise it becomes the CEGIS starting
/// candidate. Instructions with no previous solution are synthesized
/// from scratch.
///
/// # Errors
///
/// As for [`synthesize`]. Only per-instruction mode is supported.
pub fn resynthesize(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    config: &SynthesisConfig,
    previous: &[InstrSolution],
) -> Result<SynthesisOutput, CoreError> {
    if config.mode != SynthesisMode::PerInstruction {
        return Err(CoreError::new("incremental re-synthesis requires per-instruction mode"));
    }
    let start = Instant::now();
    let trace = SymbolicEvaluator::run(mgr, design, alpha.cycles()).map_err(CoreError::from)?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(mgr);
    let mut all_conds = Vec::with_capacity(ila.instrs().len());
    for instr in ila.instrs() {
        all_conds.push(builder.instr_conditions(mgr, instr)?);
    }
    let holes: Vec<(String, TermId, SymbolId)> = design
        .hole_names()
        .into_iter()
        .map(|name| {
            let t = trace.holes[&name];
            let sym = mgr.as_var(t).expect("holes are variables");
            (name, t, sym)
        })
        .collect();

    let mut stats = SynthesisStats::default();
    let mut solutions = Vec::with_capacity(all_conds.len());
    let mut prev_carry: Option<HashMap<String, BitVec>> = None;
    for conds in &all_conds {
        budget_check(config, start)?;
        let seed = previous.iter().find(|s| s.instr == conds.name).map(|s| {
            // Previous runs may lack newly-added holes; zero-fill those.
            let mut map = s.holes.clone();
            for (name, t, _) in &holes {
                map.entry(name.clone()).or_insert_with(|| BitVec::zero(mgr.width(*t)));
            }
            map
        });
        if let Some(candidate) = &seed {
            // Fast path: does the old solution still verify?
            let env = env_of(&holes, candidate);
            let mut assertions: Vec<TermId> =
                conds.pres.iter().map(|&p| substitute(mgr, p, &env)).collect();
            let posts: Vec<TermId> =
                conds.posts.iter().map(|&p| substitute(mgr, p, &env)).collect();
            let post_conj = mgr.and_many(&posts);
            assertions.push(mgr.not(post_conj));
            stats.solver_calls += 1;
            let still_valid = match check(mgr, &assertions, config.conflict_budget) {
                SmtResult::Unsat => true,
                SmtResult::Sat(_) => false,
                SmtResult::Unknown => {
                    return Err(CoreError::new(
                        "re-verification exceeded the conflict budget",
                    ))
                }
            };
            if still_valid {
                stats.reused += 1;
                prev_carry = Some(candidate.clone());
                solutions
                    .push(InstrSolution { instr: conds.name.clone(), holes: candidate.clone() });
                continue;
            }
        }
        let initial = seed
            .or_else(|| prev_carry.clone())
            .unwrap_or_else(|| zero_candidate(mgr, &holes));
        let solved =
            cegis(mgr, &holes, std::slice::from_ref(conds), initial, config, start, &mut stats)
                .map_err(|e| CoreError::new(format!("instruction {}: {}", conds.name, e)))?;
        prev_carry = Some(solved.clone());
        solutions.push(InstrSolution { instr: conds.name.clone(), holes: solved });
    }
    stats.elapsed = start.elapsed();
    Ok(SynthesisOutput { solutions, stats })
}

fn budget_check(config: &SynthesisConfig, start: Instant) -> Result<(), CoreError> {
    if let Some(limit) = config.time_budget {
        if start.elapsed() > limit {
            return Err(CoreError::new(format!(
                "synthesis timed out after {:.1}s",
                start.elapsed().as_secs_f64()
            )));
        }
    }
    Ok(())
}

fn per_instruction(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    all_conds: &[InstrConditions],
    config: &SynthesisConfig,
    start: Instant,
    stats: &mut SynthesisStats,
) -> Result<Vec<InstrSolution>, CoreError> {
    let mut solutions: Vec<InstrSolution> = Vec::with_capacity(all_conds.len());
    let mut prev: Option<HashMap<String, BitVec>> = None;
    for conds in all_conds {
        let initial = prev.clone().unwrap_or_else(|| zero_candidate(mgr, holes));
        let solved = cegis(mgr, holes, std::slice::from_ref(conds), initial, config, start, stats)
            .map_err(|e| {
                CoreError::new(format!("instruction {}: {}", conds.name, e))
            })?;
        prev = Some(solved.clone());
        solutions.push(InstrSolution { instr: conds.name.clone(), holes: solved });
    }
    Ok(solutions)
}

fn monolithic(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    all_conds: &[InstrConditions],
    _trace: &SymbolicTrace,
    config: &SynthesisConfig,
    start: Instant,
    stats: &mut SynthesisStats,
) -> Result<Vec<InstrSolution>, CoreError> {
    // Unknowns: one constant per (hole, instruction). Each original hole
    // variable is replaced by an ITE chain over the instruction
    // preconditions, then all obligations are conjoined into one query.
    let mut chain_vars: HashMap<(usize, usize), (TermId, SymbolId)> = HashMap::new();
    let mut hole_map: HashMap<SymbolId, TermId> = HashMap::new();
    for (h_idx, (hname, ht, hsym)) in holes.iter().enumerate() {
        let w = mgr.width(*ht);
        let mut chain = {
            let last = all_conds.len() - 1;
            let v = mgr.fresh_var(format!("c_{hname}_{}", all_conds[last].name), w);
            chain_vars.insert((h_idx, last), (v, mgr.as_var(v).expect("var")));
            v
        };
        for (j, conds) in all_conds.iter().enumerate().rev().skip(1) {
            let v = mgr.fresh_var(format!("c_{hname}_{}", conds.name), w);
            chain_vars.insert((h_idx, j), (v, mgr.as_var(v).expect("var")));
            let pre = mgr.and_many(&conds.pres);
            chain = mgr.ite(pre, v, chain);
        }
        hole_map.insert(*hsym, chain);
    }

    // Rewrite all conditions over the chained holes.
    let rewritten: Vec<InstrConditions> = all_conds
        .iter()
        .map(|c| InstrConditions {
            name: c.name.clone(),
            pres: c
                .pres
                .iter()
                .map(|&t| owl_smt::substitute_terms(mgr, t, &hole_map))
                .collect(),
            posts: c
                .posts
                .iter()
                .map(|&t| owl_smt::substitute_terms(mgr, t, &hole_map))
                .collect(),
        })
        .collect();

    // CEGIS over the chain variables.
    let unknowns: Vec<(String, TermId, SymbolId)> = chain_vars
        .iter()
        .map(|(&(h, j), &(t, s))| {
            (format!("{}@{}", holes[h].0, all_conds[j].name), t, s)
        })
        .collect();
    let initial = zero_candidate(mgr, &unknowns);
    let solved = cegis(mgr, &unknowns, &rewritten, initial, config, start, stats)?;

    // Repackage as per-instruction solutions.
    let mut out = Vec::with_capacity(all_conds.len());
    for conds in all_conds.iter() {
        let mut map = HashMap::new();
        for (hname, ht, _) in holes.iter() {
            let key = format!("{hname}@{}", conds.name);
            let w = mgr.width(*ht);
            let v = solved.get(&key).cloned().unwrap_or_else(|| BitVec::zero(w));
            map.insert(hname.clone(), v);
        }
        out.push(InstrSolution { instr: conds.name.clone(), holes: map });
    }
    Ok(out)
}

fn zero_candidate(
    mgr: &TermManager,
    holes: &[(String, TermId, SymbolId)],
) -> HashMap<String, BitVec> {
    holes
        .iter()
        .map(|(name, t, _)| (name.clone(), BitVec::zero(mgr.width(*t))))
        .collect()
}

/// The CEGIS loop for one set of obligations: find hole constants such
/// that for every obligation, `∀ state. pres -> posts`.
fn cegis(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    obligations: &[InstrConditions],
    initial: HashMap<String, BitVec>,
    config: &SynthesisConfig,
    start: Instant,
    stats: &mut SynthesisStats,
) -> Result<HashMap<String, BitVec>, CoreError> {
    let mut candidate = initial;
    let mut constraints: Vec<TermId> = Vec::new();

    for _round in 0..config.max_cex_rounds {
        budget_check(config, start)?;
        // Verification: any obligation falsifiable under the candidate?
        let cand_env = env_of(holes, &candidate);
        let mut cex: Option<Env> = None;
        for conds in obligations {
            let mut assertions: Vec<TermId> =
                conds.pres.iter().map(|&p| substitute(mgr, p, &cand_env)).collect();
            let posts: Vec<TermId> =
                conds.posts.iter().map(|&p| substitute(mgr, p, &cand_env)).collect();
            let post_conj = mgr.and_many(&posts);
            assertions.push(mgr.not(post_conj));
            stats.solver_calls += 1;
            match check(mgr, &assertions, config.conflict_budget) {
                SmtResult::Unsat => {}
                SmtResult::Sat(model) => {
                    cex = Some(model.into_env());
                    break;
                }
                SmtResult::Unknown => {
                    return Err(CoreError::new("verification exceeded the conflict budget"));
                }
            }
        }
        let Some(cex_env) = cex else {
            return Ok(candidate); // verified for all obligations
        };
        stats.cex_rounds += 1;

        // Refinement: the formula specialized to the counterexample
        // becomes a constraint over the holes.
        for conds in obligations {
            let pres: Vec<TermId> =
                conds.pres.iter().map(|&p| substitute(mgr, p, &cex_env)).collect();
            let posts: Vec<TermId> =
                conds.posts.iter().map(|&p| substitute(mgr, p, &cex_env)).collect();
            let pre_conj = mgr.and_many(&pres);
            let post_conj = mgr.and_many(&posts);
            let ob = mgr.implies(pre_conj, post_conj);
            if mgr.as_const(ob).is_none_or(|c| !c.is_true()) {
                constraints.push(ob);
            }
        }

        // Synthesis: find hole values satisfying all accumulated
        // constraints.
        stats.solver_calls += 1;
        match check(mgr, &constraints, config.conflict_budget) {
            SmtResult::Sat(model) => {
                for (name, t, sym) in holes {
                    let w = mgr.width(*t);
                    let v = model
                        .env()
                        .var(*sym)
                        .cloned()
                        .unwrap_or_else(|| BitVec::zero(w));
                    candidate.insert(name.clone(), v);
                }
            }
            SmtResult::Unsat => {
                return Err(CoreError::new(
                    "no hole assignment satisfies the specification (datapath sketch \
                     cannot implement this instruction)",
                ));
            }
            SmtResult::Unknown => {
                return Err(CoreError::new("synthesis exceeded the conflict budget"));
            }
        }
    }
    Err(CoreError::new(format!(
        "CEGIS did not converge within {} rounds",
        config.max_cex_rounds
    )))
}

fn env_of(holes: &[(String, TermId, SymbolId)], values: &HashMap<String, BitVec>) -> Env {
    let mut env = Env::new();
    for (name, _, sym) in holes {
        if let Some(v) = values.get(name) {
            env.set_var(*sym, v.clone());
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::DatapathKind;
    use owl_ila::{Instr, SpecExpr};

    /// Spec: acc' = acc + val when go; acc' = 0 when rst (rst wins by
    /// disjoint decodes). Sketch: two holes select add-enable and reset.
    fn setup() -> (Ila, Design, AbstractionFn) {
        let mut ila = Ila::new("m");
        let go = ila.new_bv_input("go", 1);
        let rst = ila.new_bv_input("rst", 1);
        let val = ila.new_bv_input("val", 8);
        let acc = ila.new_bv_state("acc", 8);
        let mut i1 = Instr::new("ACCUM");
        i1.set_decode(
            go.clone()
                .eq(SpecExpr::const_u64(1, 1))
                .and(rst.clone().eq(SpecExpr::const_u64(1, 0))),
        );
        i1.set_update("acc", acc.clone().add(val));
        ila.add_instr(i1);
        let mut i2 = Instr::new("RESET");
        i2.set_decode(rst.eq(SpecExpr::const_u64(1, 1)));
        i2.set_update("acc", SpecExpr::const_u64(8, 0));
        ila.add_instr(i2);

        // Sketch: acc := if clear then 0 else (if en then acc + val else acc)
        let d: Design = "design dp\ninput go 1\ninput rst 1\ninput val 8\n\
                         hole clear 1\nhole en 1\nregister acc 8\n\
                         acc := if clear then 8'x00 else if en then acc + val else acc\n\
                         end\n"
            .parse()
            .unwrap();

        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map_input("rst", "rst");
        alpha.map_input("val", "val");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        (ila, d, alpha)
    }

    #[test]
    fn per_instruction_synthesis_finds_controls() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        assert_eq!(out.solutions.len(), 2);
        let accum = &out.solutions[0];
        assert_eq!(accum.instr, "ACCUM");
        assert_eq!(accum.holes["clear"].to_u64(), Some(0));
        assert_eq!(accum.holes["en"].to_u64(), Some(1));
        let reset = &out.solutions[1];
        assert_eq!(reset.holes["clear"].to_u64(), Some(1));
        assert!(out.stats.solver_calls > 0);
    }

    #[test]
    fn monolithic_synthesis_agrees() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let config = SynthesisConfig { mode: SynthesisMode::Monolithic, ..Default::default() };
        let out = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap();
        assert_eq!(out.solutions.len(), 2);
        assert_eq!(out.solutions[0].holes["clear"].to_u64(), Some(0));
        assert_eq!(out.solutions[0].holes["en"].to_u64(), Some(1));
        assert_eq!(out.solutions[1].holes["clear"].to_u64(), Some(1));
    }

    #[test]
    fn impossible_spec_reports_no_solution() {
        // Spec wants acc' = acc * 3 but the sketch can only add val or clear.
        let mut ila = Ila::new("bad");
        let go = ila.new_bv_input("go", 1);
        ila.new_bv_input("rst", 1);
        ila.new_bv_input("val", 8);
        let acc2 = ila.new_bv_state("acc", 8);
        let mut i = Instr::new("TRIPLE");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        let three = SpecExpr::const_u64(8, 3);
        i.set_update("acc", acc2.mul(three));
        ila.add_instr(i);

        let (_, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let err =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap_err();
        assert!(err.to_string().contains("TRIPLE"));
    }

    #[test]
    fn resynthesis_reuses_valid_solutions() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        // Re-synthesize against the unchanged design: everything reuses.
        let mut mgr2 = TermManager::new();
        let again = resynthesize(
            &mut mgr2,
            &d,
            &ila,
            &alpha,
            &SynthesisConfig::default(),
            &out.solutions,
        )
        .unwrap();
        assert_eq!(again.stats.reused, 2);
        assert_eq!(again.stats.cex_rounds, 0);
        assert_eq!(again.solutions[0].holes, out.solutions[0].holes);
    }

    #[test]
    fn resynthesis_repairs_stale_solutions() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let mut out =
            synthesize(&mut mgr, &d, &ila, &alpha, &SynthesisConfig::default()).unwrap();
        // Corrupt one previous solution; re-synthesis must repair it.
        out.solutions[0].holes.insert("en".to_string(), BitVec::zero(1));
        out.solutions[0].holes.insert("clear".to_string(), BitVec::from_u64(1, 1));
        let mut mgr2 = TermManager::new();
        let again = resynthesize(
            &mut mgr2,
            &d,
            &ila,
            &alpha,
            &SynthesisConfig::default(),
            &out.solutions,
        )
        .unwrap();
        assert_eq!(again.stats.reused, 1); // only RESET reuses
        assert_eq!(again.solutions[0].holes["en"].to_u64(), Some(1));
        assert_eq!(again.solutions[0].holes["clear"].to_u64(), Some(0));
    }

    #[test]
    fn time_budget_enforced() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let config = SynthesisConfig {
            time_budget: Some(Duration::from_nanos(1)),
            ..Default::default()
        };
        // With a 1ns budget the run reports a timeout (the first budget
        // check happens after condition building).
        let err = synthesize(&mut mgr, &d, &ila, &alpha, &config).unwrap_err();
        assert!(err.to_string().contains("timed out"));
    }
}
