//! End-to-end result certification: trust, but verify.
//!
//! The synthesis engine's claims rest on a long tool chain — condition
//! extraction, bit-blasting, CDCL search, the control union. Each layer
//! is tested, but a bug in any of them silently produces wrong control
//! logic. This module closes the loop with two *independent* checks:
//!
//! 1. **Query certification** (via [`owl_smt::CheckOpts::certified`]): every
//!    SAT answer is re-evaluated at the term level against the original
//!    pre-blast assertions, and every UNSAT answer is replayed through a
//!    DRUP-style proof checker that shares no code with the CDCL solver.
//!    The per-query verdicts are accumulated in a [`QueryLog`].
//!
//! 2. **Differential re-verification**: the synthesized control is
//!    spliced into the sketch ([`crate::union::complete_design`]) and the
//!    completed design is simulated on the *concrete* Oyster interpreter
//!    against the ILA golden model, on fresh SMT-sampled traces that are
//!    **not** the CEGIS counterexamples. The concrete interpreter and the
//!    golden model never see the solver, the blaster, or the symbolic
//!    evaluator's term graph, so an agreement here is independent
//!    evidence that the synthesized control implements the instruction.
//!
//! The verdicts are carried in a [`Certificate`] attached to
//! [`crate::synth::SynthesisOutput`]; certification is on by default and
//! opt-out via [`crate::synth::SynthesisConfig::certify`].

use crate::abstraction::{AbstractionFn, DatapathKind, Mapping};
use crate::conditions::ConditionBuilder;
use crate::synth::{InstrStatus, SynthesisConfig, SynthesisOutput};
use crate::union::{complete_design, control_union};
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::golden::{GoldenModel, SpecMem, SpecState};
use owl_ila::{Ila, Instr, SpecSort};
use owl_oyster::{Design, Interpreter, MemState, SymbolicEvaluator, SymbolicTrace};
use owl_smt::{solve, Budget, Env, QueryCert, SmtResult, TermId, TermManager};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The verdict of one independent check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckStatus {
    /// The check ran and agreed with the synthesis result.
    Passed,
    /// The check ran and contradicted the synthesis result — the
    /// certificate is void and the message says why.
    Failed(String),
    /// The check could not run (instruction unsolved, budget spent,
    /// certification disabled, ...); no claim either way.
    Skipped(String),
}

impl CheckStatus {
    /// True if the check ran and agreed.
    #[must_use]
    pub fn is_passed(&self) -> bool {
        matches!(self, CheckStatus::Passed)
    }

    /// True if the check ran and contradicted the result.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self, CheckStatus::Failed(_))
    }
}

impl fmt::Display for CheckStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckStatus::Passed => write!(f, "passed"),
            CheckStatus::Failed(m) => write!(f, "FAILED: {m}"),
            CheckStatus::Skipped(m) => write!(f, "skipped: {m}"),
        }
    }
}

/// Accumulated per-query certification verdicts for one instruction's
/// solver traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryLog {
    /// SAT answers whose models re-evaluated true at the term level.
    pub sat_verified: usize,
    /// UNSAT answers whose clausal proofs replayed successfully.
    pub unsat_verified: usize,
    /// Answers decided by constant folding, re-derived independently.
    pub trivial: usize,
    /// Unknown answers — no claim was made, nothing to certify.
    pub unchecked: usize,
    /// Certification failures: an answer whose model or proof did not
    /// check out.
    pub failures: Vec<String>,
    /// Term-graph nodes summed over this instruction's queries, before
    /// eqsat simplification.
    pub terms_before: usize,
    /// Term-graph nodes after simplification.
    pub terms_after: usize,
    /// CNF variables created by bit-blasting, summed over the queries.
    pub cnf_vars: usize,
    /// CNF clauses created by bit-blasting.
    pub cnf_clauses: usize,
    /// Learned clauses retained across warm solver rounds, summed over
    /// the queries (0 when incremental solving is off). Like the other
    /// reuse counters this is provenance, not output: it never appears
    /// in the rendered [`Certificate`](crate::Certificate).
    pub clauses_retained: usize,
    /// Bit-blast memo hits: assertion roots (or whole verification
    /// queries) whose CNF was reused instead of re-blasted.
    pub blast_cache_hits: usize,
    /// Queries answered on a warm persistent solver session (round two
    /// onward of an incremental session).
    pub incremental_rounds: usize,
}

impl QueryLog {
    /// Folds one query's size statistics into the log.
    pub(crate) fn record_stats(&mut self, stats: &owl_smt::QueryStats) {
        self.terms_before += stats.terms_before;
        self.terms_after += stats.terms_after;
        self.cnf_vars += stats.cnf_vars;
        self.cnf_clauses += stats.cnf_clauses;
        self.clauses_retained += stats.clauses_retained as usize;
        self.blast_cache_hits += stats.blast_cache_hits as usize;
        self.incremental_rounds += stats.incremental_rounds as usize;
    }

    /// Folds one query's certification verdict into the log.
    pub(crate) fn record(&mut self, cert: &QueryCert) {
        match cert {
            QueryCert::Trivial => self.trivial += 1,
            QueryCert::SatVerified => self.sat_verified += 1,
            QueryCert::UnsatVerified { .. } => self.unsat_verified += 1,
            QueryCert::Unchecked => self.unchecked += 1,
            QueryCert::Failed(msg) => self.failures.push(msg.clone()),
        }
    }

    /// Total number of queries recorded.
    #[must_use]
    pub fn total(&self) -> usize {
        self.sat_verified + self.unsat_verified + self.trivial + self.unchecked
            + self.failures.len()
    }

    /// The overall verdict: failed if any answer's certification failed.
    #[must_use]
    pub fn status(&self) -> CheckStatus {
        if self.failures.is_empty() {
            CheckStatus::Passed
        } else {
            CheckStatus::Failed(self.failures.join("; "))
        }
    }
}

/// The certification record for one instruction.
#[derive(Debug, Clone)]
pub struct InstrCertificate {
    /// Instruction name.
    pub instr: String,
    /// Per-query proof/model certification tallies.
    pub queries: QueryLog,
    /// Verdict over the solver answers that produced this instruction's
    /// result ([`QueryLog::status`], or skipped when the instruction was
    /// never solved).
    pub solver: CheckStatus,
    /// Verdict of the differential re-verification run.
    pub differential: CheckStatus,
}

impl InstrCertificate {
    /// True if both independent checks ran and agreed.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.solver.is_passed() && self.differential.is_passed()
    }
}

/// The certificate for a synthesis run: one entry per specification
/// instruction, in order.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Per-instruction verdicts, in specification order.
    pub instrs: Vec<InstrCertificate>,
    /// Differential traces sampled per instruction.
    pub samples_per_instr: usize,
    /// The PRNG seed the differential sampler ran with.
    pub seed: u64,
}

impl Certificate {
    /// True if every instruction passed both checks.
    #[must_use]
    pub fn is_fully_certified(&self) -> bool {
        !self.instrs.is_empty() && self.instrs.iter().all(InstrCertificate::is_certified)
    }

    /// The entry for one instruction, if present.
    #[must_use]
    pub fn entry(&self, instr: &str) -> Option<&InstrCertificate> {
        self.instrs.iter().find(|c| c.instr == instr)
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "certificate ({} instructions, {} differential samples each, seed {:#x}):",
            self.instrs.len(),
            self.samples_per_instr,
            self.seed
        )?;
        for c in &self.instrs {
            writeln!(
                f,
                "  {}: solver {} ({} sat / {} unsat / {} trivial verified), differential {}",
                c.instr,
                c.solver,
                c.queries.sat_verified,
                c.queries.unsat_verified,
                c.queries.trivial,
                c.differential
            )?;
        }
        Ok(())
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

// A deterministic splitmix64 stream for trace sampling (shared impl).
use owl_smt::hash::splitmix64_next as splitmix64;

/// The concrete state visible at one simulated time step, mirroring
/// [`owl_oyster::Snapshot`].
struct ConcreteSnap {
    regs: HashMap<String, BitVec>,
    mems: HashMap<String, MemState>,
    wires: HashMap<String, BitVec>,
    /// Memory writes committed at the end of the cycle that produced
    /// this snapshot (empty for snapshot 0).
    writes: Vec<(String, u64, BitVec)>,
}

/// Runs differential re-verification of a completed (hole-free) design
/// against the specification's golden model.
///
/// For each named instruction, `samples` fresh concrete pre-states
/// satisfying the instruction's preconditions are sampled with the SMT
/// solver (randomly pinning inputs and initial registers for diversity,
/// relaxing the pins when they contradict the decode condition). Each
/// sampled state is then simulated for α's window on the concrete
/// [`Interpreter`] and architecturally stepped on the [`GoldenModel`];
/// the post-states are compared through α's write mappings, with memory
/// updates compared extensionally on every touched address.
///
/// Returns one [`CheckStatus`] per requested instruction.
///
/// # Errors
///
/// Returns an error if the design or abstraction function fail
/// validation (the per-instruction statuses absorb everything else).
pub fn differential_check(
    complete: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    instrs: &[String],
    samples: usize,
    seed: u64,
    budget: &Budget,
) -> Result<HashMap<String, CheckStatus>, CoreError> {
    let mut mgr = TermManager::new();
    let trace = SymbolicEvaluator::run(&mut mgr, complete, alpha.cycles())?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(&mgr);
    let golden = GoldenModel::new(ila).map_err(CoreError::from)?;
    let mut rng = seed;
    let mut results = HashMap::new();
    for name in instrs {
        let status = match ila.instr(name) {
            Some(instr) => match builder.instr_conditions(&mut mgr, instr) {
                Ok(conds) => check_one_instr(
                    &mut mgr, complete, &trace, &golden, ila, alpha, instr, &conds.pres, samples,
                    &mut rng, budget,
                ),
                Err(e) => CheckStatus::Skipped(format!("condition extraction failed: {e}")),
            },
            None => CheckStatus::Skipped("unknown instruction".to_string()),
        };
        results.insert(name.clone(), status);
    }
    Ok(results)
}

/// Samples and replays the traces for one instruction.
#[allow(clippy::too_many_arguments)]
fn check_one_instr(
    mgr: &mut TermManager,
    complete: &Design,
    trace: &SymbolicTrace,
    golden: &GoldenModel<'_>,
    ila: &Ila,
    alpha: &AbstractionFn,
    instr: &Instr,
    pres: &[TermId],
    samples: usize,
    rng: &mut u64,
    budget: &Budget,
) -> CheckStatus {
    let mut passed = 0usize;
    let mut skip_note = None;
    for _sample in 0..samples {
        // Random pins over inputs and initial registers, in sorted order
        // so the sampling is deterministic across HashMap layouts.
        let mut pinnable: Vec<(&String, TermId)> = trace
            .inputs
            .iter()
            .chain(trace.initial_regs.iter())
            .map(|(n, &t)| (n, t))
            .collect();
        pinnable.sort_by(|a, b| a.0.cmp(b.0));
        let mut pins: Vec<TermId> = Vec::new();
        for (_, t) in pinnable {
            let w = mgr.width(t);
            if w > 64 || splitmix64(rng) & 1 == 0 {
                continue;
            }
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            let v = mgr.bv_const(BitVec::from_u64(w, splitmix64(rng) & mask));
            pins.push(mgr.eq(t, v));
        }
        // Solve for a concrete pre-state; drop pins if they contradict
        // the preconditions.
        let env = loop {
            let mut assertions: Vec<TermId> = pres.to_vec();
            assertions.extend(pins.iter().copied());
            match solve(mgr, &assertions, budget).result {
                SmtResult::Sat(model) => break Some(model.into_env()),
                SmtResult::Unsat => {
                    if pins.is_empty() {
                        break None;
                    }
                    pins.truncate(pins.len() / 2);
                }
                SmtResult::Unknown(reason) => {
                    return CheckStatus::Skipped(format!(
                        "trace sampling stopped: {reason:?}"
                    ));
                }
            }
        };
        let Some(env) = env else {
            return CheckStatus::Skipped(
                "preconditions unsatisfiable: no concrete trace exists".to_string(),
            );
        };
        match replay_trace(mgr, complete, trace, &env, golden, ila, alpha, instr) {
            Ok(()) => passed += 1,
            Err(CheckStatus::Skipped(note)) => skip_note = Some(note),
            Err(failure) => return failure,
        }
    }
    if passed > 0 {
        CheckStatus::Passed
    } else if let Some(note) = skip_note {
        CheckStatus::Skipped(note)
    } else {
        CheckStatus::Skipped("no samples requested".to_string())
    }
}

/// Simulates one sampled pre-state on the concrete interpreter and the
/// golden model and compares the post-states through α.
#[allow(clippy::too_many_arguments)]
fn replay_trace(
    mgr: &TermManager,
    complete: &Design,
    trace: &SymbolicTrace,
    env: &Env,
    golden: &GoldenModel<'_>,
    ila: &Ila,
    alpha: &AbstractionFn,
    instr: &Instr,
) -> Result<(), CheckStatus> {
    let skip = |m: String| CheckStatus::Skipped(m);
    let fail = |m: String| CheckStatus::Failed(m);

    // Concrete input values, constant over the evaluated window (the
    // symbolic evaluator models one variable per input).
    let inputs: HashMap<String, BitVec> =
        trace.inputs.iter().map(|(n, &t)| (n.clone(), env.eval(mgr, t))).collect();

    let mut sim = Interpreter::new(complete).map_err(|e| skip(format!("interpreter: {e}")))?;
    for (name, &t) in &trace.initial_regs {
        sim.set_reg(name, env.eval(mgr, t)).map_err(|e| skip(format!("interpreter: {e}")))?;
    }
    for (name, &arr) in &trace.mem_bases {
        let Some(av) = env.array(arr) else { continue };
        if !av.default_value().is_zero() {
            // The interpreter zero-fills untouched addresses; a model
            // with a non-zero array default cannot be realized exactly.
            return Err(skip(format!("memory {name}: sampled default value is non-zero")));
        }
        for (a, d) in av.entries() {
            let Some(a64) = a.to_u64() else {
                return Err(skip(format!("memory {name}: sampled address exceeds 64 bits")));
            };
            sim.poke_mem(name, a64, d.clone())
                .map_err(|e| skip(format!("interpreter: {e}")))?;
        }
    }

    // Snapshot 0 is the initial state; snapshot t the state after the
    // t-th cycle's commits, mirroring the symbolic trace's indexing.
    let capture = |sim: &Interpreter<'_>| -> Result<_, CheckStatus> {
        let mut regs = HashMap::new();
        for name in trace.initial_regs.keys() {
            let v = sim
                .reg(name)
                .cloned()
                .ok_or_else(|| CheckStatus::Skipped(format!("register {name} missing")))?;
            regs.insert(name.clone(), v);
        }
        let mut mems = HashMap::new();
        for name in trace.mem_bases.keys() {
            let m = sim
                .mem(name)
                .cloned()
                .ok_or_else(|| CheckStatus::Skipped(format!("memory {name} missing")))?;
            mems.insert(name.clone(), m);
        }
        Ok((regs, mems))
    };
    let mut snaps: Vec<ConcreteSnap> = Vec::with_capacity(trace.cycles() + 1);
    let (regs0, mems0) = capture(&sim)?;
    snaps.push(ConcreteSnap { regs: regs0, mems: mems0, wires: HashMap::new(), writes: Vec::new() });
    for _ in 0..trace.cycles() {
        let out = sim
            .step(&inputs)
            .map_err(|e| fail(format!("concrete interpreter diverged: {e}")))?;
        let (regs, mems) = capture(&sim)?;
        snaps.push(ConcreteSnap { regs, mems, wires: out.wires, writes: out.writes });
    }

    // Architectural pre-state through α's read mappings, mirroring the
    // symbolic `PreResolver` exactly.
    let mut st = SpecState::zeroed(ila);
    for v in ila.vars() {
        let Some(m) = alpha.read_mapping(&v.name) else { continue };
        match &v.sort {
            SpecSort::Bv(_) => {
                let val = resolve_bv(m, &inputs, &snaps).map_err(skip)?;
                if v.is_input {
                    st.inputs.insert(v.name.clone(), val);
                } else {
                    st.bvs.insert(v.name.clone(), val);
                }
            }
            SpecSort::Mem { .. } => {
                if m.kind != DatapathKind::Memory {
                    return Err(skip(format!("{}: memory state not memory-mapped", v.name)));
                }
                let rt = m.reads[0] as usize;
                let ms = snaps[rt - 1]
                    .mems
                    .get(&m.datapath_name)
                    .ok_or_else(|| skip(format!("datapath has no memory {}", m.datapath_name)))?;
                let mut sm = SpecMem::filled(ms.default_value().clone());
                for (a, d) in ms.entries() {
                    sm.write(a, d.clone());
                }
                st.mems.insert(v.name.clone(), sm);
            }
        }
    }

    // The golden model must decode exactly the sampled instruction.
    let st_pre = st.clone();
    match golden.step(&mut st) {
        Err(e) => return Err(fail(format!("golden model diverged: {e}"))),
        Ok(None) => {
            return Err(fail(
                "hardware preconditions hold but no specification instruction decodes"
                    .to_string(),
            ))
        }
        Ok(Some(fired)) if fired != instr.name() => {
            return Err(fail(format!(
                "sampled a trace for {} but the golden model decoded {fired}",
                instr.name()
            )))
        }
        Ok(Some(_)) => {}
    }

    // Compare the post-states through α's write mappings.
    for v in ila.vars() {
        if v.is_input {
            continue;
        }
        let Some(wm) = alpha.write_mapping(&v.name) else { continue };
        let wt = wm.writes[0] as usize;
        match &v.sort {
            SpecSort::Bv(_) => {
                let actual = match wm.kind {
                    DatapathKind::Register => snaps[wt].regs.get(&wm.datapath_name),
                    DatapathKind::Output => {
                        snaps.get(wt).and_then(|s| s.wires.get(&wm.datapath_name))
                    }
                    _ => {
                        return Err(skip(format!(
                            "write mapping for {} must be a register or output",
                            v.name
                        )))
                    }
                }
                .cloned()
                .ok_or_else(|| {
                    skip(format!("datapath has no {} {}", wm.kind, wm.datapath_name))
                })?;
                let expected = st
                    .bvs
                    .get(&v.name)
                    .cloned()
                    .ok_or_else(|| skip(format!("specification has no state {}", v.name)))?;
                if actual != expected {
                    return Err(fail(format!(
                        "{}: datapath {} {} holds {actual} after cycle {wt} but the \
                         specification expects {expected}",
                        instr.name(),
                        wm.kind,
                        wm.datapath_name,
                    )));
                }
            }
            SpecSort::Mem { .. } => {
                let old_t = wm.reads.first().copied().unwrap_or(wm.writes[0]) as usize;
                let old = snaps[old_t - 1]
                    .mems
                    .get(&wm.datapath_name)
                    .cloned()
                    .ok_or_else(|| {
                        skip(format!("datapath has no memory {}", wm.datapath_name))
                    })?;
                // Hardware side: the write-back delta (writes committed
                // during cycle wt) applied to the read-time state.
                let mut actual = old.clone();
                for (mname, a, d) in &snaps[wt].writes {
                    if mname == &wm.datapath_name {
                        actual.write(*a, d.clone());
                    }
                }
                // Specification side: the instruction's stores evaluated
                // on the pre-state, applied to the same read-time state.
                let mut expected = old;
                for (mname, update) in instr.mem_updates() {
                    if mname != &v.name {
                        continue;
                    }
                    let enabled = match &update.cond {
                        Some(c) => golden
                            .eval(c, &st_pre)
                            .map_err(|e| fail(format!("golden model diverged: {e}")))?
                            .is_true(),
                        None => true,
                    };
                    if !enabled {
                        continue;
                    }
                    let a = golden
                        .eval(&update.addr, &st_pre)
                        .map_err(|e| fail(format!("golden model diverged: {e}")))?;
                    let Some(a64) = a.to_u64() else {
                        return Err(skip(format!(
                            "store to {}: address exceeds 64 bits",
                            v.name
                        )));
                    };
                    let d = golden
                        .eval(&update.data, &st_pre)
                        .map_err(|e| fail(format!("golden model diverged: {e}")))?;
                    expected.write(a64, d);
                }
                // Extensional comparison over every touched address (the
                // defaults agree: both sides start from `old`).
                let touched: Vec<u64> = actual
                    .entries()
                    .map(|(a, _)| a)
                    .chain(expected.entries().map(|(a, _)| a))
                    .collect();
                for a in touched {
                    if actual.read(a) != expected.read(a) {
                        return Err(fail(format!(
                            "{}: memory {}[{a:#x}] holds {} after cycle {wt} but the \
                             specification expects {}",
                            instr.name(),
                            wm.datapath_name,
                            actual.read(a),
                            expected.read(a),
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Resolves one α read mapping against the concrete snapshots, mirroring
/// the symbolic `PreResolver::resolve_ref`.
fn resolve_bv(
    m: &Mapping,
    inputs: &HashMap<String, BitVec>,
    snaps: &[ConcreteSnap],
) -> Result<BitVec, String> {
    let rt = m.reads[0] as usize;
    match m.kind {
        DatapathKind::Input => inputs
            .get(&m.datapath_name)
            .cloned()
            .ok_or_else(|| format!("datapath has no input {}", m.datapath_name)),
        DatapathKind::Register => snaps
            .get(rt - 1)
            .and_then(|s| s.regs.get(&m.datapath_name))
            .cloned()
            .ok_or_else(|| format!("datapath has no register {}", m.datapath_name)),
        DatapathKind::Output => snaps
            .get(rt)
            .and_then(|s| s.wires.get(&m.datapath_name))
            .cloned()
            .ok_or_else(|| format!("datapath has no wire {} at time {rt}", m.datapath_name)),
        DatapathKind::Memory => Err(format!("{} is memory-mapped", m.spec_name)),
    }
}

/// Assembles the certificate for a finished synthesis run: folds the
/// per-instruction [`QueryLog`]s into solver verdicts and runs the
/// differential pass over the solved instructions.
pub(crate) fn build_certificate(
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    output: &SynthesisOutput,
    qlogs: Vec<QueryLog>,
    config: &SynthesisConfig,
    budget: &Budget,
) -> Certificate {
    let solved: Vec<String> = output
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, InstrStatus::Solved | InstrStatus::Reused))
        .map(|o| o.instr.clone())
        .collect();

    let mut differential: HashMap<String, CheckStatus> = HashMap::new();
    let mut blanket_skip = None;
    if output.interrupted.is_some() {
        blanket_skip = Some("run interrupted before differential re-verification".to_string());
    } else if config.differential_samples == 0 {
        blanket_skip = Some("differential re-verification disabled".to_string());
    } else if solved.is_empty() {
        blanket_skip = Some("no solved instructions".to_string());
    } else {
        // The differential pass itself runs solvers and the interpreter;
        // a panic anywhere in it must not take down the synthesis run.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            match control_union(design, ila, alpha, &output.solutions) {
                Ok(union) => {
                    let complete = complete_design(design, &union);
                    differential_check(
                        &complete,
                        ila,
                        alpha,
                        &solved,
                        config.differential_samples,
                        config.differential_seed,
                        budget,
                    )
                    .map_err(|e| format!("differential setup failed: {e}"))
                }
                Err(e) => Err(format!("control union failed: {e}")),
            }
        }));
        match attempt {
            Ok(Ok(map)) => differential = map,
            Ok(Err(msg)) => blanket_skip = Some(msg),
            Err(payload) => {
                blanket_skip = Some(format!(
                    "differential re-verification panicked: {}",
                    panic_message(&*payload)
                ));
            }
        }
    }

    let mut instrs = Vec::with_capacity(output.outcomes.len());
    for (i, outcome) in output.outcomes.iter().enumerate() {
        let queries = qlogs.get(i).cloned().unwrap_or_default();
        let solved_ok =
            matches!(outcome.status, InstrStatus::Solved | InstrStatus::Reused);
        let solver = if !queries.failures.is_empty() || solved_ok {
            queries.status()
        } else {
            CheckStatus::Skipped("instruction not solved".to_string())
        };
        let diff_status = if let Some(s) = differential.get(&outcome.instr) {
            s.clone()
        } else if !solved_ok {
            CheckStatus::Skipped("instruction not solved".to_string())
        } else {
            CheckStatus::Skipped(
                blanket_skip.clone().unwrap_or_else(|| "not attempted".to_string()),
            )
        };
        instrs.push(InstrCertificate {
            instr: outcome.instr.clone(),
            queries,
            solver,
            differential: diff_status,
        });
    }
    Certificate {
        instrs,
        samples_per_instr: config.differential_samples,
        seed: config.differential_seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        let mut c = 43;
        assert_ne!(splitmix64(&mut c), xs[0]);
    }

    #[test]
    fn query_log_records_and_judges() {
        let mut log = QueryLog::default();
        log.record(&QueryCert::SatVerified);
        log.record(&QueryCert::UnsatVerified { steps: 3 });
        log.record(&QueryCert::Trivial);
        log.record(&QueryCert::Unchecked);
        assert_eq!(log.total(), 4);
        assert!(log.status().is_passed());
        log.record(&QueryCert::Failed("model check failed".to_string()));
        assert!(log.status().is_failed());
        assert_eq!(log.total(), 5);
    }

    #[test]
    fn check_status_display() {
        assert_eq!(CheckStatus::Passed.to_string(), "passed");
        assert!(CheckStatus::Failed("x".into()).to_string().contains("FAILED"));
        assert!(CheckStatus::Skipped("y".into()).to_string().contains("skipped"));
    }
}
