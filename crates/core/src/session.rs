//! The unified synthesis entry point ([`SynthesisSession`]) and its
//! parallel per-instruction scheduler.
//!
//! The paper's instruction-independence optimization (§3.3.1) makes each
//! instruction's `∃ holes ∀ state` problem self-contained, so the
//! per-instruction CEGIS loops can run concurrently. The scheduler here
//! is built for *determinism first*: `SynthesisOutput`, `Certificate`
//! and every per-instruction `QueryLog` are byte-identical across thread
//! counts.
//!
//! # How determinism survives parallelism
//!
//! - **Task independence.** Every instruction task clones the prepared
//!   base [`TermManager`] and works on its own arena. [`TermId`]s stay
//!   valid across the clone, no locks are taken on the hot path, and no
//!   task observes terms created by another. Candidate seeding between
//!   instructions (the old sequential prev-carry chain) is gone: each
//!   task starts from its own seed (incremental re-synthesis) or the
//!   zero candidate, so the work done for instruction *i* is a pure
//!   function of the prepared problem — not of scheduling order.
//! - **Quota invariance.** Per-solver-call work quotas (conflicts,
//!   decisions, propagations) are identical for every thread count; the
//!   deadline, cancellation flag, and fault-plan call counter are the
//!   only shared parts of the [`Budget`].
//! - **Deterministic rebalance.** When instructions finish under their
//!   base quota while others exhaust their escalation ladder, the
//!   leftover conflict quota is pooled ([`Budget::merge`]) and split
//!   ([`Budget::partition`]) across the stragglers for one boosted
//!   retry. Both the straggler set and the boost are pure functions of
//!   the (deterministic) first-phase outcomes, so the rebalance — the
//!   deterministic analog of work stealing — is itself thread-count
//!   invariant.
//! - **Ordered assembly.** Results land in per-instruction slots and are
//!   folded in specification order after the join; certification runs
//!   sequentially on the assembled output.
//!
//! Timing-dependent stops are the documented exception: a deadline or a
//! mid-run cancellation fires at a wall-clock instant, so *which* tasks
//! were still in flight (`Failed`) versus never started (`Skipped`)
//! depends on real time. Completed instructions still agree across
//! thread counts; see DESIGN.md.

use crate::abstraction::AbstractionFn;
use crate::certify::{build_certificate, panic_message, QueryLog};
use crate::conditions::InstrConditions;
use crate::journal::{
    decode_snapshot, encode_snapshot, read_journal, FileJournal, Fnv64, JournalWriter, Record,
    SnapStatus, TaskSnapshot,
};
use crate::synth::{
    cegis, env_of, monolithic, prepare, run_check, solve_with_degradation, zero_candidate,
    InstrOutcome, InstrSolution, InstrStatus, Prepared, SynthesisConfig, SynthesisMode,
    SynthesisOutput, SynthesisStats,
};
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::Ila;
use owl_oyster::Design;
use owl_smt::{
    substitute, Budget, CancelFlag, Heartbeat, SmtResult, SymbolId, TermId, TermManager, Tracer,
};
use std::collections::HashMap;
use owl_cache::{CacheConfig, CacheKey, CacheStats, SynthesisCache};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A configured synthesis run: the one entry point for fresh synthesis,
/// incremental re-synthesis, and parallel per-instruction solving.
///
/// ```ignore
/// let output = SynthesisSession::new(&design, &ila, &alpha)
///     .config(SynthesisConfig::builder().time_budget(limit).build())
///     .parallelism(4)
///     .run()?;
/// ```
///
/// [`run`](SynthesisSession::run) owns a fresh [`TermManager`];
/// [`run_with`](SynthesisSession::run_with) reuses the caller's (the
/// historical `synthesize` contract). Outputs are deterministic: the
/// same session produces byte-identical [`SynthesisOutput`]s at every
/// [`parallelism`](SynthesisSession::parallelism) level.
#[derive(Debug)]
#[must_use = "a session does nothing until `.run()` or `.run_with(mgr)`"]
pub struct SynthesisSession<'a> {
    design: &'a Design,
    ila: &'a Ila,
    alpha: &'a AbstractionFn,
    config: SynthesisConfig,
    parallelism: usize,
    seeds: Option<Vec<InstrSolution>>,
    journal: Option<JournalSpec>,
    cache: Option<CacheSpec>,
    tracer: Tracer,
}

/// How the session uses its journal file.
#[derive(Debug)]
struct JournalSpec {
    path: PathBuf,
    /// True for [`SynthesisSession::resume`]: recover the intact prefix
    /// before (re)writing. False for
    /// [`SynthesisSession::journal_to`]: start fresh.
    resume: bool,
}

/// Where the session's synthesis cache comes from.
#[derive(Debug)]
enum CacheSpec {
    /// A private store opened (fail-open) at this path for the run.
    Path(PathBuf),
    /// A shared handle, e.g. the service layer's store for the whole
    /// worker pool.
    Handle(Arc<SynthesisCache>),
}

impl<'a> SynthesisSession<'a> {
    /// A session over the sketch, specification and abstraction
    /// function, with the default configuration and `parallelism(1)`.
    pub fn new(design: &'a Design, ila: &'a Ila, alpha: &'a AbstractionFn) -> Self {
        SynthesisSession {
            design,
            ila,
            alpha,
            config: SynthesisConfig::default(),
            parallelism: 1,
            seeds: None,
            journal: None,
            cache: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an observability tracer: the session emits spans for
    /// the run, journal replay, per-instruction tasks, cache probes and
    /// the phase-2 rebalance, and hands the tracer to every solver call
    /// via the run [`Budget`]. Tracing is inert — the output stays
    /// byte-identical to an untraced run at any parallelism level.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Replaces the synthesis configuration.
    pub fn config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of worker threads for per-instruction mode (clamped to at
    /// least 1; monolithic mode always runs on the calling thread).
    /// Outputs do not depend on this value.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Seeds the run with the solutions of a previous revision
    /// (incremental re-synthesis): each seeded instruction is first
    /// re-verified and reused outright when still valid, otherwise its
    /// old solution becomes the CEGIS starting candidate. Requires
    /// per-instruction mode.
    pub fn seeded_with(mut self, previous: impl Into<Vec<InstrSolution>>) -> Self {
        self.seeds = Some(previous.into());
        self
    }

    /// Write-ahead-journals the run to `path`: every per-instruction
    /// result is appended (with a CRC) the moment it completes, under a
    /// header that fingerprints the design/ILA/α/config. An existing
    /// file at `path` is overwritten. A journal write failure never
    /// fails the run — journaling silently degrades. Requires
    /// per-instruction mode; see the [`journal`](crate::journal) module
    /// for the format and recovery guarantees.
    pub fn journal_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(JournalSpec { path: path.into(), resume: false });
        self
    }

    /// Resumes from the journal at `path` (and keeps journaling there):
    /// the intact record prefix is replayed — each journaled
    /// instruction's solution, query log, and certification tallies are
    /// restored verbatim instead of re-solved — and only the missing
    /// instructions run. The resumed output (and certificate) is
    /// byte-identical to an uninterrupted run at any parallelism level.
    ///
    /// A missing, empty, or header-corrupt journal starts fresh; a
    /// valid header whose fingerprint does not match the session's
    /// design/ILA/α/config makes [`run`](SynthesisSession::run) fail
    /// with [`CoreError::Invalid`] (resuming against edited inputs
    /// would silently produce a wrong design). A corrupt record tail is
    /// discarded and those instructions re-solve.
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(JournalSpec { path: path.into(), resume: true });
        self
    }

    /// Attaches a shared synthesis cache: before dispatching an
    /// instruction's CEGIS task, the scheduler probes the cache under a
    /// content fingerprint of the prepared instruction (term graph,
    /// hole set, seed, semantic config); solved results are published
    /// back. Reuse is trust-but-verify — a hit is adopted only after it
    /// re-passes the instruction's verification query, so a stale or
    /// poisoned entry costs one solver call, never a wrong design, and
    /// the output stays byte-identical to a cold run at any parallelism
    /// level. Requires per-instruction mode.
    pub fn cache(mut self, handle: Arc<SynthesisCache>) -> Self {
        self.cache = Some(CacheSpec::Handle(handle));
        self
    }

    /// As [`cache`](SynthesisSession::cache), but opens (or creates) a
    /// private persistent store at `path` for this run. Fail-open: an
    /// unusable path degrades to an in-memory cache.
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache = Some(CacheSpec::Path(path.into()));
        self
    }

    /// Runs the session on a fresh [`TermManager`].
    ///
    /// # Errors
    ///
    /// Returns an error only if the inputs fail validation; solver-level
    /// failures are per-instruction [`SynthesisOutput::outcomes`].
    pub fn run(&self) -> Result<SynthesisOutput, CoreError> {
        let mut mgr = TermManager::new();
        self.run_with(&mut mgr)
    }

    /// Runs the session on the caller's [`TermManager`] (the prepared
    /// problem hash-conses into it; worker tasks clone it and leave it
    /// untouched).
    ///
    /// # Errors
    ///
    /// As for [`run`](SynthesisSession::run).
    pub fn run_with(&self, mgr: &mut TermManager) -> Result<SynthesisOutput, CoreError> {
        if self.seeds.is_some() && self.config.mode != SynthesisMode::PerInstruction {
            return Err(CoreError::Invalid(
                "incremental re-synthesis requires per-instruction mode".to_string(),
            ));
        }
        if self.journal.is_some() && self.config.mode != SynthesisMode::PerInstruction {
            return Err(CoreError::Invalid(
                "journaling requires per-instruction mode".to_string(),
            ));
        }
        if self.cache.is_some() && self.config.mode != SynthesisMode::PerInstruction {
            return Err(CoreError::Invalid(
                "the synthesis cache requires per-instruction mode".to_string(),
            ));
        }
        let _session_span = self.tracer.span("core", "session");
        let (writer, restored) = self.open_journal()?;
        let cache: Option<Arc<SynthesisCache>> = self.cache.as_ref().map(|spec| match spec {
            CacheSpec::Handle(handle) => Arc::clone(handle),
            CacheSpec::Path(path) => Arc::new(SynthesisCache::open(
                path,
                CacheConfig {
                    faults: self.config.fault_plan.clone(),
                    tracer: self.tracer.clone(),
                    ..CacheConfig::default()
                },
            )),
        });
        let start = Instant::now();
        let prep = {
            let _span = self.tracer.span("core", "prepare");
            prepare(mgr, self.design, self.ila, self.alpha)?
        };
        let budget = self.config.run_budget(start).with_tracer(self.tracer.clone());
        let mut stats = SynthesisStats::default();
        let (solutions, outcomes, interrupted, qlogs) = match self.config.mode {
            SynthesisMode::PerInstruction => self.schedule(
                mgr,
                &prep,
                &budget,
                start,
                &mut stats,
                writer.as_ref(),
                &restored,
                cache.as_deref(),
            ),
            SynthesisMode::Monolithic => monolithic(
                mgr,
                &prep.holes,
                &prep.all_conds,
                &self.config,
                &budget,
                start,
                &mut stats,
            ),
        };
        for q in &qlogs {
            stats.terms_before += q.terms_before;
            stats.terms_after += q.terms_after;
            stats.cnf_vars += q.cnf_vars;
            stats.cnf_clauses += q.cnf_clauses;
            stats.clauses_retained += q.clauses_retained;
            stats.blast_cache_hits += q.blast_cache_hits;
            stats.incremental_rounds += q.incremental_rounds;
        }
        stats.elapsed = start.elapsed();
        let mut output =
            SynthesisOutput { solutions, outcomes, stats, interrupted, certificate: None };
        if self.config.certify {
            let _span = self.tracer.span("core", "certify");
            output.certificate = Some(build_certificate(
                self.design,
                self.ila,
                self.alpha,
                &output,
                qlogs,
                &self.config,
                &budget,
            ));
            output.stats.elapsed = start.elapsed();
        }
        Ok(output)
    }

    /// The session fingerprint: binds a journal to the design text, the
    /// ILA, the abstraction function, and the semantic configuration
    /// (the knobs that change results — resource-envelope knobs like
    /// the wall-clock budget, cancel flag, fault plan, and watchdog
    /// timeout are excluded so a resumed run may tighten or relax
    /// them).
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::default();
        h.field(&self.design.to_string());
        h.field(&format!("{:?}", self.ila));
        h.field(&format!("{:?}", self.alpha));
        h.field(&semantic_config(&self.config));
        h.finish()
    }

    /// The fingerprint this session would stamp into (and demand from)
    /// a journal. The service layer uses it to match recovered journal
    /// files back to job specifications without opening a session.
    #[must_use]
    pub fn input_fingerprint(&self) -> u64 {
        self.fingerprint()
    }

    /// Opens the configured journal: recovers the intact prefix when
    /// resuming, validates the fingerprint, and rewrites the journal
    /// (header plus recovered records) so it is valid even after a
    /// corrupted tail was discarded.
    fn open_journal(&self) -> Result<(Option<JournalWriter>, Restored), CoreError> {
        let Some(spec) = &self.journal else {
            return Ok((None, Restored::default()));
        };
        let fp = self.fingerprint();
        let mut io = FileJournal::new(&spec.path, self.config.fault_plan.clone());
        let mut restored = Restored::default();
        if spec.resume {
            let _span = self.tracer.span("core", "journal-replay");
            let contents = read_journal(&mut io);
            if let Some(found) = contents.fingerprint {
                if found != fp {
                    return Err(CoreError::Invalid(format!(
                        "journal {} was written for different inputs (journal fingerprint \
                         {found:016x}, session fingerprint {fp:016x}); refusing to resume",
                        spec.path.display()
                    )));
                }
                restored = Restored::from_records(contents.records);
            }
        }
        let writer = JournalWriter::create(Box::new(io), fp);
        for rec in restored.relog() {
            writer.append(&rec);
        }
        Ok((Some(writer), restored))
    }

    /// The per-instruction scheduler: phase 1 solves every instruction
    /// as an independent task on a worker pool; phase 2 deterministically
    /// rebalances leftover conflict quota onto exhausted stragglers.
    /// Journaled instructions recovered by [`SynthesisSession::resume`]
    /// are restored into their slots instead of re-solved, and every
    /// completed task is write-ahead-journaled as it lands.
    ///
    /// With a cache attached, each un-restored task is first probed by
    /// content fingerprint: a hit that re-passes the instruction's
    /// verification query restores the cold run's phase-1 snapshot
    /// (journaled and published exactly like a fresh solve); fresh
    /// phase-1 solutions are published back. Phase-2 retry results are
    /// *never* cached — they depend on the whole job's donation pool,
    /// which does not transfer across jobs.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        &self,
        mgr: &TermManager,
        prep: &Prepared,
        budget: &Budget,
        start: Instant,
        stats: &mut SynthesisStats,
        journal: Option<&JournalWriter>,
        restored: &Restored,
        cache: Option<&SynthesisCache>,
    ) -> (Vec<InstrSolution>, Vec<InstrOutcome>, Option<CoreError>, Vec<QueryLog>) {
        let holes = &prep.holes;
        let all_conds = &prep.all_conds;
        let n = all_conds.len();

        // Per-instruction seeds are fixed up front (zero-filling holes
        // the previous revision did not know about), so the task set is
        // identical for every thread count.
        let seeds: Vec<Option<HashMap<String, BitVec>>> = all_conds
            .iter()
            .map(|conds| {
                let prev = self.seeds.as_ref()?;
                let seed = prev.iter().find(|s| s.instr == conds.name)?;
                let mut map = seed.holes.clone();
                for (name, t, _) in holes {
                    map.entry(name.clone()).or_insert_with(|| BitVec::zero(mgr.width(*t)));
                }
                Some(map)
            })
            .collect();

        // Cache keys are pure functions of the prepared problem, fixed
        // up front like the seeds so probing order cannot matter.
        let keys: Option<Vec<CacheKey>> = cache.map(|_| {
            all_conds
                .iter()
                .enumerate()
                .map(|(i, conds)| instr_cache_key(mgr, conds, holes, &seeds[i], &self.config))
                .collect()
        });
        let counters = CacheCounters::default();

        let workers = self.parallelism.min(n).max(1);
        let slots: Vec<Mutex<Option<TaskOutput>>> = (0..n)
            .map(|i| {
                // Journal replay: a restored instruction's phase-1 state
                // goes straight into its slot, byte-identical to what
                // the interrupted run computed; the workers skip it.
                let snap = restored.tasks.get(&all_conds[i].name);
                if snap.is_some() {
                    stats.replayed += 1;
                }
                Mutex::new(snap.map(|s| output_from_snapshot(&all_conds[i].name, s)))
            })
            .collect();
        let watch = self.config.stall_timeout.map(|timeout| Watchdog::new(n, timeout));
        let cursor = AtomicUsize::new(0);
        let supervisor_stop = AtomicBool::new(false);
        std::thread::scope(|outer| {
            if let Some(wd) = &watch {
                outer.spawn(|| wd.supervise(&supervisor_stop, journal, all_conds));
            }
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if slots[i].lock().expect("task slot poisoned").is_some() {
                            continue; // restored from the journal
                        }
                        // Cache probe: a verified hit restores the cold
                        // run's phase-1 snapshot and is journaled like
                        // a fresh solve.
                        if let (Some(cache), Some(keys)) = (cache, keys.as_ref()) {
                            if let Some(out) = try_cached_task(
                                mgr,
                                holes,
                                &all_conds[i],
                                cache,
                                keys[i],
                                &self.config,
                                budget,
                                &counters,
                            ) {
                                if let Some(w) = journal {
                                    if let Some(snap) = snapshot_of(&out) {
                                        w.append(&Record::Task {
                                            instr: all_conds[i].name.clone(),
                                            snap,
                                        });
                                    }
                                }
                                *slots[i].lock().expect("task slot poisoned") = Some(out);
                                continue;
                            }
                        }
                        let task_budget = match &watch {
                            Some(wd) => wd.attach(i, budget),
                            None => budget.clone(),
                        };
                        if let Some(wd) = &watch {
                            wd.slots[i].active.store(true, Ordering::Release);
                        }
                        let out = run_task(
                            mgr,
                            holes,
                            &all_conds[i],
                            seeds[i].clone(),
                            &self.config,
                            &task_budget,
                            start,
                        );
                        if let Some(wd) = &watch {
                            wd.slots[i].active.store(false, Ordering::Release);
                        }
                        // Write-ahead journal: the record is durable
                        // before the result is published to the slot.
                        if let Some(w) = journal {
                            if let Some(snap) = snapshot_of(&out) {
                                w.append(&Record::Task {
                                    instr: all_conds[i].name.clone(),
                                    snap,
                                });
                            }
                        }
                        // Publish solved phase-1 results to the cache
                        // (failures and retries are never cached).
                        if let (Some(cache), Some(keys)) = (cache, keys.as_ref()) {
                            publish_task(cache, keys[i], &out);
                        }
                        *slots[i].lock().expect("task slot poisoned") = Some(out);
                    });
                }
            });
            supervisor_stop.store(true, Ordering::Release);
        });
        let mut tasks: Vec<TaskOutput> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("task slot poisoned").expect("every task slot is filled")
            })
            .collect();

        self.rebalance(mgr, holes, all_conds, &mut tasks, budget, start, stats, journal, restored);

        // Assembly, in specification order.
        let mut interrupted: Option<CoreError> = tasks.iter().find_map(|t| match &t.outcome.status
        {
            InstrStatus::Failed(e) if e.is_global_stop() => Some(e.clone()),
            _ => None,
        });
        if interrupted.is_none() {
            // Every-task-skipped runs (budget spent before the first
            // solver call) surface the stop the way the sequential loop
            // always did.
            interrupted = tasks.iter().find_map(|t| t.stop.clone());
        }
        // The end marker means "nothing left to resume": it is withheld
        // from interrupted runs so recovery tooling (the service layer's
        // journal scan) can tell a journal with in-flight work from a
        // finished one by the marker alone.
        if interrupted.is_none() {
            if let Some(w) = journal {
                w.append(&Record::Done);
            }
        }
        // Cache provenance: session-local probe counters (hits are
        // *verified* hits), store-wide eviction/byte gauges.
        if let Some(cache) = cache {
            let store = cache.stats();
            stats.cache = CacheStats {
                hits: counters.hits.load(Ordering::Relaxed),
                misses: counters.misses.load(Ordering::Relaxed),
                verify_rejected: counters.rejected.load(Ordering::Relaxed),
                evictions: store.evictions,
                bytes: store.bytes,
            };
        }
        let mut solutions = Vec::with_capacity(n);
        let mut outcomes = Vec::with_capacity(n);
        let mut qlogs = Vec::with_capacity(n);
        for mut t in tasks {
            stats.cex_rounds += t.stats.cex_rounds;
            stats.solver_calls += t.stats.solver_calls;
            stats.reused += t.stats.reused;
            stats.escalations += t.stats.escalations;
            t.outcome.solver_calls = t.stats.solver_calls;
            if let Some(sol) = t.solution {
                solutions.push(sol);
            }
            outcomes.push(t.outcome);
            qlogs.push(t.qlog);
        }
        (solutions, outcomes, interrupted, qlogs)
    }

    /// Phase 2: instructions that solved without touching their
    /// escalation ladder — and instructions the watchdog declared
    /// stalled, whose remaining quota is worthless to them — donate
    /// their base conflict quota; the pooled donation is split evenly
    /// across the instructions that exhausted theirs, each of which gets
    /// one boosted retry from the zero candidate. Deterministic because
    /// phase-1 outcomes are. Retries restored from a resumed journal are
    /// replayed instead of re-run; fresh retries are journaled.
    #[allow(clippy::too_many_arguments)]
    fn rebalance(
        &self,
        mgr: &TermManager,
        holes: &[(String, TermId, SymbolId)],
        all_conds: &[InstrConditions],
        tasks: &mut [TaskOutput],
        budget: &Budget,
        start: Instant,
        stats: &mut SynthesisStats,
        journal: Option<&JournalWriter>,
        restored: &Restored,
    ) {
        let _span = self.tracer.span("core", "rebalance");
        let Some(base_quota) = self.config.conflict_budget else { return };
        let interrupted = tasks.iter().any(|t| {
            t.stop.is_some()
                || matches!(&t.outcome.status, InstrStatus::Failed(e) if e.is_global_stop())
        });
        if interrupted {
            return;
        }
        let stragglers: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(&t.outcome.status, InstrStatus::Failed(CoreError::SolverExhausted { .. }))
            })
            .map(|(i, _)| i)
            .collect();
        if stragglers.is_empty() {
            return;
        }
        let donations: Vec<Budget> = tasks
            .iter()
            .filter(|t| {
                (t.outcome.escalations == 0
                    && matches!(t.outcome.status, InstrStatus::Solved | InstrStatus::Reused))
                    || matches!(
                        &t.outcome.status,
                        InstrStatus::Failed(CoreError::Stalled { .. })
                    )
            })
            .map(|_| budget.clone().with_conflicts(Some(base_quota)))
            .collect();
        if donations.is_empty() {
            return;
        }
        let pool = Budget::merge(&donations);
        let shares = pool.partition(stragglers.len());

        // Journal replay: a `retry` record supersedes its instruction's
        // phase-1 snapshot, so the straggler's boosted attempt is not
        // repeated. (An intact retry record implies every task record
        // is intact — retries are always written after all tasks and
        // recovery stops at the first damaged record — so the straggler
        // set computed above matches the interrupted run's.)
        let mut fresh: Vec<(usize, usize)> = Vec::new(); // (share index, task index)
        for (k, &i) in stragglers.iter().enumerate() {
            if let Some(snap) = restored.retries.get(&all_conds[i].name) {
                tasks[i] = output_from_snapshot(&all_conds[i].name, snap);
                stats.replayed += 1;
            } else {
                fresh.push((k, i));
            }
        }
        if fresh.is_empty() {
            return;
        }

        let cursor = AtomicUsize::new(0);
        let retries: Vec<(usize, Mutex<&mut TaskOutput>, Budget)> = {
            // Pair each straggler with its boosted budget: the top of its
            // escalation ladder plus its share of the donated pool. The
            // share index k is positional over the *full* straggler set,
            // so a partially-restored resume hands each fresh retry the
            // same boost the uninterrupted run would have.
            let mut slots: Vec<(usize, Mutex<&mut TaskOutput>, Budget)> = Vec::new();
            let mut remaining: Vec<(usize, &mut TaskOutput)> =
                tasks.iter_mut().enumerate().collect();
            for &(k, i) in fresh.iter().rev() {
                let pos = remaining
                    .iter()
                    .position(|(idx, _)| *idx == i)
                    .expect("straggler index present");
                let (_, t) = remaining.swap_remove(pos);
                let ladder_top =
                    self.config.escalated_conflicts(self.config.max_escalations).unwrap_or(0);
                let boost =
                    ladder_top.saturating_add(shares[k].conflict_limit().unwrap_or(0));
                slots.push((i, Mutex::new(t), budget.clone().with_conflicts(Some(boost))));
            }
            slots
        };
        let workers = self.parallelism.min(retries.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = cursor.fetch_add(1, Ordering::Relaxed);
                    if r >= retries.len() {
                        break;
                    }
                    let (i, slot, retry_budget) = &retries[r];
                    let mut task = slot.lock().expect("retry slot poisoned");
                    let ran = retry_task(
                        mgr,
                        holes,
                        &all_conds[*i],
                        &self.config,
                        retry_budget,
                        start,
                        &mut task,
                    );
                    if ran {
                        if let Some(w) = journal {
                            if let Some(snap) = snapshot_of(&task) {
                                w.append(&Record::Retry {
                                    instr: all_conds[*i].name.clone(),
                                    snap,
                                });
                            }
                        }
                    }
                });
            }
        });
    }
}

/// Everything one instruction task produces.
struct TaskOutput {
    outcome: InstrOutcome,
    solution: Option<InstrSolution>,
    qlog: QueryLog,
    stats: SynthesisStats,
    /// The typed stop observed at task entry, when the task never ran.
    stop: Option<CoreError>,
}

/// What one instruction attempt concluded.
enum TaskStep {
    /// The seeded solution re-verified and is reused unchanged.
    Reused(HashMap<String, BitVec>),
    /// Synthesized (fresh or repaired), with the escalations used.
    Solved(HashMap<String, BitVec>, u32),
    /// Failed with a typed error and the escalations used.
    Failed(CoreError, u32),
}

/// One instruction, start to finish: entry budget checkpoint, manager
/// clone, panic-isolated solve.
fn run_task(
    base: &TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    seed: Option<HashMap<String, BitVec>>,
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
) -> TaskOutput {
    let name = conds.name.clone();
    let tracer = budget.tracer();
    let _span = if tracer.is_enabled() {
        Some(tracer.span("core", format!("task:{name}")))
    } else {
        None
    };
    if let Some(reason) = budget.checkpoint() {
        return TaskOutput {
            outcome: InstrOutcome {
                instr: name,
                status: InstrStatus::Skipped,
                escalations: 0,
                solver_calls: 0,
            },
            solution: None,
            qlog: QueryLog::default(),
            stats: SynthesisStats::default(),
            stop: Some(CoreError::from_stop(reason, "", start.elapsed())),
        };
    }
    let mut mgr = base.clone();
    let mut stats = SynthesisStats::default();
    let mut qlog = QueryLog::default();
    // Panic isolation: a solver-stack panic fails this instruction with
    // a typed internal error; every other task is unaffected.
    let step = catch_unwind(AssertUnwindSafe(|| {
        task_step(&mut mgr, holes, conds, seed, config, budget, start, &mut stats, &mut qlog)
    }))
    .unwrap_or_else(|payload| {
        TaskStep::Failed(
            CoreError::Internal { instr: name.clone(), message: panic_message(&*payload) },
            0,
        )
    });
    let (status, solution, escalations) = match step {
        TaskStep::Reused(map) => {
            let sol = InstrSolution { instr: name.clone(), holes: map };
            (InstrStatus::Reused, Some(sol), 0)
        }
        TaskStep::Solved(map, esc) => {
            let sol = InstrSolution { instr: name.clone(), holes: map };
            (InstrStatus::Solved, Some(sol), esc)
        }
        TaskStep::Failed(e, esc) => (InstrStatus::Failed(e), None, esc),
    };
    TaskOutput {
        outcome: InstrOutcome { instr: name, status, escalations, solver_calls: 0 },
        solution,
        qlog,
        stats,
        stop: None,
    }
}

/// The solve itself: optional seed re-verification fast path, then the
/// escalating CEGIS ladder.
#[allow(clippy::too_many_arguments)]
fn task_step(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    seed: Option<HashMap<String, BitVec>>,
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
    stats: &mut SynthesisStats,
    qlog: &mut QueryLog,
) -> TaskStep {
    if let Some(candidate) = &seed {
        // Fast path: does the old solution still verify?
        let env = env_of(holes, candidate);
        let mut assertions: Vec<TermId> =
            conds.pres.iter().map(|&p| substitute(mgr, p, &env)).collect();
        let posts: Vec<TermId> = conds.posts.iter().map(|&p| substitute(mgr, p, &env)).collect();
        let post_conj = mgr.and_many(&posts);
        assertions.push(mgr.not(post_conj));
        stats.solver_calls += 1;
        match run_check(mgr, &assertions, budget, config, qlog) {
            SmtResult::Unsat => {
                stats.reused += 1;
                return TaskStep::Reused(candidate.clone());
            }
            SmtResult::Sat(_) => {} // stale: fall through to CEGIS repair
            SmtResult::Unknown(reason) => {
                if reason.is_global() {
                    return TaskStep::Failed(
                        CoreError::from_stop(reason, &conds.name, start.elapsed()),
                        0,
                    );
                }
                // Local exhaustion during re-verification degrades
                // gracefully: treat the seed as stale and let the
                // escalating CEGIS path decide.
            }
        }
    }
    let initial = seed.unwrap_or_else(|| zero_candidate(mgr, holes));
    match solve_with_degradation(
        mgr,
        holes,
        std::slice::from_ref(conds),
        initial,
        &conds.name,
        config,
        budget,
        start,
        stats,
        qlog,
    ) {
        Ok((solved, escalations)) => TaskStep::Solved(solved, escalations),
        Err((e, escalations)) => TaskStep::Failed(e, escalations),
    }
}

/// One boosted retry for a straggler: a single CEGIS attempt from the
/// zero candidate under the rebalanced conflict quota, recording into
/// the task's existing log and stats. Returns whether the attempt
/// actually ran (false when the entry checkpoint skipped it), so the
/// caller knows whether to journal the superseding outcome.
fn retry_task(
    base: &TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    config: &SynthesisConfig,
    retry_budget: &Budget,
    start: Instant,
    task: &mut TaskOutput,
) -> bool {
    let tracer = retry_budget.tracer();
    let _span = if tracer.is_enabled() {
        Some(tracer.span("core", format!("retry:{}", conds.name)))
    } else {
        None
    };
    if retry_budget.checkpoint().is_some() {
        return false; // keep the phase-1 outcome
    }
    let mut mgr = base.clone();
    let mut stats = std::mem::take(&mut task.stats);
    let mut qlog = std::mem::take(&mut task.qlog);
    let initial = zero_candidate(&mgr, holes);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        cegis(
            &mut mgr,
            holes,
            std::slice::from_ref(conds),
            initial,
            &conds.name,
            config,
            retry_budget,
            start,
            &mut stats,
            &mut qlog,
        )
    }))
    .unwrap_or_else(|payload| {
        Err(CoreError::Internal {
            instr: conds.name.clone(),
            message: panic_message(&*payload),
        })
    });
    stats.escalations += 1;
    task.outcome.escalations += 1;
    task.stats = stats;
    task.qlog = qlog;
    match attempt {
        Ok(solved) => {
            task.solution =
                Some(InstrSolution { instr: conds.name.clone(), holes: solved });
            task.outcome.status = InstrStatus::Solved;
        }
        Err(e) if e.is_global_stop() => {
            task.outcome.status = InstrStatus::Failed(e);
        }
        Err(_) => {} // keep the phase-1 SolverExhausted verdict
    }
    true
}

/// The journaled records recovered from an interrupted run, keyed by
/// instruction name.
#[derive(Debug, Default)]
struct Restored {
    /// Phase-1 snapshots (`task` records).
    tasks: HashMap<String, TaskSnapshot>,
    /// Phase-2 snapshots (`retry` records), superseding `tasks` entries.
    retries: HashMap<String, TaskSnapshot>,
}

impl Restored {
    fn from_records(records: Vec<Record>) -> Self {
        let mut restored = Restored::default();
        for rec in records {
            match rec {
                Record::Task { instr, snap } => {
                    restored.tasks.insert(instr, snap);
                }
                Record::Retry { instr, snap } => {
                    restored.retries.insert(instr, snap);
                }
                // Stall events are provenance; a completed-run marker
                // carries no state (the resumed run re-assembles and
                // re-certifies from the snapshots either way).
                Record::Stall { .. } | Record::Done => {}
            }
        }
        restored
    }

    /// The recovered records, re-encoded for the rewritten journal:
    /// all tasks before all retries (the order the scheduler writes
    /// them), each group in name order for a deterministic file.
    fn relog(&self) -> Vec<Record> {
        let mut records = Vec::with_capacity(self.tasks.len() + self.retries.len());
        let mut tasks: Vec<_> = self.tasks.iter().collect();
        tasks.sort_by(|a, b| a.0.cmp(b.0));
        for (instr, snap) in tasks {
            records.push(Record::Task { instr: instr.clone(), snap: snap.clone() });
        }
        let mut retries: Vec<_> = self.retries.iter().collect();
        retries.sort_by(|a, b| a.0.cmp(b.0));
        for (instr, snap) in retries {
            records.push(Record::Retry { instr: instr.clone(), snap: snap.clone() });
        }
        records
    }
}

/// The canonical text of the result-determining configuration knobs,
/// hashed into the journal fingerprint. The wall-clock budget, cancel
/// flag, fault plan and stall timeout are deliberately excluded: they
/// decide *whether* a run finishes, not *what* it computes, so a
/// resumed run may tighten or relax them (e.g. resume a crashed CI run
/// with a longer deadline). [`SynthesisConfig::incremental`] is
/// likewise excluded: persistent solver sessions change how answers
/// are computed, never which answers, so a journal or cache entry
/// written under either mode replays under the other (only the reuse
/// provenance counters in the restored [`QueryLog`]s reflect the
/// writing run's mode).
fn semantic_config(c: &SynthesisConfig) -> String {
    format!(
        "mode={:?} max_cex_rounds={} conflicts={:?} decisions={:?} propagations={:?} \
         memory={:?} max_escalations={} certify={} differential_samples={} \
         differential_seed={} simplify={}",
        c.mode,
        c.max_cex_rounds,
        c.conflict_budget,
        c.decision_budget,
        c.propagation_budget,
        c.memory_budget,
        c.max_escalations,
        c.certify,
        c.differential_samples,
        c.differential_seed,
        c.simplify,
    )
}

/// Session-local cache probe tallies (distinct from the store-wide
/// counters: `hits` here means *verified* hits).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

/// The content fingerprint one instruction task is cached under: a
/// 128-bit key over the prepared instruction's term graph (structural
/// digests of its pre/post conditions), the hole set (names and
/// widths), the fixed-up seed, and the semantic configuration slice —
/// everything the task's result is a pure function of. The two 64-bit
/// halves come from independently salted digest streams.
fn instr_cache_key(
    mgr: &TermManager,
    conds: &InstrConditions,
    holes: &[(String, TermId, SymbolId)],
    seed: &Option<HashMap<String, BitVec>>,
    config: &SynthesisConfig,
) -> CacheKey {
    const SALTS: [u64; 2] = [0x6f77_6c63_6163_6865, 0x696e_7374_726b_6579];
    let mut halves = [0u64; 2];
    for (slot, &salt) in SALTS.iter().enumerate() {
        let mut h = Fnv64::with_salt(salt);
        h.field("owl-cache instr v1");
        h.field(&conds.name);
        h.update(mgr.term_digest(&conds.pres, salt ^ 0x7072_6573).to_le_bytes());
        h.update(mgr.term_digest(&conds.posts, salt ^ 0x706f_7374).to_le_bytes());
        h.update((holes.len() as u64).to_le_bytes());
        for (name, t, _) in holes {
            h.field(name);
            h.update(mgr.width(*t).to_le_bytes());
        }
        match seed {
            None => h.field("seed none"),
            Some(map) => {
                h.field("seed");
                let mut entries: Vec<(&String, &BitVec)> = map.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                for (name, value) in entries {
                    h.field(name);
                    h.field(&value.to_string());
                }
            }
        }
        h.field(&semantic_config(config));
        halves[slot] = h.finish();
    }
    CacheKey::from_halves(halves[0], halves[1])
}

/// Probes the cache for one instruction task. Returns the restored
/// phase-1 `TaskOutput` only when the cached hole assignment re-passes
/// the instruction's verification query (trust-but-verify); every
/// other outcome — miss, undecodable payload, foreign snapshot,
/// verification rejection, budget pressure — returns `None` and the
/// caller solves fresh.
///
/// The verification runs on a clone of the base manager (tasks must
/// never observe each other's terms), under a fault-free view of the
/// budget (the solver fault-plan counter tracks *solve* calls; a warm
/// run must not consume extra indices), and into a scratch `QueryLog`
/// (the adopted snapshot already carries the cold run's tallies), so
/// adopting a hit leaves the output byte-identical to the cold run.
#[allow(clippy::too_many_arguments)]
fn try_cached_task(
    base: &TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    cache: &SynthesisCache,
    key: CacheKey,
    config: &SynthesisConfig,
    budget: &Budget,
    counters: &CacheCounters,
) -> Option<TaskOutput> {
    let tracer = budget.tracer();
    let _span = if tracer.is_enabled() {
        Some(tracer.span("core", format!("cache-probe:{}", conds.name)))
    } else {
        None
    };
    let Some(hit) = cache.lookup(key) else {
        counters.misses.fetch_add(1, Ordering::Relaxed);
        return None;
    };
    let Some(snap) = decode_snapshot(&hit.payload, &conds.name) else {
        // Undecodable payload (rot that slipped past the CRC, or an
        // injected corruption): drop the entry and solve fresh.
        cache.invalidate(key);
        counters.misses.fetch_add(1, Ordering::Relaxed);
        return None;
    };
    // Only solved/reused snapshots are ever published, so anything else
    // under the key is foreign data.
    let candidate_holes = match (&snap.status, &snap.holes) {
        (SnapStatus::Solved | SnapStatus::Reused, Some(h)) => h.clone(),
        _ => {
            cache.invalidate(key);
            counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    };
    let mut candidate: HashMap<String, BitVec> = candidate_holes.into_iter().collect();
    if hit.poisoned {
        // Injected poison: deterministically perturb every hole so the
        // verification below must reject the hit — exercising the exact
        // path a genuinely wrong payload takes. (Perturbing a single
        // hole would not do: an instruction's contract can be
        // insensitive to holes that only other instructions constrain.)
        for v in candidate.values_mut() {
            *v = v.with_bit(0, !v.bit(0));
        }
    }
    let mut mgr = base.clone();
    let verify_budget = budget.without_faults();
    let mut scratch = QueryLog::default();
    let env = env_of(holes, &candidate);
    let mut assertions: Vec<TermId> =
        conds.pres.iter().map(|&p| substitute(&mut mgr, p, &env)).collect();
    let posts: Vec<TermId> = conds.posts.iter().map(|&p| substitute(&mut mgr, p, &env)).collect();
    let post_conj = mgr.and_many(&posts);
    assertions.push(mgr.not(post_conj));
    match run_check(&mut mgr, &assertions, &verify_budget, config, &mut scratch) {
        SmtResult::Unsat => {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            Some(output_from_snapshot(&conds.name, &snap))
        }
        SmtResult::Sat(_) => {
            // The payload does not satisfy this instruction's contract:
            // reject, tombstone, re-solve. The job never fails here.
            cache.note_verify_rejected();
            cache.invalidate(key);
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            None
        }
        SmtResult::Unknown(_) => {
            // Budget pressure (deadline, cancel, quota): the entry may
            // be fine — keep it and let the normal task path decide.
            counters.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Publishes a finished phase-1 task to the cache. Only solved/reused
/// snapshots are stored: failures are circumstances (budgets,
/// escalation ladders), not facts about the problem, and phase-2 retry
/// results depend on the whole job's donation pool.
fn publish_task(cache: &SynthesisCache, key: CacheKey, out: &TaskOutput) {
    let Some(snap) = snapshot_of(out) else { return };
    if !matches!(snap.status, SnapStatus::Solved | SnapStatus::Reused) {
        return;
    }
    cache.insert(key, &encode_snapshot(&snap));
}

/// A restorable snapshot of a finished task, or `None` when the task's
/// verdict is tied to this run's wall clock (never-started `Skipped`
/// tasks and deadline/cancellation failures re-run on resume — their
/// outcome is not a property of the problem).
fn snapshot_of(out: &TaskOutput) -> Option<TaskSnapshot> {
    if out.stop.is_some() {
        return None;
    }
    let status = match &out.outcome.status {
        InstrStatus::Solved => SnapStatus::Solved,
        InstrStatus::Reused => SnapStatus::Reused,
        InstrStatus::Failed(e) if !e.is_global_stop() => SnapStatus::Failed(e.clone()),
        _ => return None,
    };
    let holes = out.solution.as_ref().map(|sol| {
        let mut holes: Vec<(String, BitVec)> =
            sol.holes.iter().map(|(name, value)| (name.clone(), value.clone())).collect();
        holes.sort_by(|a, b| a.0.cmp(&b.0));
        holes
    });
    Some(TaskSnapshot {
        status,
        escalations: out.outcome.escalations,
        holes,
        qlog: out.qlog.clone(),
        cex_rounds: out.stats.cex_rounds,
        solver_calls: out.stats.solver_calls,
        reused: out.stats.reused,
        stat_escalations: out.stats.escalations,
    })
}

/// Rebuilds the exact `TaskOutput` the interrupted run computed for
/// `instr` from its journaled snapshot. `outcome.solver_calls` stays 0
/// here — assembly sets it from the stats counter, exactly as it does
/// for freshly-solved tasks.
fn output_from_snapshot(instr: &str, snap: &TaskSnapshot) -> TaskOutput {
    let solution = |snap: &TaskSnapshot| InstrSolution {
        instr: instr.to_string(),
        holes: snap.holes.clone().unwrap_or_default().into_iter().collect(),
    };
    let (status, solution) = match &snap.status {
        SnapStatus::Solved => (InstrStatus::Solved, Some(solution(snap))),
        SnapStatus::Reused => (InstrStatus::Reused, Some(solution(snap))),
        SnapStatus::Failed(e) => (InstrStatus::Failed(e.clone()), None),
    };
    let stats = SynthesisStats {
        cex_rounds: snap.cex_rounds,
        solver_calls: snap.solver_calls,
        reused: snap.reused,
        escalations: snap.stat_escalations,
        ..Default::default()
    };
    TaskOutput {
        outcome: InstrOutcome {
            instr: instr.to_string(),
            status,
            escalations: snap.escalations,
            solver_calls: 0,
        },
        solution,
        qlog: snap.qlog.clone(),
        stats,
        stop: None,
    }
}

/// Phase-1 stall supervision: one slot per instruction task, sampled by
/// a dedicated supervisor thread while the worker pool runs.
struct WatchSlot {
    /// Bumped by the solver at conflict and decision boundaries.
    hb: Heartbeat,
    /// Raised by the supervisor; observed at the solver's next budget
    /// checkpoint as [`StopReason::Stalled`](owl_smt::StopReason).
    flag: CancelFlag,
    /// True while a worker is inside `run_task` for this instruction.
    active: AtomicBool,
    /// Latched once the supervisor declares the task stalled, so the
    /// stall is journaled exactly once.
    stalled: AtomicBool,
}

struct Watchdog {
    slots: Vec<WatchSlot>,
    timeout: Duration,
}

impl Watchdog {
    fn new(n: usize, timeout: Duration) -> Self {
        Watchdog {
            slots: (0..n)
                .map(|_| WatchSlot {
                    hb: Heartbeat::new(),
                    flag: CancelFlag::new(),
                    active: AtomicBool::new(false),
                    stalled: AtomicBool::new(false),
                })
                .collect(),
            timeout,
        }
    }

    /// The budget a worker hands to task `i`: the shared budget plus
    /// this task's heartbeat and private stall flag.
    fn attach(&self, i: usize, budget: &Budget) -> Budget {
        budget
            .clone()
            .with_heartbeat(self.slots[i].hb.clone())
            .with_stall_flag(self.slots[i].flag.clone())
    }

    /// The supervisor loop: samples every active task's heartbeat; a
    /// task whose count stays frozen past the timeout is declared
    /// stalled — its private stall flag is raised (the solver observes
    /// it at the next checkpoint and unwinds with a typed
    /// [`CoreError::Stalled`]) and the event is journaled. Inactive
    /// slots keep their baseline fresh so a task that merely *starts*
    /// late is not misread as stalled.
    fn supervise(
        &self,
        stop: &AtomicBool,
        journal: Option<&JournalWriter>,
        all_conds: &[InstrConditions],
    ) {
        let poll = (self.timeout / 4)
            .clamp(Duration::from_millis(1), Duration::from_millis(50));
        let mut last: Vec<(u64, Instant)> =
            self.slots.iter().map(|s| (s.hb.count(), Instant::now())).collect();
        while !stop.load(Ordering::Acquire) {
            std::thread::sleep(poll);
            let now = Instant::now();
            for (i, slot) in self.slots.iter().enumerate() {
                let count = slot.hb.count();
                if !slot.active.load(Ordering::Acquire)
                    || slot.stalled.load(Ordering::Acquire)
                    || count != last[i].0
                {
                    last[i] = (count, now);
                    continue;
                }
                if now.duration_since(last[i].1) >= self.timeout {
                    slot.stalled.store(true, Ordering::Release);
                    slot.flag.cancel();
                    if let Some(w) = journal {
                        w.append(&Record::Stall { instr: all_conds[i].name.clone() });
                    }
                }
            }
        }
    }
}
