//! The unified synthesis entry point ([`SynthesisSession`]) and its
//! parallel per-instruction scheduler.
//!
//! The paper's instruction-independence optimization (§3.3.1) makes each
//! instruction's `∃ holes ∀ state` problem self-contained, so the
//! per-instruction CEGIS loops can run concurrently. The scheduler here
//! is built for *determinism first*: `SynthesisOutput`, `Certificate`
//! and every per-instruction `QueryLog` are byte-identical across thread
//! counts.
//!
//! # How determinism survives parallelism
//!
//! - **Task independence.** Every instruction task clones the prepared
//!   base [`TermManager`] and works on its own arena. [`TermId`]s stay
//!   valid across the clone, no locks are taken on the hot path, and no
//!   task observes terms created by another. Candidate seeding between
//!   instructions (the old sequential prev-carry chain) is gone: each
//!   task starts from its own seed (incremental re-synthesis) or the
//!   zero candidate, so the work done for instruction *i* is a pure
//!   function of the prepared problem — not of scheduling order.
//! - **Quota invariance.** Per-solver-call work quotas (conflicts,
//!   decisions, propagations) are identical for every thread count; the
//!   deadline, cancellation flag, and fault-plan call counter are the
//!   only shared parts of the [`Budget`].
//! - **Deterministic rebalance.** When instructions finish under their
//!   base quota while others exhaust their escalation ladder, the
//!   leftover conflict quota is pooled ([`Budget::merge`]) and split
//!   ([`Budget::partition`]) across the stragglers for one boosted
//!   retry. Both the straggler set and the boost are pure functions of
//!   the (deterministic) first-phase outcomes, so the rebalance — the
//!   deterministic analog of work stealing — is itself thread-count
//!   invariant.
//! - **Ordered assembly.** Results land in per-instruction slots and are
//!   folded in specification order after the join; certification runs
//!   sequentially on the assembled output.
//!
//! Timing-dependent stops are the documented exception: a deadline or a
//! mid-run cancellation fires at a wall-clock instant, so *which* tasks
//! were still in flight (`Failed`) versus never started (`Skipped`)
//! depends on real time. Completed instructions still agree across
//! thread counts; see DESIGN.md.

use crate::abstraction::AbstractionFn;
use crate::certify::{build_certificate, panic_message, QueryLog};
use crate::conditions::InstrConditions;
use crate::synth::{
    cegis, env_of, monolithic, prepare, run_check, solve_with_degradation, zero_candidate,
    InstrOutcome, InstrSolution, InstrStatus, Prepared, SynthesisConfig, SynthesisMode,
    SynthesisOutput, SynthesisStats,
};
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::Ila;
use owl_oyster::Design;
use owl_smt::{substitute, Budget, SmtResult, SymbolId, TermId, TermManager};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A configured synthesis run: the one entry point for fresh synthesis,
/// incremental re-synthesis, and parallel per-instruction solving.
///
/// ```ignore
/// let output = SynthesisSession::new(&design, &ila, &alpha)
///     .config(SynthesisConfig::builder().time_budget(limit).build())
///     .parallelism(4)
///     .run()?;
/// ```
///
/// [`run`](SynthesisSession::run) owns a fresh [`TermManager`];
/// [`run_with`](SynthesisSession::run_with) reuses the caller's (the
/// historical `synthesize` contract). Outputs are deterministic: the
/// same session produces byte-identical [`SynthesisOutput`]s at every
/// [`parallelism`](SynthesisSession::parallelism) level.
#[derive(Debug)]
#[must_use = "a session does nothing until `.run()` or `.run_with(mgr)`"]
pub struct SynthesisSession<'a> {
    design: &'a Design,
    ila: &'a Ila,
    alpha: &'a AbstractionFn,
    config: SynthesisConfig,
    parallelism: usize,
    seeds: Option<Vec<InstrSolution>>,
}

impl<'a> SynthesisSession<'a> {
    /// A session over the sketch, specification and abstraction
    /// function, with the default configuration and `parallelism(1)`.
    pub fn new(design: &'a Design, ila: &'a Ila, alpha: &'a AbstractionFn) -> Self {
        SynthesisSession {
            design,
            ila,
            alpha,
            config: SynthesisConfig::default(),
            parallelism: 1,
            seeds: None,
        }
    }

    /// Replaces the synthesis configuration.
    pub fn config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of worker threads for per-instruction mode (clamped to at
    /// least 1; monolithic mode always runs on the calling thread).
    /// Outputs do not depend on this value.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Seeds the run with the solutions of a previous revision
    /// (incremental re-synthesis): each seeded instruction is first
    /// re-verified and reused outright when still valid, otherwise its
    /// old solution becomes the CEGIS starting candidate. Requires
    /// per-instruction mode.
    pub fn seeded_with(mut self, previous: impl Into<Vec<InstrSolution>>) -> Self {
        self.seeds = Some(previous.into());
        self
    }

    /// Runs the session on a fresh [`TermManager`].
    ///
    /// # Errors
    ///
    /// Returns an error only if the inputs fail validation; solver-level
    /// failures are per-instruction [`SynthesisOutput::outcomes`].
    pub fn run(&self) -> Result<SynthesisOutput, CoreError> {
        let mut mgr = TermManager::new();
        self.run_with(&mut mgr)
    }

    /// Runs the session on the caller's [`TermManager`] (the prepared
    /// problem hash-conses into it; worker tasks clone it and leave it
    /// untouched).
    ///
    /// # Errors
    ///
    /// As for [`run`](SynthesisSession::run).
    pub fn run_with(&self, mgr: &mut TermManager) -> Result<SynthesisOutput, CoreError> {
        if self.seeds.is_some() && self.config.mode != SynthesisMode::PerInstruction {
            return Err(CoreError::Invalid(
                "incremental re-synthesis requires per-instruction mode".to_string(),
            ));
        }
        let start = Instant::now();
        let prep = prepare(mgr, self.design, self.ila, self.alpha)?;
        let budget = self.config.run_budget(start);
        let mut stats = SynthesisStats::default();
        let (solutions, outcomes, interrupted, qlogs) = match self.config.mode {
            SynthesisMode::PerInstruction => self.schedule(mgr, &prep, &budget, start, &mut stats),
            SynthesisMode::Monolithic => monolithic(
                mgr,
                &prep.holes,
                &prep.all_conds,
                &self.config,
                &budget,
                start,
                &mut stats,
            ),
        };
        for q in &qlogs {
            stats.terms_before += q.terms_before;
            stats.terms_after += q.terms_after;
            stats.cnf_vars += q.cnf_vars;
            stats.cnf_clauses += q.cnf_clauses;
        }
        stats.elapsed = start.elapsed();
        let mut output =
            SynthesisOutput { solutions, outcomes, stats, interrupted, certificate: None };
        if self.config.certify {
            output.certificate = Some(build_certificate(
                self.design,
                self.ila,
                self.alpha,
                &output,
                qlogs,
                &self.config,
                &budget,
            ));
            output.stats.elapsed = start.elapsed();
        }
        Ok(output)
    }

    /// The per-instruction scheduler: phase 1 solves every instruction
    /// as an independent task on a worker pool; phase 2 deterministically
    /// rebalances leftover conflict quota onto exhausted stragglers.
    fn schedule(
        &self,
        mgr: &TermManager,
        prep: &Prepared,
        budget: &Budget,
        start: Instant,
        stats: &mut SynthesisStats,
    ) -> (Vec<InstrSolution>, Vec<InstrOutcome>, Option<CoreError>, Vec<QueryLog>) {
        let holes = &prep.holes;
        let all_conds = &prep.all_conds;
        let n = all_conds.len();

        // Per-instruction seeds are fixed up front (zero-filling holes
        // the previous revision did not know about), so the task set is
        // identical for every thread count.
        let seeds: Vec<Option<HashMap<String, BitVec>>> = all_conds
            .iter()
            .map(|conds| {
                let prev = self.seeds.as_ref()?;
                let seed = prev.iter().find(|s| s.instr == conds.name)?;
                let mut map = seed.holes.clone();
                for (name, t, _) in holes {
                    map.entry(name.clone()).or_insert_with(|| BitVec::zero(mgr.width(*t)));
                }
                Some(map)
            })
            .collect();

        let workers = self.parallelism.min(n).max(1);
        let slots: Vec<Mutex<Option<TaskOutput>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = run_task(
                        mgr,
                        holes,
                        &all_conds[i],
                        seeds[i].clone(),
                        &self.config,
                        budget,
                        start,
                    );
                    *slots[i].lock().expect("task slot poisoned") = Some(out);
                });
            }
        });
        let mut tasks: Vec<TaskOutput> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("task slot poisoned").expect("every task slot is filled")
            })
            .collect();

        self.rebalance(mgr, holes, all_conds, &mut tasks, budget, start);

        // Assembly, in specification order.
        let mut interrupted: Option<CoreError> = tasks.iter().find_map(|t| match &t.outcome.status
        {
            InstrStatus::Failed(e) if e.is_global_stop() => Some(e.clone()),
            _ => None,
        });
        if interrupted.is_none() {
            // Every-task-skipped runs (budget spent before the first
            // solver call) surface the stop the way the sequential loop
            // always did.
            interrupted = tasks.iter().find_map(|t| t.stop.clone());
        }
        let mut solutions = Vec::with_capacity(n);
        let mut outcomes = Vec::with_capacity(n);
        let mut qlogs = Vec::with_capacity(n);
        for mut t in tasks {
            stats.cex_rounds += t.stats.cex_rounds;
            stats.solver_calls += t.stats.solver_calls;
            stats.reused += t.stats.reused;
            stats.escalations += t.stats.escalations;
            t.outcome.solver_calls = t.stats.solver_calls;
            if let Some(sol) = t.solution {
                solutions.push(sol);
            }
            outcomes.push(t.outcome);
            qlogs.push(t.qlog);
        }
        (solutions, outcomes, interrupted, qlogs)
    }

    /// Phase 2: instructions that solved without touching their
    /// escalation ladder donate their base conflict quota; the pooled
    /// donation is split evenly across the instructions that exhausted
    /// theirs, each of which gets one boosted retry from the zero
    /// candidate. Deterministic because phase-1 outcomes are.
    fn rebalance(
        &self,
        mgr: &TermManager,
        holes: &[(String, TermId, SymbolId)],
        all_conds: &[InstrConditions],
        tasks: &mut [TaskOutput],
        budget: &Budget,
        start: Instant,
    ) {
        let Some(base_quota) = self.config.conflict_budget else { return };
        let interrupted = tasks.iter().any(|t| {
            t.stop.is_some()
                || matches!(&t.outcome.status, InstrStatus::Failed(e) if e.is_global_stop())
        });
        if interrupted {
            return;
        }
        let stragglers: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(&t.outcome.status, InstrStatus::Failed(CoreError::SolverExhausted { .. }))
            })
            .map(|(i, _)| i)
            .collect();
        if stragglers.is_empty() {
            return;
        }
        let donations: Vec<Budget> = tasks
            .iter()
            .filter(|t| {
                t.outcome.escalations == 0
                    && matches!(t.outcome.status, InstrStatus::Solved | InstrStatus::Reused)
            })
            .map(|_| budget.clone().with_conflicts(Some(base_quota)))
            .collect();
        if donations.is_empty() {
            return;
        }
        let pool = Budget::merge(&donations);
        let shares = pool.partition(stragglers.len());

        let cursor = AtomicUsize::new(0);
        let retries: Vec<(usize, Mutex<&mut TaskOutput>, Budget)> = {
            // Pair each straggler with its boosted budget: the top of its
            // escalation ladder plus its share of the donated pool.
            let mut slots: Vec<(usize, Mutex<&mut TaskOutput>, Budget)> = Vec::new();
            let mut remaining: Vec<&mut TaskOutput> = tasks.iter_mut().collect();
            // Drain in reverse so indices stay valid while splitting.
            for (k, &i) in stragglers.iter().enumerate().rev() {
                let t = remaining.swap_remove(i);
                let ladder_top =
                    self.config.escalated_conflicts(self.config.max_escalations).unwrap_or(0);
                let boost =
                    ladder_top.saturating_add(shares[k].conflict_limit().unwrap_or(0));
                slots.push((i, Mutex::new(t), budget.clone().with_conflicts(Some(boost))));
            }
            slots
        };
        let workers = self.parallelism.min(retries.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = cursor.fetch_add(1, Ordering::Relaxed);
                    if r >= retries.len() {
                        break;
                    }
                    let (i, slot, retry_budget) = &retries[r];
                    let mut task = slot.lock().expect("retry slot poisoned");
                    retry_task(
                        mgr,
                        holes,
                        &all_conds[*i],
                        &self.config,
                        retry_budget,
                        start,
                        &mut task,
                    );
                });
            }
        });
    }
}

/// Everything one instruction task produces.
struct TaskOutput {
    outcome: InstrOutcome,
    solution: Option<InstrSolution>,
    qlog: QueryLog,
    stats: SynthesisStats,
    /// The typed stop observed at task entry, when the task never ran.
    stop: Option<CoreError>,
}

/// What one instruction attempt concluded.
enum TaskStep {
    /// The seeded solution re-verified and is reused unchanged.
    Reused(HashMap<String, BitVec>),
    /// Synthesized (fresh or repaired), with the escalations used.
    Solved(HashMap<String, BitVec>, u32),
    /// Failed with a typed error and the escalations used.
    Failed(CoreError, u32),
}

/// One instruction, start to finish: entry budget checkpoint, manager
/// clone, panic-isolated solve.
fn run_task(
    base: &TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    seed: Option<HashMap<String, BitVec>>,
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
) -> TaskOutput {
    let name = conds.name.clone();
    if let Some(reason) = budget.checkpoint() {
        return TaskOutput {
            outcome: InstrOutcome {
                instr: name,
                status: InstrStatus::Skipped,
                escalations: 0,
                solver_calls: 0,
            },
            solution: None,
            qlog: QueryLog::default(),
            stats: SynthesisStats::default(),
            stop: Some(CoreError::from_stop(reason, "", start.elapsed())),
        };
    }
    let mut mgr = base.clone();
    let mut stats = SynthesisStats::default();
    let mut qlog = QueryLog::default();
    // Panic isolation: a solver-stack panic fails this instruction with
    // a typed internal error; every other task is unaffected.
    let step = catch_unwind(AssertUnwindSafe(|| {
        task_step(&mut mgr, holes, conds, seed, config, budget, start, &mut stats, &mut qlog)
    }))
    .unwrap_or_else(|payload| {
        TaskStep::Failed(
            CoreError::Internal { instr: name.clone(), message: panic_message(&*payload) },
            0,
        )
    });
    let (status, solution, escalations) = match step {
        TaskStep::Reused(map) => {
            let sol = InstrSolution { instr: name.clone(), holes: map };
            (InstrStatus::Reused, Some(sol), 0)
        }
        TaskStep::Solved(map, esc) => {
            let sol = InstrSolution { instr: name.clone(), holes: map };
            (InstrStatus::Solved, Some(sol), esc)
        }
        TaskStep::Failed(e, esc) => (InstrStatus::Failed(e), None, esc),
    };
    TaskOutput {
        outcome: InstrOutcome { instr: name, status, escalations, solver_calls: 0 },
        solution,
        qlog,
        stats,
        stop: None,
    }
}

/// The solve itself: optional seed re-verification fast path, then the
/// escalating CEGIS ladder.
#[allow(clippy::too_many_arguments)]
fn task_step(
    mgr: &mut TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    seed: Option<HashMap<String, BitVec>>,
    config: &SynthesisConfig,
    budget: &Budget,
    start: Instant,
    stats: &mut SynthesisStats,
    qlog: &mut QueryLog,
) -> TaskStep {
    if let Some(candidate) = &seed {
        // Fast path: does the old solution still verify?
        let env = env_of(holes, candidate);
        let mut assertions: Vec<TermId> =
            conds.pres.iter().map(|&p| substitute(mgr, p, &env)).collect();
        let posts: Vec<TermId> = conds.posts.iter().map(|&p| substitute(mgr, p, &env)).collect();
        let post_conj = mgr.and_many(&posts);
        assertions.push(mgr.not(post_conj));
        stats.solver_calls += 1;
        match run_check(mgr, &assertions, budget, config, qlog) {
            SmtResult::Unsat => {
                stats.reused += 1;
                return TaskStep::Reused(candidate.clone());
            }
            SmtResult::Sat(_) => {} // stale: fall through to CEGIS repair
            SmtResult::Unknown(reason) => {
                if reason.is_global() {
                    return TaskStep::Failed(
                        CoreError::from_stop(reason, &conds.name, start.elapsed()),
                        0,
                    );
                }
                // Local exhaustion during re-verification degrades
                // gracefully: treat the seed as stale and let the
                // escalating CEGIS path decide.
            }
        }
    }
    let initial = seed.unwrap_or_else(|| zero_candidate(mgr, holes));
    match solve_with_degradation(
        mgr,
        holes,
        std::slice::from_ref(conds),
        initial,
        &conds.name,
        config,
        budget,
        start,
        stats,
        qlog,
    ) {
        Ok((solved, escalations)) => TaskStep::Solved(solved, escalations),
        Err((e, escalations)) => TaskStep::Failed(e, escalations),
    }
}

/// One boosted retry for a straggler: a single CEGIS attempt from the
/// zero candidate under the rebalanced conflict quota, recording into
/// the task's existing log and stats.
fn retry_task(
    base: &TermManager,
    holes: &[(String, TermId, SymbolId)],
    conds: &InstrConditions,
    config: &SynthesisConfig,
    retry_budget: &Budget,
    start: Instant,
    task: &mut TaskOutput,
) {
    if retry_budget.checkpoint().is_some() {
        return; // keep the phase-1 outcome
    }
    let mut mgr = base.clone();
    let mut stats = std::mem::take(&mut task.stats);
    let mut qlog = std::mem::take(&mut task.qlog);
    let initial = zero_candidate(&mgr, holes);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        cegis(
            &mut mgr,
            holes,
            std::slice::from_ref(conds),
            initial,
            &conds.name,
            config,
            retry_budget,
            start,
            &mut stats,
            &mut qlog,
        )
    }))
    .unwrap_or_else(|payload| {
        Err(CoreError::Internal {
            instr: conds.name.clone(),
            message: panic_message(&*payload),
        })
    });
    stats.escalations += 1;
    task.outcome.escalations += 1;
    task.stats = stats;
    task.qlog = qlog;
    match attempt {
        Ok(solved) => {
            task.solution =
                Some(InstrSolution { instr: conds.name.clone(), holes: solved });
            task.outcome.status = InstrStatus::Solved;
        }
        Err(e) if e.is_global_stop() => {
            task.outcome.status = InstrStatus::Failed(e);
        }
        Err(_) => {} // keep the phase-1 SolverExhausted verdict
    }
}
