//! Control logic synthesis — the paper's primary contribution.
//!
//! Given (1) a datapath sketch in the Oyster IR with *holes* where the
//! control logic belongs, (2) an ILA architectural specification, and
//! (3) an abstraction function α connecting the two, this crate:
//!
//! - extracts per-instruction pre/postconditions ([`conditions`], §3.3 /
//!   Fig. 8);
//! - solves the `∃ holes ∀ state` problem with CEGIS, per instruction
//!   (the §3.3.1 instruction-independence optimization) or monolithically
//!   (Equation (1) as written) ([`synth`]);
//! - joins per-instruction constants into complete control logic with the
//!   control union ⊔ ([`union`], Fig. 6), producing a hole-free Oyster
//!   design;
//! - re-verifies the completed design against the specification
//!   ([`verify`]); and
//! - renders the generated control logic as PyRTL-style code
//!   ([`codegen`], Fig. 7).
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! walk-through on the paper's accumulator machine.

pub mod abstraction;
pub mod codegen;
pub mod conditions;
pub mod diagnose;
pub mod minimize;
pub mod synth;
pub mod union;
pub mod verify;

pub use abstraction::{AbstractionError, AbstractionFn, DatapathKind, Mapping};
pub use conditions::{ConditionBuilder, InstrConditions};
pub use diagnose::{diagnose, Diagnosis, ObligationStatus};
pub use minimize::{minimize_solutions, MinimizeStats};
pub use synth::{
    resynthesize, synthesize, InstrSolution, SynthesisConfig, SynthesisMode, SynthesisOutput,
    SynthesisStats,
};
pub use union::{complete_design, control_union, control_union_with, ControlUnion, DecodeBinding};
pub use verify::verify_design;

use std::fmt;

/// Error type for the control-logic-synthesis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreError {
    message: String,
}

impl CoreError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CoreError { message: message.into() }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "synthesis error: {}", self.message)
    }
}

impl std::error::Error for CoreError {}

impl From<owl_ila::IlaError> for CoreError {
    fn from(e: owl_ila::IlaError) -> Self {
        CoreError::new(e.to_string())
    }
}

impl From<owl_oyster::OysterError> for CoreError {
    fn from(e: owl_oyster::OysterError) -> Self {
        CoreError::new(e.to_string())
    }
}

impl From<AbstractionError> for CoreError {
    fn from(e: AbstractionError) -> Self {
        CoreError::new(e.to_string())
    }
}
