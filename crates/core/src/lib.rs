//! Control logic synthesis — the paper's primary contribution.
//!
//! Given (1) a datapath sketch in the Oyster IR with *holes* where the
//! control logic belongs, (2) an ILA architectural specification, and
//! (3) an abstraction function α connecting the two, this crate:
//!
//! - extracts per-instruction pre/postconditions ([`conditions`], §3.3 /
//!   Fig. 8);
//! - solves the `∃ holes ∀ state` problem with CEGIS, per instruction
//!   (the §3.3.1 instruction-independence optimization) or monolithically
//!   (Equation (1) as written) ([`synth`]);
//! - joins per-instruction constants into complete control logic with the
//!   control union ⊔ ([`union`], Fig. 6), producing a hole-free Oyster
//!   design;
//! - re-verifies the completed design against the specification
//!   ([`verify`]); and
//! - renders the generated control logic as PyRTL-style code
//!   ([`codegen`], Fig. 7).
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! walk-through on the paper's accumulator machine.

pub mod abstraction;
pub mod certify;
pub mod codegen;
pub mod conditions;
pub mod diagnose;
pub mod journal;
pub mod minimize;
pub mod session;
pub mod synth;
pub mod union;
pub mod verify;

pub use abstraction::{AbstractionError, AbstractionFn, DatapathKind, Mapping};
pub use certify::{differential_check, Certificate, CheckStatus, InstrCertificate, QueryLog};
pub use conditions::{ConditionBuilder, InstrConditions};
pub use diagnose::{diagnose, Diagnosis, ObligationStatus};
pub use journal::{FileJournal, JournalContents, JournalIo, JournalWriter, MemJournal};
pub use minimize::{minimize_solutions, MinimizeStats};
pub use session::SynthesisSession;
pub use synth::{
    InstrOutcome, InstrSolution, InstrStatus, SynthesisConfig, SynthesisConfigBuilder,
    SynthesisMode, SynthesisOutput, SynthesisStats,
};
pub use union::{complete_design, control_union, control_union_with, ControlUnion, DecodeBinding};
pub use verify::{verify_design, VerifyOpts, VerifyStats};

// The synthesis cache: re-exported so sessions can be wired to a shared
// store without a direct `owl_cache` dependency.
pub use owl_cache::{CacheConfig, CacheKey, CacheStats, SynthesisCache};

// Resource-governance handles, re-exported for callers configuring a
// [`SynthesisConfig`] without a direct `owl_smt`/`owl_sat` dependency.
pub use owl_smt::{
    Budget, CancelFlag, Fault, FaultPlan, Heartbeat, IoFault, QueryCert, ServiceFault, SolverConfig,
    StopReason,
};

// Observability: the tracer attaches to a session via
// [`SynthesisSession::tracer`] and rides the run budget into every
// layer below; `Report` is the unified stats-serialization trait.
pub use owl_trace::{Report, Section, Tracer, Value};

use std::fmt;
use std::time::Duration;

/// Error type for the control-logic-synthesis pipeline.
///
/// Resource failures (`Timeout`, `Cancelled`, `SolverExhausted`) are
/// distinguished from semantic ones (`NoSolution`, `NoConvergence`) and
/// from input-validation problems (`Invalid`), so callers can retry,
/// escalate, or surface partial results appropriately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The wall-clock budget ran out (observable mid-query: the deadline
    /// is polled inside the SAT search, not only between instructions).
    Timeout {
        /// How long the run had been going when the deadline fired.
        elapsed: Duration,
    },
    /// The shared [`CancelFlag`] was raised.
    Cancelled,
    /// No hole assignment satisfies this instruction's specification:
    /// the datapath sketch cannot implement it.
    NoSolution {
        /// The offending instruction (or `"<monolithic>"`).
        instr: String,
    },
    /// The solver's work budget (conflicts/decisions/propagations) was
    /// exhausted even after retry-with-escalation.
    SolverExhausted {
        /// The instruction whose query exhausted the budget.
        instr: String,
    },
    /// CEGIS did not converge within the configured refinement rounds.
    NoConvergence {
        /// The instruction whose CEGIS loop failed to converge.
        instr: String,
        /// The round limit that was hit.
        rounds: usize,
    },
    /// The watchdog supervisor observed no solver progress (heartbeats
    /// frozen) for the configured
    /// [`stall_timeout`](SynthesisConfig::stall_timeout) and cancelled
    /// the instruction's in-flight query; the remaining instructions
    /// still run, and the stalled instruction's budget is donated to
    /// the phase-2 rebalance.
    Stalled {
        /// The instruction whose solver stalled.
        instr: String,
    },
    /// The inputs failed validation (bad abstraction function, malformed
    /// sketch, unsupported mode, ...).
    Invalid(String),
    /// A panic escaped the solver stack while synthesizing one
    /// instruction and was isolated at the instruction boundary; the
    /// remaining instructions still run.
    Internal {
        /// The instruction whose synthesis panicked.
        instr: String,
        /// The panic payload, when it carried a message.
        message: String,
    },
}

/// How a [`CoreError`] should be treated by a retrying caller.
///
/// The escalation ladder in `owl-core` and the resubmit policy in
/// `owl-service` both route their decisions through this classification
/// so "what is worth retrying" is defined exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Worth retrying: the failure came from an exhausted or perturbed
    /// resource (solver work quota, watchdog stall, injected I/O fault),
    /// not from the problem itself. A retry with a fresh or larger
    /// budget may succeed.
    Transient,
    /// Not worth retrying: the inputs are malformed, the sketch cannot
    /// implement the instruction, CEGIS diverged, or a panic was
    /// isolated. Retrying reproduces the same failure.
    Permanent,
    /// The whole run was told to stop (deadline or cancellation); retry
    /// policy belongs to whoever set the deadline, not this layer.
    GlobalStop,
}

impl CoreError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CoreError::Invalid(message.into())
    }

    /// Classifies this error for retry policy.
    ///
    /// Note that `Stalled` is *transient* from the caller's point of
    /// view (a fresh run may make progress) even though the in-place
    /// escalation ladder must not retry it: the per-task stall flag is
    /// latched, so re-running the same query under the same flag stops
    /// again immediately. Stalled work is retried at the session level
    /// (budget donation) or the service level (resubmission), never
    /// in place.
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            CoreError::Timeout { .. } | CoreError::Cancelled => ErrorClass::GlobalStop,
            CoreError::SolverExhausted { .. } | CoreError::Stalled { .. } => ErrorClass::Transient,
            CoreError::NoSolution { .. }
            | CoreError::NoConvergence { .. }
            | CoreError::Invalid(_)
            | CoreError::Internal { .. } => ErrorClass::Permanent,
        }
    }

    /// True for failures that end the whole run (deadline, cancellation)
    /// rather than one instruction.
    #[must_use]
    pub fn is_global_stop(&self) -> bool {
        matches!(self, CoreError::Timeout { .. } | CoreError::Cancelled)
    }

    /// True for resource failures (timeout, cancellation, solver budget),
    /// as opposed to semantic or validation failures.
    #[must_use]
    pub fn is_resource(&self) -> bool {
        matches!(
            self,
            CoreError::Timeout { .. }
                | CoreError::Cancelled
                | CoreError::SolverExhausted { .. }
                | CoreError::Stalled { .. }
        )
    }

    /// Maps a solver stop reason onto the typed error, attributing
    /// per-query exhaustion to `instr`.
    pub(crate) fn from_stop(reason: StopReason, instr: &str, elapsed: Duration) -> Self {
        match reason {
            StopReason::Deadline => CoreError::Timeout { elapsed },
            StopReason::Cancelled => CoreError::Cancelled,
            StopReason::Stalled => CoreError::Stalled { instr: instr.to_string() },
            // Conflict/decision/propagation quotas and the memory
            // ceiling all surface as per-query exhaustion.
            _ => CoreError::SolverExhausted { instr: instr.to_string() },
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "synthesis error: ")?;
        match self {
            CoreError::Timeout { elapsed } => {
                write!(f, "synthesis timed out after {:.1}s", elapsed.as_secs_f64())
            }
            CoreError::Cancelled => write!(f, "synthesis was cancelled"),
            CoreError::NoSolution { instr } => write!(
                f,
                "instruction {instr}: no hole assignment satisfies the specification \
                 (datapath sketch cannot implement this instruction)"
            ),
            CoreError::SolverExhausted { instr } => {
                write!(f, "instruction {instr}: solver budget exhausted")
            }
            CoreError::NoConvergence { instr, rounds } => {
                write!(f, "instruction {instr}: CEGIS did not converge within {rounds} rounds")
            }
            CoreError::Stalled { instr } => write!(
                f,
                "instruction {instr}: solver stalled (no progress within the watchdog timeout)"
            ),
            CoreError::Invalid(message) => write!(f, "{message}"),
            CoreError::Internal { instr, message } => write!(
                f,
                "instruction {instr}: internal error (panic isolated): {message}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<owl_ila::IlaError> for CoreError {
    fn from(e: owl_ila::IlaError) -> Self {
        CoreError::new(e.to_string())
    }
}

impl From<owl_oyster::OysterError> for CoreError {
    fn from(e: owl_oyster::OysterError) -> Self {
        CoreError::new(e.to_string())
    }
}

impl From<AbstractionError> for CoreError {
    fn from(e: AbstractionError) -> Self {
        CoreError::new(e.to_string())
    }
}
