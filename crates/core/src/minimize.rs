//! Control-logic minimization — the paper's §5.3 extension direction
//! ("generate HDL code that is correct and also optimal with respect to
//! some objective function (size of HDL code, area of circuit, …)").
//!
//! Per-instruction synthesis leaves *don't-care* holes at whatever value
//! CEGIS happened to land on; the control union then emits one
//! if-then-else branch per distinct value. This pass shrinks that: for
//! every hole, instructions whose value differs from the hole's majority
//! value *try adopting it*, and the adoption is kept only if the
//! instruction still verifies. Every merge removes mux branches from the
//! generated control (and gates from the netlist) without weakening the
//! correctness guarantee — each adoption is discharged by the same
//! verifier that gates the final design.

use crate::abstraction::AbstractionFn;
use crate::conditions::{ConditionBuilder, InstrConditions};
use crate::synth::InstrSolution;
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::Ila;
use owl_oyster::{Design, SymbolicEvaluator};
use owl_smt::{solve, substitute, Env, SmtResult, SymbolId, TermManager};
use std::collections::HashMap;

/// Statistics from a minimization pass.
#[derive(Debug, Clone, Default)]
pub struct MinimizeStats {
    /// Hole values successfully merged into their majority group.
    pub merged: usize,
    /// Merge attempts rejected by verification.
    pub rejected: usize,
}

/// Minimizes per-instruction solutions by merging don't-care values into
/// each hole's majority value, re-verifying every change.
///
/// # Errors
///
/// Returns an error if the inputs fail validation or a verification
/// query exhausts its budget.
pub fn minimize_solutions(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    solutions: &[InstrSolution],
) -> Result<(Vec<InstrSolution>, MinimizeStats), CoreError> {
    let start = std::time::Instant::now();
    let trace = SymbolicEvaluator::run(mgr, design, alpha.cycles()).map_err(CoreError::from)?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(mgr);
    let mut conds: HashMap<String, InstrConditions> = HashMap::new();
    for instr in ila.instrs() {
        conds.insert(instr.name().to_string(), builder.instr_conditions(mgr, instr)?);
    }
    let hole_syms: HashMap<String, SymbolId> = design
        .hole_names()
        .into_iter()
        .map(|name| {
            let t = *trace.holes.get(&name).ok_or_else(|| {
                CoreError::new(format!("hole {name} is missing from the symbolic trace"))
            })?;
            let sym = mgr.as_var(t).ok_or_else(|| {
                CoreError::new(format!(
                    "hole {name} is not a free variable in the symbolic trace"
                ))
            })?;
            Ok((name, sym))
        })
        .collect::<Result<_, CoreError>>()?;

    let mut out: Vec<InstrSolution> = solutions.to_vec();
    let mut stats = MinimizeStats::default();

    for hole in design.hole_names() {
        // The hole's most common value across instructions.
        let mut counts: Vec<(BitVec, usize)> = Vec::new();
        for sol in &out {
            let v = sol
                .holes
                .get(&hole)
                .ok_or_else(|| CoreError::new(format!("missing value for hole {hole}")))?;
            match counts.iter_mut().find(|(cv, _)| cv == v) {
                Some((_, n)) => *n += 1,
                None => counts.push((v.clone(), 1)),
            }
        }
        // Ties break toward the earliest group, matching the order the
        // control union scans instructions.
        let mut best: Option<(BitVec, usize)> = None;
        for (v, n) in &counts {
            if best.as_ref().is_none_or(|(_, bn)| n > bn) {
                best = Some((v.clone(), *n));
            }
        }
        let Some((majority, _)) = best else { continue };

        for sol in &mut out {
            if sol.holes[&hole] == majority {
                continue;
            }
            // Candidate: this instruction with the majority value.
            let mut candidate = sol.holes.clone();
            candidate.insert(hole.clone(), majority.clone());
            let mut env = Env::new();
            for (name, value) in &candidate {
                env.set_var(hole_syms[name], value.clone());
            }
            let ic = &conds[&sol.instr];
            let mut assertions: Vec<_> =
                ic.pres.iter().map(|&p| substitute(mgr, p, &env)).collect();
            let posts: Vec<_> = ic.posts.iter().map(|&p| substitute(mgr, p, &env)).collect();
            let post_conj = mgr.and_many(&posts);
            assertions.push(mgr.not(post_conj));
            match solve(mgr, &assertions, None).result {
                SmtResult::Unsat => {
                    sol.holes = candidate;
                    stats.merged += 1;
                }
                SmtResult::Sat(_) => stats.rejected += 1,
                SmtResult::Unknown(reason) => {
                    return Err(CoreError::from_stop(reason, &sol.instr, start.elapsed()))
                }
            }
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::DatapathKind;
    use crate::session::SynthesisSession;
    use crate::union::control_union;
    use crate::verify::verify_design;
    use crate::complete_design;
    use owl_ila::{Instr, SpecExpr};

    /// Two instructions: INC uses the adder; PASS leaves acc unchanged,
    /// making the `sel` hole a don't-care under en = 0.
    fn setup() -> (Ila, Design, AbstractionFn) {
        let mut ila = Ila::new("m");
        let op = ila.new_bv_input("op", 1);
        let acc = ila.new_bv_state("acc", 8);
        let mut inc = Instr::new("INC");
        inc.set_decode(op.clone().eq(SpecExpr::const_u64(1, 1)));
        inc.set_update("acc", acc.clone().add(SpecExpr::const_u64(8, 1)));
        ila.add_instr(inc);
        let mut pass = Instr::new("PASS");
        pass.set_decode(op.eq(SpecExpr::const_u64(1, 0)));
        pass.set_update("acc", acc);
        ila.add_instr(pass);

        // `sel` only matters when `en` is set.
        let d: Design = "design dp\ninput op 1\nhole en 1\nhole sel 1\nregister acc 8\n\
                         acc := if en then (if sel then acc + 8'x01 else acc - 8'x01) else acc\n\
                         end\n"
            .parse()
            .unwrap();
        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("op", "op");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        (ila, d, alpha)
    }

    #[test]
    fn dont_care_values_merge_and_design_still_verifies() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&d, &ila, &alpha).run_with(&mut mgr).unwrap();
        // Force a divergent don't-care: PASS has en = 0, so its sel value
        // is free. Make it disagree with INC's.
        let mut solutions = out.solutions.clone();
        let inc_sel = solutions[0].holes["sel"].clone();
        let flipped = inc_sel.not();
        solutions[1].holes.insert("sel".to_string(), flipped);

        let (minimized, stats) =
            minimize_solutions(&mut mgr, &d, &ila, &alpha, &solutions).unwrap();
        assert!(stats.merged >= 1, "{stats:?}");
        assert_eq!(minimized[0].holes["sel"], minimized[1].holes["sel"]);

        // The minimized union collapses `sel` to a constant, and the
        // completed design still verifies.
        let union = control_union(&d, &ila, &alpha, &minimized).unwrap();
        let sel_def = union.hole_defs.iter().find(|(n, _)| n == "sel").unwrap();
        assert!(matches!(sel_def.1, owl_oyster::Expr::Const(_)));
        let complete = complete_design(&d, &union);
        let mut mgr2 = TermManager::new();
        verify_design(&mut mgr2, &complete, &ila, &alpha, None).unwrap();
    }

    #[test]
    fn load_bearing_values_are_not_merged() {
        let (ila, d, alpha) = setup();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&d, &ila, &alpha).run_with(&mut mgr).unwrap();
        // `en` genuinely differs between INC (1) and PASS (0); merging
        // must be rejected and the values preserved.
        let (minimized, _) =
            minimize_solutions(&mut mgr, &d, &ila, &alpha, &out.solutions).unwrap();
        let inc = minimized.iter().find(|s| s.instr == "INC").unwrap();
        let pass = minimized.iter().find(|s| s.instr == "PASS").unwrap();
        assert_eq!(inc.holes["en"].to_u64(), Some(1));
        assert_eq!(pass.holes["en"].to_u64(), Some(0));
    }
}
