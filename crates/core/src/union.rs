//! The control union ⊔ (paper Fig. 6): joining per-instruction hole
//! constants into complete control logic expressions, and splicing them
//! back into the sketch to produce the final hole-free design.
//!
//! For each hole, instructions are grouped by solved value; the generated
//! expression is a chain of if-then-else over the instruction
//! preconditions (`pre_ADD := op == ADD` style wires, derived from the
//! specification's decode conditions through α), with the last group's
//! value as the default. A hole on which every instruction agrees
//! collapses to a plain constant — this is how FSM state encodings stay
//! readable.

use crate::abstraction::{AbstractionFn, DatapathKind};
use crate::synth::InstrSolution;
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::{BinOp as SpecBinOp, Ila, SpecExpr};
use owl_oyster::{BinOp, Design, DeclKind, Expr};

/// The unioned control logic: shared precondition wires plus one driving
/// expression per hole.
#[derive(Debug, Clone)]
pub struct ControlUnion {
    /// `(wire name, expression)` for each instruction precondition, in
    /// specification order.
    pub pre_wires: Vec<(String, Expr)>,
    /// `(hole name, expression)` for each hole, in declaration order.
    pub hole_defs: Vec<(String, Expr)>,
}

impl ControlUnion {
    /// Number of generated Oyster source lines (the control-logic size
    /// metric of Table 2, counted on the IR form).
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.pre_wires.len() + self.hole_defs.len()
    }
}

/// Sanitizes an instruction name into a wire identifier.
fn pre_wire_name(instr: &str) -> String {
    let safe: String =
        instr.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("pre_{safe}")
}

/// A decode binding: occurrences of the specification expression (left)
/// in decode conditions are rewritten to the datapath expression (right)
/// during code generation.
///
/// This is how the paper's `??(opcode, funct3, funct7)` hole arguments
/// are expressed: the designer states which datapath signals carry the
/// decode inputs *at the point where the control is consumed*. A
/// pipelined core whose control is used in stage 2 binds the fetch
/// expression `Load(imem, pc[31:2])` to its stage-2 instruction register,
/// for example.
pub type DecodeBinding = (SpecExpr, Expr);

/// Rewrites a specification decode expression into an Oyster expression
/// over datapath signals, per the abstraction function and the decode
/// bindings (checked before α, outermost first).
///
/// # Errors
///
/// Returns an error if a reference has no mapping or maps to something
/// that cannot be referenced combinationally.
pub fn spec_to_oyster(
    alpha: &AbstractionFn,
    bindings: &[DecodeBinding],
    e: &SpecExpr,
) -> Result<Expr, CoreError> {
    if let Some((_, repl)) = bindings.iter().find(|(pat, _)| pat == e) {
        return Ok(repl.clone());
    }
    Ok(match e {
        SpecExpr::Ref(n) => {
            let m = alpha
                .read_mapping(n)
                .ok_or_else(|| CoreError::new(format!("no read mapping for {n}")))?;
            match m.kind {
                DatapathKind::Input | DatapathKind::Register | DatapathKind::Output => {
                    Expr::var(&m.datapath_name)
                }
                DatapathKind::Memory => {
                    return Err(CoreError::new(format!("{n} is memory-mapped; use Load")))
                }
            }
        }
        SpecExpr::Const(c) => Expr::Const(c.clone()),
        SpecExpr::Not(a) => spec_to_oyster(alpha, bindings, a)?.not(),
        SpecExpr::Binop(op, a, b) => Expr::binop(
            oyster_binop(*op),
            spec_to_oyster(alpha, bindings, a)?,
            spec_to_oyster(alpha, bindings, b)?,
        ),
        SpecExpr::Ite(c, t, els) => Expr::ite(
            spec_to_oyster(alpha, bindings, c)?,
            spec_to_oyster(alpha, bindings, t)?,
            spec_to_oyster(alpha, bindings, els)?,
        ),
        SpecExpr::Extract(a, high, low) => spec_to_oyster(alpha, bindings, a)?.extract(*high, *low),
        SpecExpr::Concat(a, b) => {
            spec_to_oyster(alpha, bindings, a)?.concat(spec_to_oyster(alpha, bindings, b)?)
        }
        SpecExpr::ZExt(a, w) => spec_to_oyster(alpha, bindings, a)?.zext(*w),
        SpecExpr::SExt(a, w) => spec_to_oyster(alpha, bindings, a)?.sext(*w),
        SpecExpr::Load(mem, addr) => {
            let m = alpha
                .read_mapping(mem)
                .ok_or_else(|| CoreError::new(format!("no read mapping for memory {mem}")))?;
            Expr::read(&m.datapath_name, spec_to_oyster(alpha, bindings, addr)?)
        }
        SpecExpr::LoadConst(table, addr) => {
            // Requires a same-named ROM in the datapath.
            Expr::read(table, spec_to_oyster(alpha, bindings, addr)?)
        }
    })
}

fn oyster_binop(op: SpecBinOp) -> BinOp {
    match op {
        SpecBinOp::And => BinOp::And,
        SpecBinOp::Or => BinOp::Or,
        SpecBinOp::Xor => BinOp::Xor,
        SpecBinOp::Add => BinOp::Add,
        SpecBinOp::Sub => BinOp::Sub,
        SpecBinOp::Mul => BinOp::Mul,
        SpecBinOp::Shl => BinOp::Shl,
        SpecBinOp::Lshr => BinOp::Lshr,
        SpecBinOp::Ashr => BinOp::Ashr,
        SpecBinOp::Eq => BinOp::Eq,
        SpecBinOp::Neq => BinOp::Neq,
        SpecBinOp::Ult => BinOp::Ult,
        SpecBinOp::Ule => BinOp::Ule,
        SpecBinOp::Slt => BinOp::Slt,
        SpecBinOp::Sle => BinOp::Sle,
    }
}

/// Runs the control union ⊔ over per-instruction synthesis results.
///
/// # Errors
///
/// Returns an error if a decode condition cannot be rewritten over
/// datapath signals, or solutions are missing a hole.
pub fn control_union(
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    solutions: &[InstrSolution],
) -> Result<ControlUnion, CoreError> {
    control_union_with(design, ila, alpha, solutions, &[])
}

/// [`control_union`] with explicit decode bindings (see
/// [`DecodeBinding`]); needed when the control logic is consumed away
/// from the fetch stage.
///
/// # Errors
///
/// As for [`control_union`].
pub fn control_union_with(
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    solutions: &[InstrSolution],
    bindings: &[DecodeBinding],
) -> Result<ControlUnion, CoreError> {
    let mut pre_wires = Vec::new();
    for sol in solutions {
        let instr = ila
            .instr(&sol.instr)
            .ok_or_else(|| CoreError::new(format!("unknown instruction {}", sol.instr)))?;
        pre_wires.push((
            pre_wire_name(&sol.instr),
            spec_to_oyster(alpha, bindings, instr.decode()?)?,
        ));
    }

    let mut hole_defs = Vec::new();
    for hole in design.hole_names() {
        // Group instructions by solved value, in order of first appearance.
        let mut groups: Vec<(BitVec, Vec<usize>)> = Vec::new();
        for (j, sol) in solutions.iter().enumerate() {
            let v = sol
                .holes
                .get(&hole)
                .ok_or_else(|| {
                    CoreError::new(format!("instruction {} has no value for hole {hole}", sol.instr))
                })?
                .clone();
            match groups.iter_mut().find(|(gv, _)| *gv == v) {
                Some((_, idxs)) => idxs.push(j),
                None => groups.push((v, vec![j])),
            }
        }
        let expr = if groups.len() == 1 {
            Expr::Const(groups[0].0.clone())
        } else {
            // LogicGen: chain of ite over grouped preconditions. The group
            // covering the most instructions goes last so the common case
            // needs the fewest comparisons; the final else is zero (PyRTL
            // conditional-assignment semantics: nothing decoded means no
            // control signal asserted), which keeps the completed design
            // safe to simulate on undecodable instruction words.
            let max_idx = groups
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, idxs))| idxs.len())
                .map(|(i, _)| i)
                .expect("non-empty groups");
            let biggest = groups.remove(max_idx);
            groups.push(biggest);
            let width = groups[0].0.width();
            let mut acc = Expr::Const(BitVec::zero(width));
            for (v, idxs) in groups.iter().rev() {
                if v.is_zero() {
                    continue; // zero groups are covered by the default
                }
                let cond = idxs
                    .iter()
                    .map(|&j| Expr::var(&pre_wires[j].0))
                    .reduce(|a, b| a.or(b))
                    .expect("non-empty group");
                acc = Expr::ite(cond, Expr::Const(v.clone()), acc);
            }
            acc
        };
        hole_defs.push((hole, expr));
    }
    Ok(ControlUnion { pre_wires, hole_defs })
}

/// Splices the unioned control logic into the sketch: hole declarations
/// are removed and the preconditions plus hole definitions become wires
/// at the top of the design. The result is a complete, simulatable,
/// verifiable design.
#[must_use]
pub fn complete_design(design: &Design, union: &ControlUnion) -> Design {
    let mut out = Design::new(format!("{}_complete", design.name()));
    for d in design.decls() {
        if d.kind != DeclKind::Hole {
            out.declare(&d.name, d.width, d.kind.clone());
        }
    }
    for (name, expr) in &union.pre_wires {
        out.assign(name, expr.clone());
    }
    for (name, expr) in &union.hole_defs {
        out.assign(name, expr.clone());
    }
    for s in design.stmts() {
        match s {
            owl_oyster::Stmt::Assign { var, expr } => {
                out.assign(var, expr.clone());
            }
            owl_oyster::Stmt::Write { mem, addr, data, enable } => {
                out.write(mem, addr.clone(), data.clone(), enable.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ila::Instr;

    type HoleRow<'a> = (&'a str, u32, u64);

    fn solutions(rows: &[(&str, &[HoleRow])]) -> Vec<InstrSolution> {
        rows.iter()
            .map(|(name, holes)| InstrSolution {
                instr: (*name).to_string(),
                holes: holes
                    .iter()
                    .map(|&(h, w, v)| (h.to_string(), BitVec::from_u64(w, v)))
                    .collect(),
            })
            .collect()
    }

    fn three_instr_setup() -> (Design, Ila, AbstractionFn) {
        // The paper's §3.3.1 example: ADD, LOAD, JUMP with three 1-bit holes.
        let mut ila = Ila::new("risc");
        let op = ila.new_bv_input("op", 2);
        ila.new_bv_state("dummy", 1);
        for (name, code) in [("ADD", 0u64), ("LOAD", 1), ("JUMP", 2)] {
            let mut i = Instr::new(name);
            i.set_decode(op.clone().eq(SpecExpr::const_u64(2, code)));
            i.set_update("dummy", SpecExpr::const_u64(1, 0));
            ila.add_instr(i);
        }
        let mut d = Design::new("dp");
        d.input("op", 2)
            .hole("write_register", 1)
            .hole("read_memory", 1)
            .hole("jump", 1)
            .register("dummy_reg", 1);
        d.assign("dummy_reg", Expr::const_u64(1, 0));
        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("op", "op");
        alpha.map("dummy", "dummy_reg", DatapathKind::Register, [1], [1]);
        (d, ila, alpha)
    }

    #[test]
    fn union_reproduces_paper_example() {
        let (d, ila, alpha) = three_instr_setup();
        // The paper's results map:
        //   write-register: {1: [ADD, LOAD], 0: [JUMP]}
        //   read-memory:    {1: [LOAD], 0: [ADD, JUMP]}
        //   jump:           {1: [JUMP], 0: [ADD, LOAD]}
        let sols = solutions(&[
            ("ADD", &[("write_register", 1, 1), ("read_memory", 1, 0), ("jump", 1, 0)]),
            ("LOAD", &[("write_register", 1, 1), ("read_memory", 1, 1), ("jump", 1, 0)]),
            ("JUMP", &[("write_register", 1, 0), ("read_memory", 1, 0), ("jump", 1, 1)]),
        ]);
        let u = control_union(&d, &ila, &alpha, &sols).unwrap();
        assert_eq!(u.pre_wires.len(), 3);
        assert_eq!(u.pre_wires[0].0, "pre_ADD");
        assert_eq!(u.pre_wires[0].1.to_string(), "op == 2'x0");
        let wr = &u.hole_defs[0];
        assert_eq!(wr.0, "write_register");
        assert_eq!(
            wr.1.to_string(),
            "if pre_ADD | pre_LOAD then 1'x1 else 1'x0"
        );
        let rm = &u.hole_defs[1];
        assert_eq!(rm.1.to_string(), "if pre_LOAD then 1'x1 else 1'x0");
    }

    #[test]
    fn union_collapses_agreeing_holes() {
        let (d, ila, alpha) = three_instr_setup();
        let sols = solutions(&[
            ("ADD", &[("write_register", 1, 1), ("read_memory", 1, 0), ("jump", 1, 0)]),
            ("LOAD", &[("write_register", 1, 1), ("read_memory", 1, 0), ("jump", 1, 0)]),
            ("JUMP", &[("write_register", 1, 1), ("read_memory", 1, 0), ("jump", 1, 0)]),
        ]);
        let u = control_union(&d, &ila, &alpha, &sols).unwrap();
        assert_eq!(u.hole_defs[0].1, Expr::Const(BitVec::from_u64(1, 1)));
        assert_eq!(u.hole_defs[1].1, Expr::Const(BitVec::zero(1)));
    }

    #[test]
    fn completed_design_checks_and_has_no_holes() {
        let (d, ila, alpha) = three_instr_setup();
        let sols = solutions(&[
            ("ADD", &[("write_register", 1, 1), ("read_memory", 1, 0), ("jump", 1, 0)]),
            ("LOAD", &[("write_register", 1, 1), ("read_memory", 1, 1), ("jump", 1, 0)]),
            ("JUMP", &[("write_register", 1, 0), ("read_memory", 1, 0), ("jump", 1, 1)]),
        ]);
        let u = control_union(&d, &ila, &alpha, &sols).unwrap();
        let complete = complete_design(&d, &u);
        assert!(complete.hole_names().is_empty());
        assert!(complete.check().is_ok());
        assert!(complete.to_string().contains("pre_ADD := op == 2'x0"));
    }

    #[test]
    fn spec_rewrite_handles_loads() {
        let mut alpha = AbstractionFn::new(1);
        alpha.map("mem", "i_mem", DatapathKind::Memory, [1], []);
        alpha.map("pc", "pc", DatapathKind::Register, [1], [1]);
        let e = SpecExpr::load("mem", SpecExpr::var("pc")).extract(6, 0);
        let o = spec_to_oyster(&alpha, &[], &e).unwrap();
        assert_eq!(o.to_string(), "extract(i_mem[pc], 6, 0)");
    }

    #[test]
    fn missing_hole_value_errors() {
        let (d, ila, alpha) = three_instr_setup();
        let sols = solutions(&[("ADD", &[("write_register", 1, 1)])]);
        assert!(control_union(&d, &ila, &alpha, &sols).is_err());
    }
}
